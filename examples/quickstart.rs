//! Quickstart: evaluate and classify a design change with FOCAL.
//!
//! Run with `cargo run --example quickstart`.

use focal::core::{classify_over_range, MonteCarloNcf};
use focal::{
    classify, DesignPoint, DesignPointBuilder, E2oRange, E2oWeight, Ncf, NcfBand, Scenario,
};

fn main() -> focal::Result<()> {
    // -----------------------------------------------------------------
    // 1. Describe two designs with FOCAL's four axes.
    //    The paper's §5.6 OoO-vs-InO data: +75% performance for +39%
    //    area and 2.32x power.
    // -----------------------------------------------------------------
    let ooo = DesignPoint::from_power_perf(1.39, 2.32, 1.75)?;
    let ino = DesignPoint::reference();
    println!("OoO core: {ooo}");
    println!("InO core: {ino}\n");

    // -----------------------------------------------------------------
    // 2. Evaluate the NCF under both scenarios and both α regimes.
    // -----------------------------------------------------------------
    for alpha in [
        E2oWeight::EMBODIED_DOMINATED,
        E2oWeight::OPERATIONAL_DOMINATED,
    ] {
        for scenario in Scenario::ALL {
            let ncf = Ncf::evaluate(&ooo, &ino, scenario, alpha);
            println!(
                "  {scenario:<11} {alpha}: NCF = {:.3} ({}{:.1}% footprint)",
                ncf.value(),
                if ncf.value() > 1.0 { "+" } else { "" },
                (ncf.value() - 1.0) * 100.0,
            );
        }
    }

    // -----------------------------------------------------------------
    // 3. Classify: strongly / weakly / less sustainable (§4).
    // -----------------------------------------------------------------
    let verdict = classify(&ooo, &ino, E2oWeight::EMBODIED_DOMINATED);
    println!("\nOoO vs InO is {} (Finding #9).", verdict.class);

    // -----------------------------------------------------------------
    // 4. Embrace the uncertainty: is the verdict robust across the whole
    //    α range? (It is: OoO loses everywhere.)
    // -----------------------------------------------------------------
    let robust = classify_over_range(&ooo, &ino, E2oRange::FULL, 21)?;
    println!("Across α ∈ [0, 1]: {robust}");

    // -----------------------------------------------------------------
    // 5. Error bars (the paper's α = 0.8 ± 0.1) and Monte-Carlo bands.
    // -----------------------------------------------------------------
    let band = NcfBand::evaluate(
        &ooo,
        &ino,
        Scenario::FixedWork,
        E2oRange::EMBODIED_DOMINATED,
    );
    println!("\nFixed-work NCF with α error bars: {band}");

    let mc = MonteCarloNcf::new(E2oRange::EMBODIED_DOMINATED, 0.1, 0xF0CA1)?;
    let summary = mc.run(&ooo, &ino, Scenario::FixedWork, 100_000)?;
    println!("Monte-Carlo (±10% ratio jitter): {summary}");

    // -----------------------------------------------------------------
    // 6. A weakly sustainable mechanism: the branch predictor of §5.7.
    //    Lower energy but higher power — sustainable only without usage
    //    rebound.
    // -----------------------------------------------------------------
    let predictor = DesignPointBuilder::new()
        .area(1.01)
        .energy(0.93)
        .performance(1.14)
        .build()?;
    let verdict = classify(&predictor, &ino, E2oWeight::OPERATIONAL_DOMINATED);
    println!(
        "\nA hybrid branch predictor is {} — beware Jevons' paradox.",
        verdict.class
    );
    Ok(())
}
