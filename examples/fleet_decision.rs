//! Fleet-level decision dashboard: a product organization deciding whether
//! to adopt a set of microarchitecture mechanisms across its whole product
//! line — phones, laptops and cloud servers at once.
//!
//! Combines the fleet aggregation, taxonomy and Monte-Carlo robustness
//! tools into the kind of report FOCAL is meant to drive.
//!
//! Run with `cargo run -p focal --example fleet_decision`.

use focal::core::{Fleet, Segment};
use focal::report::Table;
use focal::studies::robustness::robustness_table;
use focal::studies::taxonomy::taxonomy_table;
use focal::uarch::{CoreMicroarch, PipelineGating, PreciseRunahead};
use focal::{DesignPoint, E2oWeight};

fn main() -> focal::Result<()> {
    // -----------------------------------------------------------------
    // The product line, as FOCAL segments: share of total footprint,
    // embodied/operational weight, and rebound exposure per segment.
    // -----------------------------------------------------------------
    let fleet = Fleet::new(vec![
        Segment::new("phones", 0.45, E2oWeight::EMBODIED_DOMINATED, 0.25)?,
        Segment::new("laptops", 0.30, E2oWeight::new(0.55)?, 0.40)?,
        Segment::new("cloud", 0.25, E2oWeight::OPERATIONAL_DOMINATED, 0.90)?,
    ])?;
    println!("{fleet}\n");

    // -----------------------------------------------------------------
    // Candidate mechanisms to roll out next generation.
    // -----------------------------------------------------------------
    let baseline = DesignPoint::reference();
    let ooo = CoreMicroarch::OutOfOrder.design_point()?;
    let candidates: Vec<(&str, DesignPoint, DesignPoint)> = vec![
        (
            "switch OoO cores to FSC",
            CoreMicroarch::ForwardSlice.design_point()?,
            ooo,
        ),
        (
            "add precise runahead",
            PreciseRunahead::PAPER.design_point()?,
            baseline,
        ),
        (
            "enable pipeline gating",
            PipelineGating::PAPER.design_point()?,
            baseline,
        ),
    ];

    let mut table = Table::new(vec![
        "decision",
        "fleet NCF",
        "phones",
        "laptops",
        "cloud",
        "ship it?",
    ]);
    for (name, x, y) in &candidates {
        let per = fleet.per_segment_ncf(x, y);
        let all_win = fleet.wins_every_segment(x, y, 1e-9);
        table.row(vec![
            (*name).to_string(),
            format!("{:.4}", fleet.ncf(x, y)),
            format!("{:.4}", per[0].1),
            format!("{:.4}", per[1].1),
            format!("{:.4}", per[2].1),
            if all_win {
                "yes, everywhere".into()
            } else if fleet.ncf(x, y) < 1.0 {
                "net win, segment losses".into()
            } else {
                "no".into()
            },
        ]);
    }
    println!("{table}");

    // -----------------------------------------------------------------
    // Context: the full mechanism taxonomy and its robustness.
    // -----------------------------------------------------------------
    println!("mechanism taxonomy (computed from the models):\n");
    println!("{}", taxonomy_table()?);
    println!("verdict robustness under ±5% proxy noise, α sampled from the paper's bands:\n");
    println!("{}", robustness_table(0.05, 20_000, 0xF1EE7)?);
    Ok(())
}
