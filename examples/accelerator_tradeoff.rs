//! SoC accelerator sustainability advisor: when does specialization pay
//! off, and when does it become dark-silicon dead weight? (§5.3–§5.4.)
//!
//! Run with `cargo run --example accelerator_tradeoff`.

use focal::report::Table;
use focal::uarch::{Accelerator, DarkSiliconSoc};
use focal::E2oWeight;

fn main() -> focal::Result<()> {
    // -----------------------------------------------------------------
    // A design team is considering accelerators of varying size and
    // efficiency. For each, FOCAL answers: how much must it be used for
    // the chip to come out greener?
    // -----------------------------------------------------------------
    let candidates = [
        ("video decode (paper's H.264)", Accelerator::HAMEED_H264),
        ("crypto engine", Accelerator::new(0.02, 50.0)?),
        ("NPU tile", Accelerator::new(0.30, 100.0)?),
        ("bloated ISP", Accelerator::new(0.80, 20.0)?),
    ];

    let mut table = Table::new(vec![
        "accelerator",
        "area +%",
        "energy adv",
        "break-even u (α=0.8)",
        "break-even u (α=0.2)",
        "NCF @u=0.5 (α=0.2)",
    ]);
    for (name, acc) in &candidates {
        let be = |alpha: E2oWeight| {
            acc.break_even_utilization(alpha)
                .map(|u| format!("{:.1}%", u * 100.0))
                .unwrap_or_else(|| "never".into())
        };
        table.row(vec![
            (*name).to_string(),
            format!("{:.1}", acc.area_overhead() * 100.0),
            format!("{:.0}x", acc.energy_advantage()),
            be(E2oWeight::EMBODIED_DOMINATED),
            be(E2oWeight::OPERATIONAL_DOMINATED),
            format!("{:.3}", acc.ncf(0.5, E2oWeight::OPERATIONAL_DOMINATED)?),
        ]);
    }
    println!("{table}");

    // -----------------------------------------------------------------
    // Scaling up to a full dark-silicon SoC: sweep the fraction of the
    // chip devoted to accelerators.
    // -----------------------------------------------------------------
    let mut soc_table = Table::new(vec![
        "accelerator estate",
        "chip vs core",
        "NCF @u=0.25 (α=0.8)",
        "break-even u (α=0.2)",
    ]);
    for dark_fraction in [0.0, 0.25, 0.5, 2.0 / 3.0, 0.8] {
        let soc = DarkSiliconSoc::new(dark_fraction, 500.0)?;
        soc_table.row(vec![
            format!("{:.0}% of die", dark_fraction * 100.0),
            format!("{:.2}x", soc.chip_area_ratio()),
            format!("{:.3}", soc.ncf(0.25, E2oWeight::EMBODIED_DOMINATED)?),
            soc.break_even_utilization(E2oWeight::OPERATIONAL_DOMINATED)
                .map(|u| format!("{:.0}%", u * 100.0))
                .unwrap_or_else(|| "never".into()),
        ]);
    }
    println!("{soc_table}");

    println!(
        "Paper's conclusion (Findings #6–#7): specialization is strongly sustainable \
         only when operational emissions dominate AND the accelerator is actually \
         used; a chip that is two-thirds dark silicon raises the footprint ~2.5x \
         when embodied emissions dominate. Reconfigurable accelerators amortize the \
         embodied cost across applications."
    );
    Ok(())
}
