//! Multicore design-space explorer: Figures 3–4 interactively on the
//! terminal, plus the Pareto frontier over (performance, NCF).
//!
//! Run with `cargo run --example multicore_explorer`.

use focal::core::{pareto_frontier, Candidate};
use focal::perf::{
    AsymmetricMulticore, LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore,
};
use focal::report::Table;
use focal::studies::multicore::MulticoreStudy;
use focal::{DesignPoint, E2oWeight, Ncf, Scenario};

fn main() -> focal::Result<()> {
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;
    let reference = DesignPoint::reference();

    // -----------------------------------------------------------------
    // Figure 3 as an ASCII chart: operational dominated, fixed-time.
    // -----------------------------------------------------------------
    let fig3 = MulticoreStudy::default().figure3()?;
    println!("{}", fig3.panels[3].to_chart(60, 16).render());

    // -----------------------------------------------------------------
    // A designer's table: symmetric vs. asymmetric chips at several
    // (N, f) points, with NCF against the one-BCE reference.
    // -----------------------------------------------------------------
    let alpha = E2oWeight::OPERATIONAL_DOMINATED;
    let mut table = Table::new(vec![
        "configuration",
        "perf",
        "power",
        "energy",
        "NCF_fw",
        "NCF_ft",
    ]);
    for &f_val in &[0.5, 0.8, 0.95] {
        let f = ParallelFraction::new(f_val)?;
        for &n in &[8u32, 16, 32] {
            let sym = SymmetricMulticore::unit_cores(n)?.design_point(f, gamma, pollack)?;
            let asym = AsymmetricMulticore::new(n as f64, 4.0)?.design_point(f, gamma, pollack)?;
            for (name, dp) in [
                (format!("sym {n} f={f_val}"), sym),
                (format!("asym {n} f={f_val}"), asym),
            ] {
                table.row_numeric(
                    name,
                    &[
                        dp.performance().get(),
                        dp.power().get(),
                        dp.energy().get(),
                        Ncf::evaluate(&dp, &reference, Scenario::FixedWork, alpha).value(),
                        Ncf::evaluate(&dp, &reference, Scenario::FixedTime, alpha).value(),
                    ],
                );
            }
        }
    }
    println!("{table}");

    // -----------------------------------------------------------------
    // Pareto frontier: which configurations are worth building?
    // -----------------------------------------------------------------
    let f = ParallelFraction::new(0.8)?;
    let mut candidates = Vec::new();
    for n in [2u32, 4, 8, 16, 32] {
        candidates.push(Candidate::new(
            format!("sym-{n}"),
            SymmetricMulticore::unit_cores(n)?.design_point(f, gamma, pollack)?,
        ));
        if n > 4 {
            candidates.push(Candidate::new(
                format!("asym-{n}"),
                AsymmetricMulticore::new(n as f64, 4.0)?.design_point(f, gamma, pollack)?,
            ));
        }
        candidates.push(Candidate::new(
            format!("big-{n}"),
            SymmetricMulticore::big_core(n as f64)?.design_point(f, gamma, pollack)?,
        ));
    }
    let frontier = pareto_frontier(&candidates, &reference, Scenario::FixedTime, alpha);
    println!(
        "Pareto-optimal at f=0.8 (fixed-time, operational dominated): {}",
        frontier
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // -----------------------------------------------------------------
    // The paper's three multicore findings, checked live.
    // -----------------------------------------------------------------
    let study = MulticoreStudy::default();
    for finding in [study.finding1()?, study.finding2()?, study.finding3()?] {
        println!("\n{finding}");
    }
    Ok(())
}
