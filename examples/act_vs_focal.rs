//! FOCAL meets ACT: derive empirical α_E2O weights from an ACT-style
//! bottom-up accounting for three device classes, then check that FOCAL's
//! design conclusions hold across all of them (§3.5's complementarity
//! argument, grounded the way the paper grounds its scenarios in Gupta et
//! al.).
//!
//! Run with `cargo run --example act_vs_focal`.

use focal::act::{ActModel, ActParameters, CarbonIntensity, DeviceFootprint, TechNode, UsePhase};
use focal::report::Table;
use focal::uarch::CoreMicroarch;
use focal::{classify, E2oWeight, SiliconArea};

fn main() -> focal::Result<()> {
    let act = ActModel::new(ActParameters::for_node(TechNode::N7));

    // -----------------------------------------------------------------
    // Three device classes with ACT-style absolute footprints.
    // -----------------------------------------------------------------
    let devices = [
        (
            "battery phone SoC",
            SiliconArea::from_mm2(100.0)?,
            UsePhase::new(3.0, 0.05, CarbonIntensity::WORLD_AVERAGE)?,
        ),
        (
            "always-connected device",
            SiliconArea::from_mm2(80.0)?,
            UsePhase::new(5.0, 4.0, CarbonIntensity::WORLD_AVERAGE)?,
        ),
        (
            "datacenter CPU (green PPA)",
            SiliconArea::from_mm2(600.0)?,
            UsePhase::new(4.0, 200.0, CarbonIntensity::RENEWABLE)?,
        ),
    ];

    let mut table = Table::new(vec![
        "device",
        "embodied kg",
        "operational kg",
        "total kg",
        "empirical α",
    ]);
    let mut alphas: Vec<(String, E2oWeight)> = Vec::new();
    for (name, die, use_phase) in &devices {
        let fp = DeviceFootprint::assess(&act, *die, use_phase)?;
        table.row(vec![
            (*name).to_string(),
            format!("{:.1}", fp.embodied().get()),
            format!("{:.1}", fp.operational().get()),
            format!("{:.1}", fp.total().get()),
            format!("{:.2}", fp.e2o_weight().get()),
        ]);
        alphas.push(((*name).to_string(), fp.e2o_weight()));
    }
    println!("{table}");

    // -----------------------------------------------------------------
    // Feed the bottom-up α values back into FOCAL: does the FSC-vs-OoO
    // conclusion (Finding #11) hold for every device class?
    // -----------------------------------------------------------------
    let fsc = CoreMicroarch::ForwardSlice.design_point()?;
    let ooo = CoreMicroarch::OutOfOrder.design_point()?;
    let mut verdicts = Table::new(vec!["device", "α", "FSC vs OoO"]);
    for (name, alpha) in &alphas {
        let verdict = classify(&fsc, &ooo, *alpha);
        verdicts.row(vec![
            name.clone(),
            format!("{:.2}", alpha.get()),
            verdict.class.to_string(),
        ]);
    }
    println!("{verdicts}");

    println!(
        "FOCAL's point (§3.5): when the same conclusion — here, that a \
         complexity-effective core is strongly sustainable versus OoO — holds \
         across the full range of empirically-derived α weights, it survives the \
         inherent data uncertainty that makes absolute models hard to validate."
    );
    Ok(())
}
