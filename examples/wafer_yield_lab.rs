//! Wafer yield laboratory: everything behind FOCAL's embodied proxy in one
//! tour — exact die placement vs. the de Vries formula, the five classical
//! yield models against a Monte-Carlo defect-map simulation, die
//! harvesting, and the wafer economics that make performance-per-wafer a
//! sustainability metric.
//!
//! Run with `cargo run -p focal --example wafer_yield_lab`.

use focal::report::Table;
use focal::wafer::{
    DefectDensity, DefectDistribution, DefectSimulator, DiePlacement, EmbodiedModel, HarvestPolicy,
    Polynomial, Wafer, WaferEconomics, YieldModel,
};
use focal::SiliconArea;

fn main() -> focal::Result<()> {
    let wafer = Wafer::W300MM;
    let d0 = DefectDensity::TSMC_VOLUME;

    // -----------------------------------------------------------------
    // 1. Geometry: how many chips does a wafer hold? Three estimators.
    // -----------------------------------------------------------------
    let mut geo = Table::new(vec!["die (mm²)", "area ratio", "de Vries", "exact grid"]);
    for mm2 in [100.0, 300.0, 600.0] {
        let die = SiliconArea::from_mm2(mm2)?;
        geo.row(vec![
            format!("{mm2:.0}"),
            format!("{:.0}", wafer.chips_area_ratio(die)),
            format!("{:.0}", wafer.chips_de_vries(die)?),
            format!("{}", wafer.chips_exact_square(die)?),
        ]);
    }
    println!("chips per 300 mm wafer:\n\n{geo}");

    // -----------------------------------------------------------------
    // 2. Yield models vs. a simulated wafer batch. Uniform random
    //    defects reproduce Poisson; clustered defects climb toward the
    //    Seeds/negative-binomial regime — the spatial story behind why
    //    Figure 1 uses Murphy.
    // -----------------------------------------------------------------
    let die = SiliconArea::from_mm2(400.0)?;
    let lambda = d0.defect_load(die);
    let placement = DiePlacement::square(20.0);

    let uniform = DefectSimulator::new(wafer, DefectDistribution::Uniform, 0xF0CA1).run(
        &placement,
        d0.get_per_cm2(),
        60,
    )?;
    let clustered = DefectSimulator::new(
        wafer,
        DefectDistribution::Clustered {
            mean_cluster_size: 8.0,
            cluster_radius_mm: 2.0,
        },
        0xF0CA1,
    )
    .run(&placement, d0.get_per_cm2(), 60)?;

    let mut yields = Table::new(vec!["model", "yield @400 mm²"]);
    for (name, y) in [
        (
            "poisson (analytic)",
            YieldModel::Poisson.fraction_good_from_load(lambda),
        ),
        (
            "murphy (analytic, Fig 1)",
            YieldModel::Murphy.fraction_good_from_load(lambda),
        ),
        (
            "seeds (analytic)",
            YieldModel::Seeds.fraction_good_from_load(lambda),
        ),
        ("simulated, uniform defects", uniform.mean_yield),
        ("simulated, clustered defects", clustered.mean_yield),
    ] {
        yields.row(vec![name.to_string(), format!("{y:.3}")]);
    }
    println!("yield at D0 = 0.09/cm² (λ = {lambda:.2}):\n\n{yields}");

    // -----------------------------------------------------------------
    // 3. Harvesting: how binning walks the Murphy curve back toward the
    //    perfect-yield bound (§3.1's profit-maximization observation).
    // -----------------------------------------------------------------
    let reference = SiliconArea::from_mm2(100.0)?;
    let big = SiliconArea::from_mm2(800.0)?;
    let mut harvest = Table::new(vec!["salvage", "embodied per chip @800 mm² (vs 100 mm²)"]);
    for s in [0.0, 0.5, 1.0] {
        let model = EmbodiedModel::figure1_murphy().with_harvest(HarvestPolicy::new(s)?);
        harvest.row(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.2}x", model.normalized_footprint(big, reference)?),
        ]);
    }
    println!("die harvesting:\n\n{harvest}");

    // -----------------------------------------------------------------
    // 4. Figure 1's trendlines, refit live.
    // -----------------------------------------------------------------
    let pts = EmbodiedModel::figure1_murphy().sweep_normalized(100.0, 800.0, 15, reference)?;
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    let quad = Polynomial::fit(&xs, &ys, 2)?;
    println!(
        "Murphy trendline: {:.3} {:+.5}*A {:+.8}*A²  (R² = {:.5})\n",
        quad.coefficients()[0],
        quad.coefficients()[1],
        quad.coefficients()[2],
        quad.r_squared(&xs, &ys)
    );

    // -----------------------------------------------------------------
    // 5. Economics: cost per good die and performance per wafer — why a
    //    small fast chip beats a reticle-limit monster on both money and
    //    carbon.
    // -----------------------------------------------------------------
    let econ = WaferEconomics::new(EmbodiedModel::figure1_murphy(), 17_000.0)?;
    let small = SiliconArea::from_mm2(150.0)?;
    let monster = SiliconArea::from_mm2(700.0)?;
    // Pollack: performance scales as sqrt(area).
    let ppw_ratio = econ.ppw_ratio((small, 1.0), (monster, (700.0f64 / 150.0).sqrt()))?;
    println!(
        "cost per good die: {:.0} (150 mm²) vs {:.0} (700 mm²); \
         performance-per-wafer advantage of the small chip: {:.1}x",
        econ.cost_per_good_die(small)?,
        econ.cost_per_good_die(monster)?,
        ppw_ratio
    );
    println!(
        "\nThe embodied story in one line: bigger dies lose twice — fewer chips per \
         wafer AND worse yield — which is exactly why FOCAL's area proxy (and the \
         paper's 'build smaller chips' conclusion) holds."
    );
    Ok(())
}
