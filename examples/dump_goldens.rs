//! Regenerates the golden CSV dumps pinned by `tests/figure_goldens.rs`.
//!
//! Run from the repo root after an *intentional* model change:
//!
//! ```sh
//! cargo run --example dump_goldens
//! ```
//!
//! and review the `tests/goldens/*.csv` diff like any other golden
//! update. The differential tests in `tests/engine_determinism.rs`
//! guarantee the dumps are independent of `FOCAL_THREADS`, so the
//! regeneration thread count does not matter.

use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    fs::create_dir_all(&dir)?;
    for fig in focal::studies::all_figures()? {
        let path = dir.join(format!("{}.csv", fig.id));
        fs::write(&path, fig.to_csv())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
