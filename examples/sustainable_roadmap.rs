//! Sustainable multicore roadmap: the paper's §7 case study (Figure 9)
//! plus a multi-node projection combining die shrinks with the Imec
//! manufacturing trend.
//!
//! Run with `cargo run --example sustainable_roadmap`.

use focal::report::Table;
use focal::scaling::{DieShrink, ScalingRegime, TechNode};
use focal::studies::case_study::CaseStudy;
use focal::wafer::{EmbodiedModel, ManufacturingTrend};
use focal::{classify, E2oWeight, SiliconArea};

fn main() -> focal::Result<()> {
    // -----------------------------------------------------------------
    // Figure 9: 4..8 cores in the next node under a fixed power budget.
    // -----------------------------------------------------------------
    let study = CaseStudy::paper()?;
    let mut table = Table::new(vec![
        "option",
        "clock gain",
        "perf",
        "embodied",
        "verdict (α=0.8)",
        "verdict (α=0.2)",
    ]);
    for (cores, emb_class, op_class) in study.classification_table()? {
        let o = study.option(cores)?;
        table.row(vec![
            format!("{cores} cores"),
            format!("{:.2}x", o.frequency_gain),
            format!("{:.2}x", o.performance),
            format!("{:.3}", o.embodied),
            emb_class.to_string(),
            op_class.to_string(),
        ]);
    }
    println!("{table}");
    println!("{}", study.figure9()?.panels[0].to_chart(50, 12).render());

    // -----------------------------------------------------------------
    // Die shrinks along the whole 28nm → 3nm roadmap: how much embodied
    // footprint does soberness save, cumulatively?
    // -----------------------------------------------------------------
    let mut roadmap = Table::new(vec![
        "node",
        "shrunk area",
        "wafer footprint",
        "net embodied",
        "verdict",
    ]);
    for (i, node) in TechNode::ROADMAP.iter().enumerate() {
        let shrink = DieShrink::new(
            ScalingRegime::PostDennard,
            ManufacturingTrend::IMEC,
            i as u32,
        );
        let (new, old) = shrink.design_points()?;
        let verdict = classify(&new, &old, E2oWeight::EMBODIED_DOMINATED);
        roadmap.row(vec![
            node.to_string(),
            format!("{:.3}", 0.5_f64.powi(i as i32)),
            format!(
                "{:.3}",
                ManufacturingTrend::IMEC.wafer_footprint_node_factor(i as u32)
            ),
            format!("{:.3}", shrink.embodied_factor()),
            if i == 0 {
                "(baseline)".to_string()
            } else {
                verdict.class.to_string()
            },
        ]);
    }
    println!("{roadmap}");

    // -----------------------------------------------------------------
    // The same story through the wafer model: what the die shrink does
    // to good chips per wafer (a 200 mm² die shrinking by half per node).
    // -----------------------------------------------------------------
    let murphy = EmbodiedModel::figure1_murphy();
    let mut wafer_table = Table::new(vec!["die size", "good chips/wafer (Murphy, D0=0.09)"]);
    let mut area = 200.0;
    for node in TechNode::ROADMAP.iter().take(4) {
        let die = SiliconArea::from_mm2(area)?;
        wafer_table.row(vec![
            format!("{node}: {area:.0} mm²"),
            format!("{:.0}", murphy.good_chips_per_wafer(die)?),
        ]);
        area /= 2.0;
    }
    println!("{wafer_table}");

    println!(
        "Conclusion (§7): the sober 4-6 core options are strongly sustainable AND \
         1.41-1.52x faster; pushing to 7-8 cores erases the sustainability win. \
         Moore's law could have made chips greener — if we kept them small."
    );
    Ok(())
}
