//! Uncertainty analysis end-to-end: FOCAL's whole reason for existing is
//! that the underlying data is uncertain. This example takes one design
//! decision — adopting precise runahead execution — and interrogates it
//! with every uncertainty tool in the crate: α crossovers, error-bar
//! bands, interval arithmetic, Monte-Carlo sampling, rebound tolerance
//! and deployment-rebound weight shifts.
//!
//! Run with `cargo run --example uncertainty_analysis`.

use focal::core::{
    alpha_crossover, blended_ncf, deployment_adjusted_weight, ncf_interval, rebound_tolerance,
    MonteCarloNcf, NcfSensitivity,
};
use focal::report::Table;
use focal::uarch::PreciseRunahead;
use focal::{classify, DesignPoint, E2oRange, E2oWeight, Ncf, Scenario};

fn main() -> focal::Result<()> {
    let pre = PreciseRunahead::PAPER.design_point()?;
    let base = DesignPoint::reference();
    println!("Design under study: {} → {pre}\n", PreciseRunahead::PAPER);

    // -----------------------------------------------------------------
    // 1. Where does the verdict flip as α sweeps [0, 1]?
    // -----------------------------------------------------------------
    for scenario in Scenario::ALL {
        println!(
            "  {scenario:<11}: {}",
            alpha_crossover(&pre, &base, scenario)
        );
    }

    // -----------------------------------------------------------------
    // 2. Error bars: the paper's α bands, exact (NCF is affine in α).
    // -----------------------------------------------------------------
    let mut bands = Table::new(vec![
        "scenario",
        "α band",
        "NCF min",
        "NCF center",
        "NCF max",
    ]);
    for range in [
        E2oRange::EMBODIED_DOMINATED,
        E2oRange::OPERATIONAL_DOMINATED,
    ] {
        for scenario in Scenario::ALL {
            let band = focal::NcfBand::evaluate(&pre, &base, scenario, range);
            bands.row(vec![
                scenario.to_string(),
                range.to_string(),
                format!("{:.4}", band.min()),
                format!("{:.4}", band.center()),
                format!("{:.4}", band.max()),
            ]);
        }
    }
    println!("\n{bands}");

    // -----------------------------------------------------------------
    // 3. Interval arithmetic: worst-case bounds with ±10% proxy-ratio
    //    measurement error on top of the α band.
    // -----------------------------------------------------------------
    let iv = ncf_interval(
        &pre,
        &base,
        Scenario::FixedWork,
        E2oRange::OPERATIONAL_DOMINATED,
        0.10,
    )?;
    println!("fixed-work NCF with ±10% ratio error: {iv}");

    // -----------------------------------------------------------------
    // 4. Monte-Carlo: the probability that PRE reduces the footprint.
    // -----------------------------------------------------------------
    let mc = MonteCarloNcf::new(E2oRange::OPERATIONAL_DOMINATED, 0.10, 0xF0CA1)?;
    for scenario in Scenario::ALL {
        let s = mc.run(&pre, &base, scenario, 200_000)?;
        println!("  {scenario:<11}: {s}");
    }

    // -----------------------------------------------------------------
    // 5. Sensitivity: which uncertainty axis dominates the estimate?
    // -----------------------------------------------------------------
    let ncf = Ncf::evaluate(
        &pre,
        &base,
        Scenario::FixedWork,
        E2oWeight::OPERATIONAL_DOMINATED,
    );
    let s = NcfSensitivity::of(&ncf);
    println!(
        "\nsensitivities: dNCF/dα = {:+.3}, dNCF/d(embodied) = {:.2}, \
         dNCF/d(operational) = {:.2} → dominant axis: {}",
        s.d_alpha,
        s.d_embodied,
        s.d_operational,
        s.dominant_axis()
    );

    // -----------------------------------------------------------------
    // 6. Rebound tolerance: how much of PRE's deployment can behave
    //    fixed-time (usage rebound) before the saving flips to a loss?
    // -----------------------------------------------------------------
    let tol = rebound_tolerance(&pre, &base, E2oWeight::OPERATIONAL_DOMINATED)
        .expect("PRE is rebound-sensitive");
    println!(
        "rebound tolerance: the energy saving survives until {:.0}% of usage \
         rebounds (blended NCF at that share = {:.4})",
        tol * 100.0,
        blended_ncf(&pre, &base, E2oWeight::OPERATIONAL_DOMINATED, tol)?
    );

    // -----------------------------------------------------------------
    // 7. Deployment rebound: if PRE's efficiency drives 4x more units,
    //    the effective α shifts toward embodied.
    // -----------------------------------------------------------------
    let shifted = deployment_adjusted_weight(E2oWeight::OPERATIONAL_DOMINATED, 4.0)?;
    println!(
        "deployment rebound 4x: α 0.20 → {:.2}; verdict {} → {}",
        shifted.get(),
        classify(&pre, &base, E2oWeight::OPERATIONAL_DOMINATED).class,
        classify(&pre, &base, shifted).class,
    );
    Ok(())
}
