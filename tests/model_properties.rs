//! Property-based tests of the core model invariants (proptest).

use focal::core::{ncf_interval, MonteCarloNcf};
use focal::{classify, DesignPoint, E2oRange, E2oWeight, Ncf, Scenario, Sustainability};
use proptest::prelude::*;

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    (
        0.05f64..20.0, // area
        0.05f64..20.0, // power
        0.05f64..20.0, // performance
    )
        .prop_map(|(a, p, s)| DesignPoint::from_power_perf(a, p, s).expect("positive axes"))
}

fn arb_alpha() -> impl Strategy<Value = E2oWeight> {
    (0.0f64..=1.0).prop_map(|a| E2oWeight::new(a).expect("alpha in [0,1]"))
}

proptest! {
    /// NCF of a design against itself is exactly 1 for any α and scenario.
    #[test]
    fn ncf_self_comparison_is_one(x in arb_design(), alpha in arb_alpha()) {
        for scenario in Scenario::ALL {
            let v = Ncf::evaluate(&x, &x, scenario, alpha).value();
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }

    /// NCF is affine in α: value(α) = α·a + (1−α)·o, so the midpoint value
    /// is the mean of the endpoint values.
    #[test]
    fn ncf_is_affine_in_alpha(x in arb_design(), y in arb_design()) {
        for scenario in Scenario::ALL {
            let lo = Ncf::evaluate(&x, &y, scenario, E2oWeight::new(0.0).unwrap()).value();
            let hi = Ncf::evaluate(&x, &y, scenario, E2oWeight::new(1.0).unwrap()).value();
            let mid = Ncf::evaluate(&x, &y, scenario, E2oWeight::new(0.5).unwrap()).value();
            prop_assert!((mid - 0.5 * (lo + hi)).abs() < 1e-9);
        }
    }

    /// NCF is positively homogeneous: scaling both designs' axes by the
    /// same factor leaves the NCF unchanged.
    #[test]
    fn ncf_is_scale_invariant(
        x in arb_design(),
        y in arb_design(),
        alpha in arb_alpha(),
        k in 0.1f64..10.0,
    ) {
        let sx = DesignPoint::from_raw(
            x.area().get() * k,
            x.power().get() * k,
            x.energy().get() * k,
            x.performance().get(),
        ).unwrap();
        let sy = DesignPoint::from_raw(
            y.area().get() * k,
            y.power().get() * k,
            y.energy().get() * k,
            y.performance().get(),
        ).unwrap();
        for scenario in Scenario::ALL {
            let plain = Ncf::evaluate(&x, &y, scenario, alpha).value();
            let scaled = Ncf::evaluate(&sx, &sy, scenario, alpha).value();
            prop_assert!((plain - scaled).abs() < 1e-9 * plain.max(1.0));
        }
    }

    /// The reversal inequality: NCF(X,Y)·NCF(Y,X) ≥ 1 for every scenario
    /// and α (Cauchy–Schwarz on the weighted ratio means). Consequently a
    /// strongly sustainable X makes Y less sustainable — but NOT vice
    /// versa: both directions of a comparison can exceed 1 when the two
    /// proxy ratios pull in opposite directions. This asymmetry is a real
    /// property of the weighted-arithmetic-mean NCF definition.
    #[test]
    fn classification_reversal(x in arb_design(), y in arb_design(), alpha in arb_alpha()) {
        for scenario in Scenario::ALL {
            let fwd = Ncf::evaluate(&x, &y, scenario, alpha).value();
            let rev = Ncf::evaluate(&y, &x, scenario, alpha).value();
            prop_assert!(fwd * rev >= 1.0 - 1e-9, "{fwd} * {rev} < 1");
        }
        let fwd = classify(&x, &y, alpha).class;
        let rev = classify(&y, &x, alpha).class;
        if fwd == Sustainability::Strongly {
            prop_assert_eq!(rev, Sustainability::Less);
        }
        if rev == Sustainability::Strongly {
            prop_assert_eq!(fwd, Sustainability::Less);
        }
    }

    /// The analytic NCF interval brackets every Monte-Carlo sample.
    #[test]
    fn interval_brackets_monte_carlo(
        x in arb_design(),
        y in arb_design(),
        seed in any::<u64>(),
    ) {
        let range = E2oRange::FULL;
        let iv = ncf_interval(&x, &y, Scenario::FixedWork, range, 0.05).unwrap();
        let mc = MonteCarloNcf::new(range, 0.05, seed).unwrap();
        let summary = mc.run(&x, &y, Scenario::FixedWork, 500).unwrap();
        prop_assert!(summary.min >= iv.lo() - 1e-9);
        prop_assert!(summary.max <= iv.hi() + 1e-9);
    }

    /// Strict dominance in all four axes forces a strong verdict for any
    /// interior α.
    #[test]
    fn dominance_implies_strong(
        y in arb_design(),
        shrink in 0.2f64..0.95,
        alpha in 0.01f64..0.99,
    ) {
        let x = DesignPoint::from_raw(
            y.area().get() * shrink,
            y.power().get() * shrink,
            y.energy().get() * shrink,
            y.performance().get(),
        ).unwrap();
        let c = classify(&x, &y, E2oWeight::new(alpha).unwrap());
        prop_assert_eq!(c.class, Sustainability::Strongly);
    }

    /// saving_percent and value are consistent: saving = (1 − value)·100.
    #[test]
    fn saving_percent_consistent(x in arb_design(), y in arb_design(), alpha in arb_alpha()) {
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedTime, alpha);
        prop_assert!((ncf.saving_percent() - (1.0 - ncf.value()) * 100.0).abs() < 1e-9);
    }
}
