//! Property-based tests of the substrate crates: multicore laws, yield
//! models, wafer geometry, cache scaling, DVFS electricals.

use focal::cache::{CacheSize, CactiLite, MemoryBoundWorkload, MissRateModel};
use focal::perf::{
    amdahl_limit, amdahl_speedup, AsymmetricMulticore, DynamicMulticore, LeakageFraction,
    ParallelFraction, PollackRule, SymmetricMulticore,
};
use focal::uarch::DvfsCore;
use focal::wafer::{DefectDensity, EmbodiedModel, Wafer, YieldModel};
use focal::SiliconArea;
use proptest::prelude::*;

fn arb_fraction() -> impl Strategy<Value = ParallelFraction> {
    (0.0f64..=1.0).prop_map(|f| ParallelFraction::new(f).unwrap())
}

fn arb_gamma() -> impl Strategy<Value = LeakageFraction> {
    (0.0f64..0.99).prop_map(|g| LeakageFraction::new(g).unwrap())
}

proptest! {
    /// Amdahl: 1 ≤ S(f, n) ≤ min(n, limit(f)).
    #[test]
    fn amdahl_bounds(f in arb_fraction(), n in 1u32..4096) {
        let s = amdahl_speedup(f, n).unwrap();
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= n as f64 + 1e-9);
        prop_assert!(s <= amdahl_limit(f) + 1e-9);
    }

    /// Woo–Lee closed form: for unit-core multicores, E = 1 + (1−f)(N−1)γ
    /// exactly, and P = E·S.
    #[test]
    fn woo_lee_closed_form(f in arb_fraction(), gamma in arb_gamma(), n in 1u32..256) {
        let chip = SymmetricMulticore::unit_cores(n).unwrap();
        let e = chip.energy(f, gamma, PollackRule::CLASSIC);
        let expected = 1.0 + f.serial() * (n as f64 - 1.0) * gamma.get();
        prop_assert!((e - expected).abs() < 1e-9);
        let p = chip.power(f, gamma, PollackRule::CLASSIC);
        let s = chip.speedup(f, PollackRule::CLASSIC);
        prop_assert!((p - e * s).abs() < 1e-9 * p.max(1.0));
    }

    /// The asymmetric chip's speedup is bounded by the dynamic topology's
    /// (Hill–Marty's ordering) and at least the minimum of its two modes.
    #[test]
    fn hill_marty_topology_ordering(
        f in arb_fraction(),
        n in 6u32..128,
    ) {
        let pollack = PollackRule::CLASSIC;
        let asym = AsymmetricMulticore::new(n as f64, 4.0).unwrap();
        let dynamic = DynamicMulticore::new(n as f64).unwrap();
        prop_assert!(asym.speedup(f, pollack) <= dynamic.speedup(f, pollack) + 1e-9);
        let sym = SymmetricMulticore::unit_cores(n).unwrap();
        prop_assert!(sym.speedup(f, pollack) <= dynamic.speedup(f, pollack) + 1e-9);
    }

    /// Energy conservation: every topology's design point satisfies
    /// E = P / perf.
    #[test]
    fn design_points_satisfy_energy_identity(f in arb_fraction(), n in 2u32..64) {
        let gamma = LeakageFraction::PAPER;
        let pollack = PollackRule::CLASSIC;
        for dp in [
            SymmetricMulticore::unit_cores(n).unwrap().design_point(f, gamma, pollack).unwrap(),
            AsymmetricMulticore::new((n + 4) as f64, 4.0).unwrap().design_point(f, gamma, pollack).unwrap(),
            DynamicMulticore::new(n as f64).unwrap().design_point(f, gamma, pollack).unwrap(),
        ] {
            let derived = dp.power().get() / dp.performance().get();
            prop_assert!((dp.energy().get() - derived).abs() < 1e-9 * derived.max(1.0));
        }
    }

    /// Yield models: within (0, 1], monotone non-increasing in defect load,
    /// and ordered Poisson ≤ Murphy ≤ Seeds.
    #[test]
    fn yield_model_properties(lambda in 0.0f64..30.0, delta in 0.01f64..5.0) {
        for model in [YieldModel::Poisson, YieldModel::Murphy, YieldModel::Seeds] {
            let y1 = model.fraction_good_from_load(lambda);
            let y2 = model.fraction_good_from_load(lambda + delta);
            prop_assert!(y1 > 0.0 && y1 <= 1.0);
            prop_assert!(y2 <= y1 + 1e-12);
        }
        let p = YieldModel::Poisson.fraction_good_from_load(lambda);
        let m = YieldModel::Murphy.fraction_good_from_load(lambda);
        let s = YieldModel::Seeds.fraction_good_from_load(lambda);
        prop_assert!(p <= m + 1e-12 && m <= s + 1e-12);
    }

    /// Chips per wafer: de Vries is positive, below the area-ratio bound,
    /// and decreasing in die size over the practical range.
    #[test]
    fn chips_per_wafer_properties(a in 20.0f64..900.0, grow in 1.05f64..2.0) {
        let w = Wafer::W300MM;
        let die = SiliconArea::from_mm2(a).unwrap();
        let bigger = SiliconArea::from_mm2(a * grow).unwrap();
        let cpw = w.chips_de_vries(die).unwrap();
        prop_assert!(cpw > 0.0);
        prop_assert!(cpw < w.chips_area_ratio(die));
        prop_assert!(w.chips_de_vries(bigger).unwrap() < cpw);
    }

    /// Normalized embodied footprint grows super-linearly in die size under
    /// Murphy yield but stays finite and positive.
    #[test]
    fn embodied_footprint_properties(a in 100.0f64..800.0) {
        let reference = SiliconArea::from_mm2(100.0).unwrap();
        let die = SiliconArea::from_mm2(a).unwrap();
        let perfect = EmbodiedModel::figure1_perfect().normalized_footprint(die, reference).unwrap();
        let murphy = EmbodiedModel::figure1_murphy().normalized_footprint(die, reference).unwrap();
        prop_assert!(perfect >= 1.0 - 1e-9);
        prop_assert!(murphy >= perfect - 1e-12);
        // Super-linearity: footprint grows at least as fast as area.
        prop_assert!(perfect >= a / 100.0 - 1e-9);
    }

    /// Defect load is linear in area.
    #[test]
    fn defect_load_linear(a in 1.0f64..1000.0, k in 1.0f64..5.0) {
        let d0 = DefectDensity::TSMC_VOLUME;
        let l1 = d0.defect_load(SiliconArea::from_mm2(a).unwrap());
        let l2 = d0.defect_load(SiliconArea::from_mm2(a * k).unwrap());
        prop_assert!((l2 - l1 * k).abs() < 1e-9);
    }

    /// CACTI-lite is exactly multiplicative (a power law): the ratio
    /// between two sizes depends only on their quotient.
    #[test]
    fn cacti_power_law(m in 1.0f64..8.0, k in 1.0f64..4.0) {
        let c = CactiLite::paper_65nm();
        let s1 = CacheSize::from_mib(m).unwrap();
        let s2 = CacheSize::from_mib(m * k).unwrap();
        let direct = c.energy_ratio(s2).unwrap() / c.energy_ratio(s1).unwrap();
        let from_one = c.energy_ratio(CacheSize::from_mib(k).unwrap()).unwrap();
        prop_assert!((direct - from_one).abs() < 1e-6);
    }

    /// The workload's performance is monotone in cache size and its energy
    /// components stay positive.
    #[test]
    fn cache_workload_monotonicity(m in 1.0f64..16.0) {
        let w = MemoryBoundWorkload::paper().unwrap();
        let small = CacheSize::from_mib(m).unwrap();
        let big = CacheSize::from_mib(m * 1.5).unwrap();
        prop_assert!(w.performance(big) > w.performance(small));
        prop_assert!(w.energy(small).unwrap() > 0.0);
    }

    /// Miss-rate power law composes: ratio(a→c) = ratio(a→b)·ratio(b→c).
    #[test]
    fn missrate_composes(a in 0.5f64..4.0, b in 4.0f64..16.0, c in 16.0f64..64.0) {
        let m = MissRateModel::SQRT2_RULE;
        let (sa, sb, sc) = (
            CacheSize::from_mib(a).unwrap(),
            CacheSize::from_mib(b).unwrap(),
            CacheSize::from_mib(c).unwrap(),
        );
        let direct = m.miss_ratio(sc, sa);
        let composed = m.miss_ratio(sb, sa) * m.miss_ratio(sc, sb);
        prop_assert!((direct - composed).abs() < 1e-9);
    }

    /// DVFS electricals: energy = power / performance at every operating
    /// point, and both shrink monotonically when scaling down.
    #[test]
    fn dvfs_identities(delta in 0.1f64..1.0, k in 0.2f64..1.0) {
        let core = DvfsCore::new(delta, 0.02).unwrap();
        let e = core.energy(k).unwrap();
        let p = core.power(k).unwrap();
        let s = core.performance(k).unwrap();
        prop_assert!((e - p / s).abs() < 1e-12);
        prop_assert!(p <= core.power(1.0).unwrap() + 1e-12);
        prop_assert!(e <= core.energy(1.0).unwrap() + 1e-12);
    }
}
