//! Oracle equivalence for the scenario DSL: every twin in
//! `data/scenarios/` must compile and produce byte-identical output to
//! its hand-coded registry oracle, the corpus must cover every registry
//! entry (a new figure or finding without a DSL twin fails here), and
//! batch evaluation must digest identically at 1 and 4 threads.

use std::collections::BTreeMap;
use std::path::Path;

use focal::engine::Engine;
use focal::scenario::{evaluate_all_on, load_dir, CompiledScenario, ScenarioOutput};
use focal::studies::{builtin_registry, StudyOutput};

fn scenarios_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/data/scenarios"))
}

fn twins() -> Vec<CompiledScenario> {
    load_dir(scenarios_dir()).expect("data/scenarios must load cleanly")
}

/// Twin corpus indexed by the registry id each twin mirrors.
fn twins_by_registry_id() -> BTreeMap<String, CompiledScenario> {
    let mut map = BTreeMap::new();
    for twin in twins() {
        if let Some(id) = twin.registry_id() {
            let clash = map.insert(id.clone(), twin);
            assert!(clash.is_none(), "two twins mirror registry id {id}");
        }
    }
    map
}

fn oracle_bytes(output: &StudyOutput) -> Vec<u8> {
    match output {
        StudyOutput::Figure(figure) => figure.to_csv().into_bytes(),
        StudyOutput::Finding(finding) => {
            let mut text = finding.to_string();
            text.push('\n');
            text.into_bytes()
        }
    }
}

/// Corpus coverage: every hand-coded registry entry (9 figures + 18
/// findings) must have a DSL twin. Adding a figure or finding to the
/// registry without shipping its twin fails this test.
#[test]
fn every_registry_entry_has_a_dsl_twin() {
    let twins = twins_by_registry_id();
    let mut missing = Vec::new();
    for entry in builtin_registry() {
        if !twins.contains_key(entry.id) {
            missing.push(entry.id);
        }
    }
    assert!(
        missing.is_empty(),
        "registry entries without a DSL twin in data/scenarios/: {missing:?}"
    );
}

/// Conversely, every twin that claims a registry id must point at a
/// real entry (no stale twins after a registry rename).
#[test]
fn every_twin_mirrors_a_real_registry_entry() {
    let registry_ids: Vec<&str> = builtin_registry().iter().map(|e| e.id).collect();
    for (id, twin) in twins_by_registry_id() {
        assert!(
            registry_ids.contains(&id.as_str()),
            "twin `{}` mirrors unknown registry id {id}",
            twin.id()
        );
    }
}

/// The tentpole invariant: each twin's DSL-compiled evaluation is
/// byte-identical to its hand-coded oracle.
#[test]
fn twins_match_hand_coded_oracles_byte_for_byte() {
    let twins = twins_by_registry_id();
    for entry in builtin_registry() {
        let twin = twins.get(entry.id).expect("coverage test pins this");
        let dsl = twin
            .evaluate()
            .unwrap_or_else(|e| panic!("twin {} failed to evaluate: {e}", entry.id));
        let oracle = entry
            .build()
            .unwrap_or_else(|e| panic!("oracle {} failed to build: {e}", entry.id));
        assert_eq!(
            dsl.to_bytes(),
            oracle_bytes(&oracle),
            "twin {} diverges from its hand-coded oracle",
            entry.id
        );
    }
}

/// Batch evaluation over the whole corpus (twins plus the taxonomy
/// robustness scenario) must produce identical digests at 1 and 4
/// threads — the DSL rides the same seed/chunk discipline as the
/// hand-coded suite.
#[test]
fn scenario_digests_are_thread_invariant() {
    let corpus = twins();
    let digests = |threads: usize| -> Vec<(String, String)> {
        let engine = Engine::with_threads(threads);
        evaluate_all_on(&engine, &corpus)
            .expect("batch evaluation must not poison")
            .into_iter()
            .map(|(id, result)| {
                let output: ScenarioOutput =
                    result.unwrap_or_else(|e| panic!("scenario {id} failed: {e}"));
                (id, output.digest_entry())
            })
            .collect()
    };
    assert_eq!(digests(1), digests(4));
}

/// The robustness scenario is part of the shipped corpus and evaluates
/// on the engine (it has no serial path and no registry oracle).
#[test]
fn taxonomy_robustness_twin_is_present_and_evaluates() {
    let corpus = twins();
    let tax = corpus
        .iter()
        .find(|s| s.id() == "taxonomy-robustness")
        .expect("data/scenarios must ship the taxonomy robustness scenario");
    assert!(tax.registry_id().is_none());
    let output = tax.evaluate_on(&Engine::serial()).expect("must evaluate");
    match output {
        ScenarioOutput::Robustness(rows) => assert!(!rows.is_empty()),
        other => panic!("expected robustness rows, got {other:?}"),
    }
}
