//! Integration tests spanning multiple crates: the studies layer must be
//! consistent with the substrates it is built on, and the ACT baseline
//! must agree with FOCAL's relative story.

use focal::act::{ActModel, ActParameters, CarbonIntensity, DeviceFootprint, UsePhase};
use focal::perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
use focal::scaling::{iso_power_frequency, DieShrink, ScalingRegime, TechNode};
use focal::studies::case_study::CaseStudy;
use focal::wafer::{EmbodiedModel, ManufacturingTrend, ScopeBreakdown, Wafer};
use focal::{classify, E2oWeight, Ncf, Scenario, SiliconArea, Sustainability};

/// The §7 case study must be derivable by hand from the perf + scaling
/// substrates (no hidden constants in the study).
#[test]
fn case_study_matches_first_principles() {
    let study = CaseStudy::paper().unwrap();
    let f = ParallelFraction::new(0.75).unwrap();
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;

    for cores in 4..=8u32 {
        let opt = study.option(cores).unwrap();

        // Frequency: Woo-Lee power ratio into the iso-power solver.
        let p4 = SymmetricMulticore::unit_cores(4)
            .unwrap()
            .power(f, gamma, pollack);
        let pn = SymmetricMulticore::unit_cores(cores)
            .unwrap()
            .power(f, gamma, pollack);
        let phi = iso_power_frequency(pn / p4, std::f64::consts::SQRT_2).unwrap();
        assert!((opt.frequency_gain - phi).abs() < 1e-12, "{cores} cores");

        // Performance: Amdahl × frequency, normalized to the old chip.
        let s4 = SymmetricMulticore::unit_cores(4)
            .unwrap()
            .speedup(f, pollack);
        let sn = SymmetricMulticore::unit_cores(cores)
            .unwrap()
            .speedup(f, pollack);
        assert!((opt.performance - sn * phi / s4).abs() < 1e-12);

        // Embodied: area halving × Imec growth.
        let expected = cores as f64 / 8.0 * ManufacturingTrend::IMEC.wafer_footprint_node_factor(1);
        assert!((opt.embodied - expected).abs() < 1e-12);
    }
}

/// The die-shrink study agrees with projecting a wafer's scope breakdown
/// with the Imec trend: the scope-2 factor drives the embodied growth.
#[test]
fn die_shrink_consistent_with_scope_projection() {
    let trend = ManufacturingTrend::IMEC;
    let per_wafer = ScopeBreakdown::new(10.0, 50.0, 20.0).unwrap();
    let next = trend.project_nodes(&per_wafer, 1).unwrap();
    assert!((next.scope2() / per_wafer.scope2() - 1.252).abs() < 1e-9);

    let shrink = DieShrink::next_node(ScalingRegime::PostDennard);
    assert!((shrink.embodied_factor() - 0.5 * 1.252).abs() < 1e-9);
}

/// Walking the full roadmap: six post-Dennard shrinks leave the embodied
/// footprint at 0.626^6 ≈ 6% of the 28nm design — the "smaller chips"
/// argument of the paper's §6 discussion, cumulatively.
#[test]
fn roadmap_cumulative_shrink() {
    let transitions = TechNode::N28.transitions_to(TechNode::N3).unwrap();
    assert_eq!(transitions, 6);
    let shrink = DieShrink::new(
        ScalingRegime::PostDennard,
        ManufacturingTrend::IMEC,
        transitions,
    );
    let single = DieShrink::next_node(ScalingRegime::PostDennard).embodied_factor();
    assert!((shrink.embodied_factor() - single.powi(6)).abs() < 1e-9);
    assert!(shrink.embodied_factor() < 0.07);
}

/// The wafer model and the ACT baseline tell the same embodied story: a
/// die twice the size carries (at least) twice the ACT embodied carbon,
/// and more than twice the per-chip wafer footprint once yield bites.
#[test]
fn act_and_wafer_models_agree_on_area_scaling() {
    let act = ActModel::new(ActParameters::for_node(TechNode::N7));
    let small = SiliconArea::from_mm2(150.0).unwrap();
    let big = SiliconArea::from_mm2(300.0).unwrap();

    let act_ratio =
        act.embodied_carbon(big).unwrap().get() / act.embodied_carbon(small).unwrap().get();
    assert!((act_ratio - 2.0).abs() < 1e-9, "ACT is linear in area");

    let murphy = EmbodiedModel::figure1_murphy();
    let wafer_ratio = murphy.footprint_per_chip_wafer_units(big).unwrap()
        / murphy.footprint_per_chip_wafer_units(small).unwrap();
    assert!(
        wafer_ratio > 2.0,
        "yield makes big dies superlinearly dirty"
    );
}

/// Empirical α from ACT feeds FOCAL and preserves the FSC conclusion.
#[test]
fn act_derived_alpha_flows_into_focal() {
    let act = ActModel::new(ActParameters::for_node(TechNode::N5));
    let device = DeviceFootprint::assess(
        &act,
        SiliconArea::from_mm2(200.0).unwrap(),
        &UsePhase::new(4.0, 1.0, CarbonIntensity::WORLD_AVERAGE).unwrap(),
    )
    .unwrap();
    let alpha = device.e2o_weight();
    assert!(alpha.get() > 0.0 && alpha.get() < 1.0);

    let fsc = focal::uarch::CoreMicroarch::ForwardSlice
        .design_point()
        .unwrap();
    let ooo = focal::uarch::CoreMicroarch::OutOfOrder
        .design_point()
        .unwrap();
    assert_eq!(classify(&fsc, &ooo, alpha).class, Sustainability::Strongly);
}

/// The studies' Figure-3 numbers can be recomputed directly from the perf
/// crate: series values are not baked in.
#[test]
fn figure3_series_recompute_from_perf_crate() {
    let fig = focal::studies::multicore::MulticoreStudy::default()
        .figure3()
        .unwrap();
    // Panel 0 = embodied dominated, fixed-work; series 4 = f=0.95.
    let series = &fig.panels[0].series[4];
    assert_eq!(series.name, "f=0.95");
    let f = ParallelFraction::new(0.95).unwrap();
    for (point, &n) in series.points.iter().zip(&[1u32, 2, 4, 8, 16, 32]) {
        let dp = SymmetricMulticore::unit_cores(n)
            .unwrap()
            .design_point(f, LeakageFraction::PAPER, PollackRule::CLASSIC)
            .unwrap();
        let ncf = Ncf::evaluate(
            &dp,
            &focal::DesignPoint::reference(),
            Scenario::FixedWork,
            E2oWeight::EMBODIED_DOMINATED,
        );
        assert!((point.ncf - ncf.value()).abs() < 1e-12, "{n} BCEs");
        assert!((point.performance - dp.performance().get()).abs() < 1e-12);
    }
}

/// The exact wafer-counting model stays within a few percent of the
/// de Vries formula across the practical die-size range — the geometric
/// justification for using the formula in Figure 1.
#[test]
fn exact_counting_validates_de_vries() {
    let w = Wafer::W300MM;
    for a in [64.0, 121.0, 225.0, 400.0, 625.0] {
        let die = SiliconArea::from_mm2(a).unwrap();
        let exact = w.chips_exact_square(die).unwrap() as f64;
        let formula = w.chips_de_vries(die).unwrap();
        let rel = (exact - formula).abs() / exact;
        assert!(rel < 0.08, "{a} mm²: exact {exact}, de Vries {formula:.1}");
    }
}
