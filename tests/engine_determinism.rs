//! Differential determinism tests: the engine's reason to exist is that
//! parallel evaluation is *provably identical* to the serial model. These
//! tests run every ported hot path under 1, 2 and 7 threads and assert
//! bit-identical output — `total_cmp`-equal floats for the Monte-Carlo
//! summaries and α sweeps, identical CSV bytes for every registry figure.
//!
//! 7 is deliberately coprime with every chunk geometry in the tree, so a
//! scheduler that leaked chunk-execution order into results would show up
//! here even if powers of two happened to line up.

use focal::core::{
    alpha_crossover_batch, classify_over_range_on, DesignPoint, E2oRange, McSummary, MonteCarloNcf,
    Scenario, MC_CHUNK_SAMPLES,
};
use focal::engine::Engine;
use focal::studies::all_figures_on;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Asserts two Monte-Carlo summaries are bit-identical, field by field,
/// using `total_cmp` so even NaN-shaped regressions would be caught
/// rather than silently passing `==`.
fn assert_summary_identical(a: &McSummary, b: &McSummary, context: &str) {
    let fields = [
        ("mean", a.mean, b.mean),
        ("std_dev", a.std_dev, b.std_dev),
        ("min", a.min, b.min),
        ("max", a.max, b.max),
        ("p05", a.p05, b.p05),
        ("p50", a.p50, b.p50),
        ("p95", a.p95, b.p95),
        ("prob_reduction", a.prob_reduction, b.prob_reduction),
    ];
    for (name, x, y) in fields {
        assert!(
            x.total_cmp(&y) == std::cmp::Ordering::Equal,
            "{context}: {name} differs: {x} vs {y} ({:#x} vs {:#x})",
            x.to_bits(),
            y.to_bits()
        );
    }
    assert_eq!(a.samples, b.samples, "{context}: sample counts differ");
}

#[test]
fn monte_carlo_summaries_are_bit_identical_across_thread_counts() {
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
    let y = DesignPoint::reference();
    // Sample counts straddling the chunk geometry: sub-chunk, exact
    // multiple, and multi-chunk with a ragged tail.
    let sample_counts = [100, MC_CHUNK_SAMPLES, 3 * MC_CHUNK_SAMPLES + 1234];
    for scenario in [Scenario::FixedWork, Scenario::FixedTime] {
        for samples in sample_counts {
            let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 9001).unwrap();
            let reference = mc
                .run_on(&Engine::serial(), &x, &y, scenario, samples)
                .unwrap();
            for threads in THREAD_COUNTS {
                let run = mc
                    .run_on(&Engine::with_threads(threads), &x, &y, scenario, samples)
                    .unwrap();
                assert_summary_identical(
                    &reference,
                    &run,
                    &format!("{scenario:?}, {samples} samples, {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn alpha_sweeps_are_identical_across_thread_counts() {
    let x = DesignPoint::from_raw(1.3, 0.7, 0.7, 1.0).unwrap();
    let y = DesignPoint::reference();
    let serial = classify_over_range_on(&Engine::serial(), &x, &y, E2oRange::FULL, 257).unwrap();
    for threads in THREAD_COUNTS {
        let par =
            classify_over_range_on(&Engine::with_threads(threads), &x, &y, E2oRange::FULL, 257)
                .unwrap();
        assert_eq!(serial.at_center, par.at_center, "{threads} threads");
        assert_eq!(serial.observed, par.observed, "{threads} threads");
        assert_eq!(
            serial.per_alpha.len(),
            par.per_alpha.len(),
            "{threads} threads"
        );
        for (s, p) in serial.per_alpha.iter().zip(&par.per_alpha) {
            assert!(
                s.0.get().total_cmp(&p.0.get()) == std::cmp::Ordering::Equal && s.1 == p.1,
                "{threads} threads: grid point differs: {s:?} vs {p:?}"
            );
        }
    }
}

#[test]
fn crossover_batches_are_identical_across_thread_counts() {
    let y = DesignPoint::reference();
    let pairs: Vec<(DesignPoint, DesignPoint)> = (0..100)
        .map(|i| {
            let area = 0.6 + 0.01 * f64::from(i);
            let power = 1.4 - 0.008 * f64::from(i);
            (DesignPoint::from_power_perf(area, power, 1.0).unwrap(), y)
        })
        .collect();
    for scenario in [Scenario::FixedWork, Scenario::FixedTime] {
        let serial = alpha_crossover_batch(&Engine::serial(), &pairs, scenario);
        for threads in THREAD_COUNTS {
            let par = alpha_crossover_batch(&Engine::with_threads(threads), &pairs, scenario);
            assert_eq!(serial, par, "{scenario:?}, {threads} threads");
        }
    }
}

#[test]
fn every_registry_figure_has_identical_csv_bytes_across_thread_counts() {
    let serial = all_figures_on(&Engine::serial()).unwrap();
    let serial_csv: Vec<(&str, String)> = serial.iter().map(|f| (f.id, f.to_csv())).collect();
    for threads in THREAD_COUNTS {
        let par = all_figures_on(&Engine::with_threads(threads)).unwrap();
        assert_eq!(par.len(), serial.len(), "{threads} threads");
        for (fig, (id, csv)) in par.iter().zip(&serial_csv) {
            assert_eq!(fig.id, *id, "{threads} threads: figure order changed");
            assert_eq!(
                fig.to_csv().into_bytes(),
                csv.clone().into_bytes(),
                "{threads} threads: {id} CSV bytes differ"
            );
        }
    }
}

#[test]
fn findings_verdicts_are_identical_across_thread_counts() {
    let serial = focal::studies::all_findings_on(&Engine::serial()).unwrap();
    for threads in THREAD_COUNTS {
        let par = focal::studies::all_findings_on(&Engine::with_threads(threads)).unwrap();
        assert_eq!(par.len(), serial.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.id, p.id, "{threads} threads");
            assert_eq!(s, p, "{threads} threads: finding #{} differs", s.id);
        }
    }
}
