//! Golden-value regression tests: exact pinned data points for every
//! figure, so any drift in the model chain is caught at the digit level
//! (the findings tests use the paper's rounded numbers; these use the
//! model's own exact values), plus full-CSV golden files capturing every
//! byte of every figure dump (regenerate with
//! `cargo run --example dump_goldens` after an intentional model change).

use focal::studies::all_figures;
use focal::studies::Figure;

/// Every figure's full CSV dump, captured from the serial model before
/// the parallel engine existed. Byte-compared, not parsed: any change to
/// values, ordering or formatting is a regression until a human re-dumps.
const GOLDEN_CSVS: [(&str, &str); 9] = [
    ("fig1", include_str!("goldens/fig1.csv")),
    ("fig3", include_str!("goldens/fig3.csv")),
    ("fig4", include_str!("goldens/fig4.csv")),
    ("fig5a", include_str!("goldens/fig5a.csv")),
    ("fig5b", include_str!("goldens/fig5b.csv")),
    ("fig6", include_str!("goldens/fig6.csv")),
    ("fig7", include_str!("goldens/fig7.csv")),
    ("fig8", include_str!("goldens/fig8.csv")),
    ("fig9", include_str!("goldens/fig9.csv")),
];

#[test]
fn every_figure_csv_matches_its_golden_file_byte_for_byte() {
    let figures = all_figures().unwrap();
    assert_eq!(
        figures.len(),
        GOLDEN_CSVS.len(),
        "a figure was added or removed; update tests/goldens/"
    );
    for fig in &figures {
        let (_, golden) = GOLDEN_CSVS
            .iter()
            .find(|(id, _)| *id == fig.id)
            .unwrap_or_else(|| panic!("no golden CSV for {}", fig.id));
        let csv = fig.to_csv();
        assert!(
            csv.as_bytes() == golden.as_bytes(),
            "{} CSV drifted from tests/goldens/{}.csv; if the model change \
             is intentional, regenerate with `cargo run --example dump_goldens`",
            fig.id,
            fig.id
        );
    }
}

fn figure(id: &str) -> Figure {
    all_figures()
        .unwrap()
        .into_iter()
        .find(|f| f.id == id)
        .unwrap_or_else(|| panic!("figure {id} exists"))
}

fn assert_point(fig: &Figure, panel: usize, series: usize, point: usize, x: f64, ncf: f64) {
    let p = &fig.panels[panel].series[series].points[point];
    assert!(
        (p.performance - x).abs() < 5e-4,
        "{}/{}/{}[{point}].x = {}, expected {x}",
        fig.id,
        fig.panels[panel].title,
        fig.panels[panel].series[series].name,
        p.performance
    );
    assert!(
        (p.ncf - ncf).abs() < 5e-4,
        "{}/{}/{}[{point}].ncf = {}, expected {ncf}",
        fig.id,
        fig.panels[panel].title,
        fig.panels[panel].series[series].name,
        p.ncf
    );
}

#[test]
fn fig1_goldens() {
    let fig = figure("fig1");
    // series 0 = perfect yield, series 1 = Murphy; x = die size mm².
    assert_point(&fig, 0, 0, 0, 100.0, 1.0);
    assert_point(&fig, 0, 0, 14, 800.0, 9.4482);
    assert_point(&fig, 0, 1, 0, 100.0, 1.0);
    assert_point(&fig, 0, 1, 14, 800.0, 17.0040);
}

#[test]
fn fig3_goldens() {
    let fig = figure("fig3");
    // Panel 0: embodied dominated, fixed-work; series 4 = f=0.95,
    // point 5 = 32 BCEs: NCF = 0.8·32 + 0.2·1.31 = 25.862, perf = 12.549.
    assert_point(&fig, 0, 4, 5, 12.5490, 25.8620);
    // single-core series, 32 BCEs: perf = √32, NCF = 0.8·32 + 0.2·√32.
    assert_point(&fig, 0, 5, 5, 5.6569, 26.7314);
    // Panel 3: operational dominated, fixed-time; f=0.95 at 32 BCEs:
    // power = 1.31/0.0796875 = 16.4392; NCF = 0.2·32 + 0.8·16.4392.
    assert_point(&fig, 3, 4, 5, 12.5490, 19.5514);
}

#[test]
fn fig4_goldens() {
    let fig = figure("fig4");
    // Panel 3: operational dominated, fixed-time. Series: sym/asym pairs
    // for f ∈ {0.5, 0.8, 0.95}; asym 0.8 is series 3, 32 BCEs is point 2.
    // asym32 @0.8: S = 7.7778, E = 1.7829, P = 13.8668;
    // NCF = 0.2·32 + 0.8·13.8668 = 17.4934.
    assert_point(&fig, 3, 3, 2, 7.7778, 17.4934);
    // sym 0.8, 32 BCEs: S = 4.4444, P = 9.9556: NCF = 6.4 + 7.9645.
    assert_point(&fig, 3, 2, 2, 4.4444, 14.3645);
}

#[test]
fn fig5_goldens() {
    let a = figure("fig5a");
    // x = utilization. Embodied-dominated curve at u = 0: 0.8·1.065 + 0.2.
    assert_point(&a, 0, 0, 0, 0.0, 1.0520);
    // u = 1: 0.8·1.065 + 0.2·0.002 = 0.8524.
    assert_point(&a, 0, 0, 20, 1.0, 0.8524);
    // Operational-dominated at u = 0.5: 0.2·1.065 + 0.8·0.501 = 0.6138.
    assert_point(&a, 0, 1, 10, 0.5, 0.6138);

    let b = figure("fig5b");
    // Embodied dominated at u = 0: 0.8·3 + 0.2 = 2.6.
    assert_point(&b, 0, 0, 0, 0.0, 2.6);
    // Operational dominated at u = 1: 0.2·3 + 0.8·0.002 = 0.6016.
    assert_point(&b, 0, 1, 20, 1.0, 0.6016);
}

#[test]
fn fig6_goldens() {
    let fig = figure("fig6");
    // Panel 0 (embodied dominated), series 0 (fixed-work).
    // 1 MiB is the unit point.
    assert_point(&fig, 0, 0, 0, 1.0, 1.0);
    // 16 MiB: area ratio (1+5.175)/1.25 = 4.94; E = 0.6136;
    // NCF = 0.8·4.94 + 0.2·0.6136 = 4.0747. perf = 2.5.
    assert_point(&fig, 0, 0, 4, 2.5, 4.0747);
    // Panel 1 (operational dominated), fixed-work at 2 MiB.
    assert_point(&fig, 1, 0, 1, 1.3060, 0.8785);
}

#[test]
fn fig7_goldens() {
    let fig = figure("fig7");
    // Panel 0: embodied dom, fixed-work; points [InO, FSC, OoO].
    assert_point(&fig, 0, 0, 0, 1.0, 1.0);
    // FSC: 0.8·1.01 + 0.2·(1.01/1.64) = 0.9312.
    assert_point(&fig, 0, 0, 1, 1.64, 0.9312);
    // OoO: 0.8·1.39 + 0.2·(2.32/1.75) = 1.3771.
    assert_point(&fig, 0, 0, 2, 1.75, 1.3771);
    // Panel 3: operational dom, fixed-time; OoO: 0.2·1.39 + 0.8·2.32.
    assert_point(&fig, 3, 0, 2, 1.75, 2.134);
}

#[test]
fn fig8_goldens() {
    let fig = figure("fig8");
    // x = predictor area fraction. Panel 0 (embodied), fixed-work at 0:
    // 0.8 + 0.2·0.93 = 0.986.
    assert_point(&fig, 0, 0, 0, 0.0, 0.986);
    // at 8%: 0.8·1.08 + 0.2·0.93 = 1.05.
    assert_point(&fig, 0, 0, 16, 0.08, 1.05);
    // Panel 1 (operational), fixed-time at 0: 0.2 + 0.8·1.0602 = 1.0482.
    assert_point(&fig, 1, 1, 0, 0.0, 1.0482);
}

#[test]
fn fig9_goldens() {
    let fig = figure("fig9");
    // Panel 0 (embodied dominated), series 0 (fixed-work).
    // 4 cores: NCF = 0.8·0.626 + 0.2·(1/1.41421) = 0.6422; perf 1.4142.
    assert_point(&fig, 0, 0, 0, std::f64::consts::SQRT_2, 0.6422);
    // 8 cores: perf = 1.5744, NCF = 0.8·1.252 + 0.2·(1/1.5744) = 1.1286.
    assert_point(&fig, 0, 0, 4, 1.5744, 1.1286);
    // Panel 1 (operational dominated), fixed-time, 8 cores:
    // NCF = 0.2·1.252 + 0.8·1 = 1.0504.
    assert_point(&fig, 1, 1, 4, 1.5744, 1.0504);
}
