//! Integration tests for the extensions layer: fleet aggregation,
//! sensitivity tools, clustered chips, cache hierarchies, the defect
//! simulator, roadmaps and the reconfigurable study — all spanning
//! multiple crates.

use focal::cache::{CacheHierarchy, CacheLevel, CacheSize, CactiLite, MissRateModel};
use focal::core::{alpha_crossover, rebound_tolerance, AlphaCrossover, Fleet, Segment};
use focal::perf::{Cluster, ClusteredMulticore, LeakageFraction, ParallelFraction, PollackRule};
use focal::scaling::{Roadmap, ScalingRegime, TechNode};
use focal::uarch::CoreMicroarch;
use focal::wafer::{DefectDistribution, DefectSimulator, DiePlacement, Wafer, YieldModel};
use focal::{DesignPoint, E2oWeight, Scenario};

/// A realistic fleet decision: should the whole product line move from
/// OoO to FSC cores? FOCAL says yes for every segment.
#[test]
fn fleet_wide_core_decision() {
    let fleet = Fleet::new(vec![
        Segment::new("phones", 0.4, E2oWeight::EMBODIED_DOMINATED, 0.3).unwrap(),
        Segment::new("laptops", 0.35, E2oWeight::new(0.6).unwrap(), 0.4).unwrap(),
        Segment::new("cloud", 0.25, E2oWeight::OPERATIONAL_DOMINATED, 0.95).unwrap(),
    ])
    .unwrap();
    let fsc = CoreMicroarch::ForwardSlice.design_point().unwrap();
    let ooo = CoreMicroarch::OutOfOrder.design_point().unwrap();
    assert!(fleet.wins_every_segment(&fsc, &ooo, 1e-9));
    assert!(fleet.ncf(&fsc, &ooo) < 0.7);
}

/// The branch predictor's α crossover (fixed-work) matches the Figure-8
/// break-even area analysis: at its crossover weight, Finding #12's
/// threshold area is exactly break-even.
#[test]
fn crossover_consistent_with_figure8() {
    let bp = focal::uarch::BranchPredictor::PARIKH_HYBRID;
    let base = DesignPoint::reference();
    // At the paper's 4.4% (TAGE-SC-L) area:
    let dp = bp.design_point(0.044).unwrap();
    match alpha_crossover(&dp, &base, Scenario::FixedWork) {
        AlphaCrossover::At { alpha, wins_below } => {
            assert!(wins_below, "predictor wins for operational-leaning α");
            // a = 1.044, o = 0.93 ⇒ α* = 0.07/0.114 = 0.614.
            assert!((alpha.get() - 0.614).abs() < 0.001, "α* = {}", alpha.get());
        }
        other => panic!("expected crossover, got {other:?}"),
    }
}

/// Rebound tolerance of the whole mechanism taxonomy: strongly
/// sustainable mechanisms tolerate 100% rebound, weakly sustainable ones
/// break at an interior share.
#[test]
fn rebound_tolerance_separates_strong_from_weak() {
    let base = DesignPoint::reference();
    let alpha = E2oWeight::OPERATIONAL_DOMINATED;

    // Strong: pipeline gating — no break-even within [0, 1].
    let gated = focal::uarch::PipelineGating::PAPER.design_point().unwrap();
    assert_eq!(rebound_tolerance(&gated, &base, alpha), None);

    // Weak: PRE — breaks at an interior fixed-time share.
    let pre = focal::uarch::PreciseRunahead::PAPER.design_point().unwrap();
    let tol = rebound_tolerance(&pre, &base, alpha).unwrap();
    assert!(tol > 0.0 && tol < 1.0);
}

/// A phone-style clustered chip is more sustainable than a same-area
/// symmetric chip for modestly-parallel workloads, mirroring Finding #5
/// with three core classes.
#[test]
fn clustered_phone_chip_vs_symmetric() {
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;
    let f = ParallelFraction::new(0.6).unwrap();

    let phone = ClusteredMulticore::new(vec![
        Cluster::new(1, 4.0).unwrap(),
        Cluster::new(3, 2.0).unwrap(),
        Cluster::new(6, 1.0).unwrap(),
    ])
    .unwrap();
    assert_eq!(phone.total_bce(), 16.0);
    let sym = focal::perf::SymmetricMulticore::unit_cores(16).unwrap();

    let phone_dp = phone.design_point(f, gamma, pollack).unwrap();
    let sym_dp = sym.design_point(f, gamma, pollack).unwrap();
    // Same silicon, more serial punch.
    assert_eq!(phone_dp.area().get(), sym_dp.area().get());
    assert!(phone_dp.performance().get() > sym_dp.performance().get());
}

/// A two-level hierarchy reaches the same DRAM-traffic filtering as the
/// paper's 4 MiB single LLC with measurably different area/energy — the
/// design space the extension opens up.
#[test]
fn hierarchy_offers_alternative_design_points() {
    let cacti = CactiLite::paper_65nm();
    let base = CacheSize::from_mib(1.0).unwrap();
    let single = CacheHierarchy::new(
        cacti,
        vec![CacheLevel::new(
            CacheSize::from_mib(4.0).unwrap(),
            base,
            MissRateModel::SQRT2_RULE,
        )],
        0.8,
        0.8,
        0.05,
    )
    .unwrap();
    let split = CacheHierarchy::new(
        cacti,
        vec![
            CacheLevel::new(
                CacheSize::from_mib(2.0).unwrap(),
                base,
                MissRateModel::SQRT2_RULE,
            ),
            CacheLevel::new(
                CacheSize::from_mib(8.0).unwrap(),
                CacheSize::from_mib(4.0).unwrap(),
                MissRateModel::SQRT2_RULE,
            ),
        ],
        0.8,
        0.8,
        0.05,
    )
    .unwrap();
    assert!((single.dram_traffic_ratio() - split.dram_traffic_ratio()).abs() < 1e-12);
    let dp_single = single.design_point().unwrap();
    let dp_split = split.design_point().unwrap();
    assert!((dp_single.performance().get() - dp_split.performance().get()).abs() < 1e-12);
    assert_ne!(dp_single.area(), dp_split.area());
}

/// The Monte-Carlo defect simulator lands between the Poisson and Seeds
/// analytic bounds for uniform defects (it IS the Poisson experiment), and
/// clustering pushes it toward the higher-yield models — the empirical
/// justification for Figure 1's Murphy choice.
#[test]
fn defect_simulation_brackets_analytic_models() {
    let placement = DiePlacement::square(20.0); // 4 cm² dies
    let lambda = 4.0 * 0.15;
    let sim = DefectSimulator::new(Wafer::W300MM, DefectDistribution::Uniform, 20_260_706);
    let uniform = sim.run(&placement, 0.15, 60).unwrap();
    let poisson = YieldModel::Poisson.fraction_good_from_load(lambda);
    assert!((uniform.mean_yield - poisson).abs() < 0.04);

    let clustered = DefectSimulator::new(
        Wafer::W300MM,
        DefectDistribution::Clustered {
            mean_cluster_size: 10.0,
            cluster_radius_mm: 1.0,
        },
        20_260_706,
    )
    .run(&placement, 0.15, 60)
    .unwrap();
    let seeds = YieldModel::Seeds.fraction_good_from_load(lambda);
    assert!(clustered.mean_yield > poisson);
    // Murphy and Seeds sit between Poisson and strong clustering.
    assert!(clustered.mean_yield > seeds - 0.1);
}

/// Roadmap projections agree with the §7 case study at one transition and
/// keep compounding beyond it.
#[test]
fn roadmap_agrees_with_case_study() {
    let roadmap = Roadmap::project(TechNode::N7, TechNode::N3, ScalingRegime::PostDennard).unwrap();
    let one = &roadmap.steps()[1];
    assert!((one.embodied - 0.626).abs() < 0.001);
    let case = focal::studies::case_study::CaseStudy::paper().unwrap();
    assert!((case.option(4).unwrap().embodied - one.embodied).abs() < 1e-9);
    // Two transitions: N7 → N3.
    let two = &roadmap.steps()[2];
    assert!((two.embodied - 0.626 * 0.626).abs() < 0.002);
}

/// The extension figure and the paper's Figure 5(b) agree on the
/// dark-silicon curve they share.
#[test]
fn extension_figure_consistent_with_fig5b() {
    let ext = focal::studies::extensions::ReconfigurableStudy::representative()
        .unwrap()
        .figure()
        .unwrap();
    let fig5b = focal::studies::dark_silicon::DarkSiliconStudy::default()
        .figure5b()
        .unwrap();
    // ext panel 0 = embodied dominated; series 2 = paper's SoC.
    let ext_soc = &ext.panels[0].series[2];
    let paper_soc = &fig5b.panels[0].series[0];
    for (a, b) in ext_soc.points.iter().zip(&paper_soc.points) {
        assert!((a.ncf - b.ncf).abs() < 1e-12);
    }
}
