//! End-to-end reproduction check: every figure regenerates and every
//! finding's numbers match the paper.

use focal::studies::{all_figures, all_findings};

#[test]
fn all_figures_regenerate_with_data() {
    let figures = all_figures().expect("figures regenerate");
    assert_eq!(figures.len(), 9, "Figures 1 and 3-9");
    for fig in &figures {
        for panel in &fig.panels {
            for series in &panel.series {
                assert!(
                    !series.points.is_empty(),
                    "{}/{}/{} has points",
                    fig.id,
                    panel.title,
                    series.name
                );
                for p in &series.points {
                    assert!(p.ncf.is_finite() && p.ncf > 0.0);
                    assert!(p.performance.is_finite() && p.performance >= 0.0);
                }
            }
        }
    }
}

#[test]
fn all_18_findings_reproduce() {
    let findings = all_findings().expect("findings compute");
    assert_eq!(findings.len(), 18, "17 findings + §7 case study");
    let failures: Vec<String> = findings
        .iter()
        .filter(|f| !f.reproduces())
        .map(|f| format!("{f}"))
        .collect();
    assert!(
        failures.is_empty(),
        "non-reproducing findings:\n{}",
        failures.join("\n")
    );
}

#[test]
fn figures_export_csv_and_text() {
    for fig in all_figures().unwrap() {
        let csv = fig.to_csv();
        assert!(csv.contains(fig.id), "{} csv has header", fig.id);
        assert!(csv.lines().count() > fig.panels.len());
        let text = fig.to_text(40, 10);
        assert!(text.contains(fig.caption));
    }
}

/// Headline numbers spot-checked straight from the paper's prose.
#[test]
fn paper_headline_numbers() {
    use focal::perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
    use focal::{E2oWeight, Ncf, Scenario};

    // §5.1: 32 BCEs, f = 0.95, fixed-time, multicore vs equal-area big
    // core: −10% (α=0.8), −39% (α=0.2).
    let f = ParallelFraction::new(0.95).unwrap();
    let mc = SymmetricMulticore::unit_cores(32)
        .unwrap()
        .design_point(f, LeakageFraction::PAPER, PollackRule::CLASSIC)
        .unwrap();
    let big = SymmetricMulticore::big_core(32.0)
        .unwrap()
        .design_point(f, LeakageFraction::PAPER, PollackRule::CLASSIC)
        .unwrap();
    let saving_emb = Ncf::evaluate(
        &mc,
        &big,
        Scenario::FixedTime,
        E2oWeight::EMBODIED_DOMINATED,
    )
    .saving_percent();
    let saving_op = Ncf::evaluate(
        &mc,
        &big,
        Scenario::FixedTime,
        E2oWeight::OPERATIONAL_DOMINATED,
    )
    .saving_percent();
    assert!((saving_emb - 10.0).abs() < 1.0, "got {saving_emb}");
    assert!((saving_op - 39.0).abs() < 1.0, "got {saving_op}");

    // §5.7: PRE's four NCF values.
    let pre = focal::uarch::PreciseRunahead::PAPER.design_point().unwrap();
    let base = focal::DesignPoint::reference();
    let v = |s, a: f64| Ncf::evaluate(&pre, &base, s, E2oWeight::new(a).unwrap()).value();
    assert!((v(Scenario::FixedWork, 0.2) - 0.95).abs() < 0.01);
    assert!((v(Scenario::FixedTime, 0.2) - 1.23).abs() < 0.01);
    assert!((v(Scenario::FixedWork, 0.8) - 0.99).abs() < 0.01);
    assert!((v(Scenario::FixedTime, 0.8) - 1.06).abs() < 0.01);

    // §7: frequency range 1.41x (4 cores) → ~1.24x (8 cores).
    let study = focal::studies::case_study::CaseStudy::paper().unwrap();
    assert!((study.option(4).unwrap().frequency_gain - 1.414).abs() < 0.001);
    assert!((study.option(8).unwrap().frequency_gain - 1.24).abs() < 0.01);
}

/// The paper's summary taxonomy (§1): which mechanisms land in which
/// sustainability class.
#[test]
fn mechanism_taxonomy_matches_paper_abstract() {
    use focal::perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
    use focal::uarch::{CoreMicroarch, DvfsCore, PreciseRunahead, TurboBoost};
    use focal::{classify, DesignPoint, E2oWeight, Sustainability};

    let both = [
        E2oWeight::EMBODIED_DOMINATED,
        E2oWeight::OPERATIONAL_DOMINATED,
    ];
    let reference = DesignPoint::reference();

    // "low-complexity core microarchitecture ... strongly sustainable"
    let fsc = CoreMicroarch::ForwardSlice.design_point().unwrap();
    let ooo = CoreMicroarch::OutOfOrder.design_point().unwrap();
    for alpha in both {
        assert_eq!(classify(&fsc, &ooo, alpha).class, Sustainability::Strongly);
    }

    // "multicore ... strongly sustainable" (vs equal-area big core)
    let f = ParallelFraction::new(0.8).unwrap();
    let mc = SymmetricMulticore::unit_cores(16)
        .unwrap()
        .design_point(f, LeakageFraction::PAPER, PollackRule::CLASSIC)
        .unwrap();
    let big = SymmetricMulticore::big_core(16.0)
        .unwrap()
        .design_point(f, LeakageFraction::PAPER, PollackRule::CLASSIC)
        .unwrap();
    for alpha in both {
        assert_eq!(classify(&mc, &big, alpha).class, Sustainability::Strongly);
    }

    // "voltage scaling ... strongly sustainable"
    let dvfs = DvfsCore::default_core();
    for alpha in both {
        assert_eq!(
            classify(
                &dvfs.design_point(0.8).unwrap(),
                &dvfs.nominal_without_dvfs().unwrap(),
                alpha
            )
            .class,
            Sustainability::Strongly
        );
    }

    // "speculation ... weakly sustainable"
    let pre = PreciseRunahead::PAPER.design_point().unwrap();
    for alpha in both {
        assert_eq!(
            classify(&pre, &reference, alpha).class,
            Sustainability::Weakly
        );
    }

    // "turboboosting ... not sustainable"
    let turbo = TurboBoost::default_turbo().design_point(1.2).unwrap();
    for alpha in both {
        assert_eq!(
            classify(&turbo, &reference, alpha).class,
            Sustainability::Less
        );
    }
}
