//! Offline vendored shim for the subset of the `rand` 0.8 API that the
//! FOCAL workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a deterministic, dependency-free stand-in that is
//! API-compatible with the calls made by `focal-core::uncertainty` and
//! `focal-wafer::defect_sim`:
//!
//! * [`SeedableRng::seed_from_u64`] + [`rngs::StdRng`]
//! * [`distributions::Uniform`] (`new`, `new_inclusive`) and
//!   [`distributions::Distribution::sample`]
//!
//! The generator is **not** the real `StdRng` (ChaCha12); it is
//! xoshiro256++ seeded through SplitMix64. All downstream users seed
//! explicitly and only rely on determinism-given-seed and reasonable
//! statistical quality, both of which this implementation provides.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as `rand` does for small seeds.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Eight independent [`StdRng`] streams advanced in lockstep.
    ///
    /// Lane `l` produces exactly the word sequence of
    /// `StdRng::seed_from_u64(seeds[l])` — same SplitMix64 expansion,
    /// same xoshiro256++ recurrence, same all-zero-state guard — but the
    /// eight recurrences are carried in parallel `[u64; 8]` registers so
    /// the data-parallel update autovectorizes when the caller is
    /// compiled for a wide-enough ISA. This is a layout transform only:
    /// every lane's stream is bit-identical to its serial twin (pinned by
    /// this crate's tests and again by `focal-core`'s differential
    /// tests).
    #[derive(Debug, Clone)]
    pub struct Lockstep8 {
        s0: [u64; 8],
        s1: [u64; 8],
        s2: [u64; 8],
        s3: [u64; 8],
    }

    impl Lockstep8 {
        /// Seeds each lane exactly as [`StdRng::seed_from_u64`] would.
        pub fn from_seeds(seeds: &[u64; 8]) -> Self {
            let mut lanes = Lockstep8 {
                s0: [0; 8],
                s1: [0; 8],
                s2: [0; 8],
                s3: [0; 8],
            };
            for (l, seed) in seeds.iter().enumerate() {
                let mut sm = *seed;
                let mut s = [0u64; 4];
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
                if s == [0; 4] {
                    s[0] = 0x9E37_79B9_7F4A_7C15;
                }
                lanes.s0[l] = s[0];
                lanes.s1[l] = s[1];
                lanes.s2[l] = s[2];
                lanes.s3[l] = s[3];
            }
            lanes
        }

        /// Fills `out` with interleaved draws in `[step][lane]` order:
        /// `out[step * 8 + lane]` is the `step`-th word of lane `lane`'s
        /// stream. `out.len()` must be a multiple of 8 (a trailing
        /// partial group is left untouched).
        ///
        /// `#[inline(always)]` so a `#[target_feature]` caller inlines
        /// the loop and vectorizes it at the caller's ISA.
        #[inline(always)]
        pub fn fill_interleaved(&mut self, out: &mut [u64]) {
            for step_out in out.chunks_exact_mut(8) {
                for (l, slot) in step_out.iter_mut().enumerate() {
                    let result = self.s0[l]
                        .wrapping_add(self.s3[l])
                        .rotate_left(23)
                        .wrapping_add(self.s0[l]);
                    let t = self.s1[l] << 17;
                    self.s2[l] ^= self.s0[l];
                    self.s3[l] ^= self.s1[l];
                    self.s1[l] ^= self.s2[l];
                    self.s0[l] ^= self.s3[l];
                    self.s2[l] ^= t;
                    self.s3[l] = self.s3[l].rotate_left(45);
                    *slot = result;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lockstep_lanes_match_serial_streams() {
            let seeds = [0u64, 1, 2, 41, 42, 43, u64::MAX, 0xF0CA1];
            let mut lanes = Lockstep8::from_seeds(&seeds);
            let mut out = vec![0u64; 8 * 100];
            lanes.fill_interleaved(&mut out);
            for (l, &seed) in seeds.iter().enumerate() {
                let mut serial = StdRng::seed_from_u64(seed);
                for step in 0..100 {
                    assert_eq!(out[step * 8 + l], serial.next_u64(), "lane {l} step {step}");
                }
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types that produce values of `T` from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over a floating-point interval.
    ///
    /// `new(lo, hi)` samples `[lo, hi)`; `new_inclusive(lo, hi)` samples
    /// `[lo, hi]`. As in `rand` 0.8, constructing an empty range panics.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl Uniform<f64> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new called with low >= high");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive called with low > high");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }

        /// Maps one raw 64-bit word to a sample, exactly as
        /// [`Distribution::sample`] does. Exposed so batch kernels that
        /// pre-draw words (e.g. via [`crate::rngs::Lockstep8`]) apply
        /// the identical transform; `sample` delegates here so the
        /// word-to-value mapping is defined once.
        #[inline(always)]
        pub fn from_u64(&self, word: u64) -> f64 {
            // 53 high bits -> f64 in [0, 1).
            let unit = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let unit = if self.inclusive {
                // Rescale so 1.0 is attainable (up to f64 granularity).
                unit * ((1u64 << 53) as f64 / ((1u64 << 53) - 1) as f64)
            } else {
                unit
            };
            self.lo + unit * (self.hi - self.lo)
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.from_u64(rng.next_u64())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn determinism_given_seed() {
            let d = Uniform::new(0.0, 1.0);
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(d.sample(&mut a), d.sample(&mut b));
            }
        }

        #[test]
        fn samples_stay_in_range_and_look_uniform() {
            let d = Uniform::new_inclusive(-3.0, 5.0);
            let mut rng = StdRng::seed_from_u64(7);
            let n = 20_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let v = d.sample(&mut rng);
                assert!((-3.0..=5.0).contains(&v));
                sum += v;
            }
            let mean = sum / n as f64;
            assert!((mean - 1.0).abs() < 0.1, "mean {mean} too far from 1.0");
        }
    }
}
