//! Offline vendored shim for the subset of the `rand` 0.8 API that the
//! FOCAL workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a deterministic, dependency-free stand-in that is
//! API-compatible with the calls made by `focal-core::uncertainty` and
//! `focal-wafer::defect_sim`:
//!
//! * [`SeedableRng::seed_from_u64`] + [`rngs::StdRng`]
//! * [`distributions::Uniform`] (`new`, `new_inclusive`) and
//!   [`distributions::Distribution::sample`]
//!
//! The generator is **not** the real `StdRng` (ChaCha12); it is
//! xoshiro256++ seeded through SplitMix64. All downstream users seed
//! explicitly and only rely on determinism-given-seed and reasonable
//! statistical quality, both of which this implementation provides.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as `rand` does for small seeds.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types that produce values of `T` from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over a floating-point interval.
    ///
    /// `new(lo, hi)` samples `[lo, hi)`; `new_inclusive(lo, hi)` samples
    /// `[lo, hi]`. As in `rand` 0.8, constructing an empty range panics.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl Uniform<f64> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new called with low >= high");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive called with low > high");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> f64 in [0, 1).
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let unit = if self.inclusive {
                // Rescale so 1.0 is attainable (up to f64 granularity).
                unit * ((1u64 << 53) as f64 / ((1u64 << 53) - 1) as f64)
            } else {
                unit
            };
            self.lo + unit * (self.hi - self.lo)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn determinism_given_seed() {
            let d = Uniform::new(0.0, 1.0);
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(d.sample(&mut a), d.sample(&mut b));
            }
        }

        #[test]
        fn samples_stay_in_range_and_look_uniform() {
            let d = Uniform::new_inclusive(-3.0, 5.0);
            let mut rng = StdRng::seed_from_u64(7);
            let n = 20_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let v = d.sample(&mut rng);
                assert!((-3.0..=5.0).contains(&v));
                sum += v;
            }
            let mean = sum / n as f64;
            assert!((mean - 1.0).abs() < 0.1, "mean {mean} too far from 1.0");
        }
    }
}
