//! Offline vendored shim for the subset of the `criterion` API that the
//! FOCAL bench harness uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a minimal wall-clock benchmark runner that is
//! source-compatible with `crates/bench`:
//!
//! * [`Criterion::bench_function`] / [`Criterion::benchmark_group`]
//! * [`BenchmarkGroup::bench_with_input`] + [`BenchmarkId::from_parameter`]
//! * [`Bencher::iter`]
//! * [`criterion_group!`] / [`criterion_main!`]
//!
//! It reports a simple mean ns/iter instead of criterion's full
//! statistics, and honours the `--test` flag cargo passes when running
//! bench targets under `cargo test` (each benchmark executes exactly one
//! iteration).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long each benchmark is measured for (after a short warm-up).
const MEASURE_TIME: Duration = Duration::from_millis(200);
const WARMUP_TIME: Duration = Duration::from_millis(50);

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn measure<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    if test_mode() {
        run_once(&mut f, 1);
        println!("test {name} ... ok");
        return;
    }
    // Calibrate the iteration count against the warm-up budget.
    let mut iters = 1u64;
    loop {
        let t = run_once(&mut f, iters);
        if t >= WARMUP_TIME || iters > u64::MAX / 2 {
            // In release builds a trivial body can time at ~0 ns, so the
            // quotient (not just the numerator) needs the >= 1 floor.
            let per_iter = (t.as_nanos() / iters as u128).max(1);
            iters = (MEASURE_TIME.as_nanos() / per_iter).clamp(1, u64::MAX as u128) as u64;
            break;
        }
        iters *= 2;
    }
    let elapsed = run_once(&mut f, iters);
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {ns:>14.1} ns/iter ({iters} iters)");
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::from_parameter(p)` — names the case after `p`.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A function-plus-parameter id.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        measure(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`, with no input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        measure(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        measure(id, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Re-export for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
