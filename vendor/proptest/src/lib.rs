//! Offline vendored shim for the subset of the `proptest` API that the
//! FOCAL workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a small, dependency-free property-testing harness that is
//! source-compatible with the repo's test suites:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ...) { body }`)
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples (arity 2–6), and the combinators below
//! * [`any`]`::<bool | integers | f64>()`
//! * [`collection::vec`] and a tiny [`string::string_regex`]
//!   (character-class + `{m,n}` quantifier subset)
//! * `prop_assert!` / `prop_assert_eq!` (mapped onto `assert!`)
//!
//! Unlike real proptest there is **no shrinking** and no persistence of
//! regressions; failures report the panic from the failing case directly.
//! Each test runs a fixed number of deterministic cases (default 64,
//! overridable via `PROPTEST_CASES`) seeded from the test name, so runs
//! are reproducible.

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Number of cases each `proptest!` test executes.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// FNV-1a hash of the test name, used as the per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    use super::TestRng;

    /// A generator of test values.
    ///
    /// This is the value-generation half of proptest's `Strategy`; there
    /// is no shrinking in this shim, so a strategy is just a deterministic
    /// function of the RNG stream.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.unit_f64() * ((1u64 << 53) as f64 / ((1u64 << 53) - 1) as f64);
            self.start() + unit * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty integer range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, wide dynamic range.
            let mag = (rng.unit_f64() * 600.0) - 300.0;
            let v = 10f64.powf(mag / 10.0);
            if rng.next_u64() & 1 == 1 {
                -v
            } else {
                v
            }
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<T>` with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// `proptest::collection::vec` — vectors of `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty vec length range");
        VecStrategy {
            elem,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Error for unsupported or malformed patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Strategy generating strings from a restricted regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Supports exactly the `[class]{m,n}` shape (character classes with
    /// literal chars and `a-z` ranges), which is all the workspace uses.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let bad = || Error(format!("unsupported pattern {pattern:?}"));
        let rest = pattern.strip_prefix('[').ok_or_else(bad)?;
        let (class, quant) = rest.split_once(']').ok_or_else(bad)?;
        let quant = quant
            .strip_prefix('{')
            .and_then(|q| q.strip_suffix('}'))
            .ok_or_else(bad)?;
        let (min, max) = quant.split_once(',').ok_or_else(bad)?;
        let min: usize = min.trim().parse().map_err(|_| bad())?;
        let max: usize = max.trim().parse().map_err(|_| bad())?;
        if min > max {
            return Err(bad());
        }
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                if lo > hi {
                    return Err(bad());
                }
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return Err(bad());
        }
        Ok(RegexGeneratorStrategy { alphabet, min, max })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len)
                .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs `cases()` deterministic cases of a property. Used by [`proptest!`].
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::cases() as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// `prop_assert!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(
            x in 0.25f64..4.0,
            (a, b) in (1u32..5, 10usize..=12),
            flag in any::<bool>(),
        ) {
            prop_assert!((0.25..4.0).contains(&x));
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..=12).contains(&b));
            prop_assert!(u8::from(flag) <= 1);
        }

        /// Vec + string_regex strategies generate within spec.
        #[test]
        fn vec_and_string(
            rows in crate::collection::vec(
                crate::string::string_regex("[ -~]{0,12}").expect("valid").prop_map(|s| s.len()),
                1..5),
        ) {
            prop_assert!((1..5).contains(&rows.len()));
            prop_assert!(rows.iter().all(|&l| l <= 12));
        }
    }

    #[test]
    fn determinism() {
        let s = (0.0f64..1.0).prop_map(|v| v * 2.0);
        let mut a = crate::TestRng::new(9);
        let mut b = crate::TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
