//! The one-command reproduction suite behind the `suite` binary.
//!
//! [`run_suite`] regenerates the entire evaluation — all 9 figures, all
//! 18 findings, the Monte-Carlo verdict-robustness ablation and the
//! α-crossover ablation — on one [`Engine`], timing each stage and
//! collecting a machine-readable summary.
//!
//! The summary deliberately separates *deterministic* content (figure
//! CSV sizes and FNV-64 digests, finding verdicts, robustness
//! agreements, crossovers) from *timing* content (wall-clock per stage,
//! thread count): [`SuiteReport::to_json`] can omit the latter, so CI
//! runs the suite under `FOCAL_THREADS=1` and `FOCAL_THREADS=4` and
//! `diff`s the two JSON files byte-for-byte.
//!
//! ## Degradation, not abortion
//!
//! Every stage runs under isolation (see [`StageStatus`]): a panic or a
//! poisoned engine chunk inside one stage records that stage as
//! `status: error` — carrying the chunk-level diagnostic and a minimal
//! reproduction line — while the remaining stages still execute. Stage
//! outputs are additionally audited for NaN/∞ *before* they are
//! fingerprinted, so silent numeric corruption surfaces as a structured
//! error rather than a poisoned digest. The suite binary still exits
//! nonzero when any stage is not `ok`. Error diagnostics come from the
//! engine's thread-count-invariant [`focal_engine::ChunkError`], so even
//! a faulted report stays byte-identical across `FOCAL_THREADS` values.

use focal_core::{
    alpha_crossover_batch, alpha_crossover_batch_memo, classify_over_range_memo_on,
    classify_over_range_on, DesignPoint, E2oRange, ModelError, Result, Scenario, SweepMemo,
    SweepMemoStats,
};
use focal_engine::{fault, ChunkError, Engine};
use focal_studies::robustness::verdict_robustness_with;
use focal_wafer::{DefectDistribution, DefectSimulator, DiePlacement, Wafer, YieldModel};
use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Samples per Monte-Carlo robustness run — two full engine chunks plus
/// a partial one, so the suite exercises uneven chunk shapes every time.
pub const ROBUSTNESS_SAMPLES: usize = 2 * focal_core::MC_CHUNK_SAMPLES + 257;

/// Seed for the robustness stage (arbitrary but fixed: the suite is a
/// regression surface, not an experiment).
pub const ROBUSTNESS_SEED: u64 = 42;

/// Proxy-ratio jitter for the robustness stage (±10 %, the paper's
/// working assumption for first-order proxy error).
pub const ROBUSTNESS_JITTER: f64 = 0.1;

/// Seed for the defect-sim stage (fixed: the stage is a regression
/// surface for the spatial-index kernel, not an experiment).
pub const DEFECT_SIM_SEED: u64 = 0xF0CA1;

/// Defect density for the defect-sim stage, in defects/cm² — the
/// acceptance configuration the microbenchmark harness also measures.
pub const DEFECT_SIM_DENSITY: f64 = 0.2;

/// Wafers simulated per defect-sim stage run.
pub const DEFECT_SIM_WAFERS: usize = 32;

/// Options for [`run_suite_with_options`].
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Monte-Carlo samples per robustness run (the `--samples` flag).
    pub robustness_samples: usize,
    /// When set, evaluate every `*.toml` scenario under this directory
    /// as an additional `scenarios` stage after the hand-coded stages
    /// (the `--scenarios <dir>` flag). The default suite output is
    /// unchanged when unset.
    pub scenarios_dir: Option<PathBuf>,
    /// With [`SuiteOptions::scenarios_dir`], skip the hand-coded stages
    /// and run the scenarios stage alone (the `--scenarios-only` flag).
    pub scenarios_only: bool,
    /// Thread a [`SweepMemo`] through the robustness, crossovers and
    /// scenarios stages (the `--memo` flag), so repeated sub-evaluations
    /// — notably the scenario twin of the robustness sweep — are answered
    /// from the cache. Deterministic output is byte-identical either way;
    /// hit/miss counters land in the *timed* report only.
    pub memo: bool,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            robustness_samples: ROBUSTNESS_SAMPLES,
            scenarios_dir: None,
            scenarios_only: false,
            memo: false,
        }
    }
}

/// Outcome of one suite stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// The stage ran to completion and its acceptance checks passed.
    Ok,
    /// The stage ran to completion but an acceptance check failed
    /// (e.g. a finding did not reproduce).
    Failed,
    /// The stage was cut short by an isolated fault — a poisoned engine
    /// chunk, a non-finite output, or a stage-level panic. The remaining
    /// stages still ran.
    Error,
}

impl StageStatus {
    /// The JSON serialization of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StageStatus::Ok => "ok",
            StageStatus::Failed => "failed",
            StageStatus::Error => "error",
        }
    }

    /// `true` only for [`StageStatus::Ok`].
    #[must_use]
    pub fn is_ok(self) -> bool {
        self == StageStatus::Ok
    }
}

/// One suite stage: a name, its wall-clock, its outcome, and its
/// deterministic key→value entries.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (`"figures"`, `"findings"`, …).
    pub name: &'static str,
    /// Wall-clock **microseconds** this stage took. Timings are kept at
    /// microsecond granularity internally and only rounded at
    /// serialization, so sub-millisecond stages don't report as 0.
    pub wall_us: u128,
    /// The stage outcome; anything but [`StageStatus::Ok`] fails the
    /// suite.
    pub status: StageStatus,
    /// Deterministic entries, in insertion order. For `error` stages
    /// these are the diagnostic entries (`error`, and `repro` with the
    /// minimal reproduction coordinates).
    pub entries: Vec<(String, String)>,
}

/// The full suite result.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Worker count the suite ran with.
    pub threads: usize,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
    /// Sweep-memo counters when the suite ran with
    /// [`SuiteOptions::memo`]. Like `threads`, this is run-environment
    /// metadata, not deterministic content: it appears only in the timed
    /// report, so the `--no-timings` byte-diff is memo-agnostic.
    pub memo_stats: Option<SweepMemoStats>,
}

/// FNV-1a 64-bit digest, used to fingerprint figure CSV bytes in the
/// summary without embedding the full dump.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl SuiteReport {
    /// `true` if every stage passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.stages.iter().all(|s| s.status.is_ok())
    }

    /// Renders the machine-readable JSON summary.
    ///
    /// With `with_timings = false` the thread count and per-stage
    /// wall-clock are omitted, leaving only thread-count-invariant
    /// content: two runs at different `FOCAL_THREADS` must then be
    /// byte-identical (CI diffs exactly this).
    #[must_use]
    pub fn to_json(&self, with_timings: bool) -> String {
        let mut out = String::from("{\n  \"suite\": \"focal-reproduction\",\n");
        if with_timings {
            let _ = writeln!(out, "  \"threads\": {},", self.threads);
            if let Some(stats) = &self.memo_stats {
                let _ = writeln!(
                    out,
                    "  \"memo\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},",
                    stats.hits(),
                    stats.misses(),
                    stats.entries(),
                    stats.hit_rate()
                );
            }
        }
        out.push_str("  \"stages\": [\n");
        for (i, stage) in self.stages.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"ok\": {}, \"status\": \"{}\"",
                json_escape(stage.name),
                stage.status.is_ok(),
                stage.status.as_str()
            );
            if with_timings {
                let _ = write!(out, ", \"wall_us\": {}", stage.wall_us);
            }
            out.push_str(", \"entries\": {");
            for (j, (k, v)) in stage.entries.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{}\": \"{}\"",
                    if j == 0 { "" } else { ", " },
                    json_escape(k),
                    json_escape(v)
                );
            }
            out.push_str("}}");
            out.push_str(if i + 1 == self.stages.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        let _ = write!(out, "  ],\n  \"ok\": {}\n}}\n", self.ok());
        out
    }

    /// Renders the human per-stage timing summary (for stderr).
    /// Durations are tracked in microseconds and printed as fractional
    /// milliseconds, so fast stages stay distinguishable from zero.
    #[must_use]
    pub fn human_summary(&self) -> String {
        let mut out = format!("reproduction suite on {} thread(s):\n", self.threads);
        let total: u128 = self.stages.iter().map(|s| s.wall_us).sum();
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<12} {:>12.3} ms   {}",
                s.name,
                s.wall_us as f64 / 1000.0,
                match s.status {
                    StageStatus::Ok => "ok",
                    StageStatus::Failed => "FAILED",
                    StageStatus::Error => "ERROR",
                }
            );
        }
        let _ = write!(out, "  {:<12} {:>12.3} ms", "total", total as f64 / 1000.0);
        if let Some(stats) = &self.memo_stats {
            let _ = write!(
                out,
                "\n  sweep memo: {} hits, {} misses, {} entries ({:.1}% hit rate)",
                stats.hits(),
                stats.misses(),
                stats.entries(),
                stats.hit_rate() * 100.0
            );
        }
        out
    }
}

/// The mechanism pairs the ablation stages sweep: the α-regime-sensitive
/// design comparisons of §5–§6 (the same set as the `ablation_alpha`
/// binary).
fn ablation_mechanisms() -> Result<Vec<(&'static str, DesignPoint, DesignPoint)>> {
    let reference = DesignPoint::reference();
    Ok(vec![
        (
            "fsc-vs-ooo",
            focal_uarch::CoreMicroarch::ForwardSlice.design_point()?,
            focal_uarch::CoreMicroarch::OutOfOrder.design_point()?,
        ),
        (
            "ooo-vs-ino",
            focal_uarch::CoreMicroarch::OutOfOrder.design_point()?,
            focal_uarch::CoreMicroarch::InOrder.design_point()?,
        ),
        (
            "pre-vs-baseline",
            focal_uarch::PreciseRunahead::PAPER.design_point()?,
            reference,
        ),
        (
            "pipeline-gating",
            focal_uarch::PipelineGating::PAPER.design_point()?,
            reference,
        ),
        (
            "accelerator-30pct",
            focal_uarch::Accelerator::HAMEED_H264.design_point(0.3)?,
            reference,
        ),
        (
            "dark-silicon-30pct",
            focal_uarch::DarkSiliconSoc::PAPER.design_point(0.3)?,
            reference,
        ),
        (
            "die-shrink-post-dennard",
            focal_scaling::DieShrink::next_node(focal_scaling::ScalingRegime::PostDennard)
                .design_points()?
                .0,
            reference,
        ),
    ])
}

/// Deterministic diagnostic entries for an `error` stage: the error text
/// plus, where the error carries them, the minimal reproduction
/// coordinates as a one-line `repro` entry.
fn error_entries(name: &'static str, err: &ModelError) -> Vec<(String, String)> {
    let mut entries = vec![("error".to_string(), err.to_string())];
    match err {
        ModelError::ChunkPoisoned {
            chunk_index,
            chunk_seed,
            ..
        } => entries.push((
            "repro".to_string(),
            format!("stage={name} chunk_index={chunk_index} chunk_seed={chunk_seed}"),
        )),
        ModelError::NonFiniteOutput { context, .. } => {
            entries.push(("repro".to_string(), format!("stage={name} {context}")));
        }
        _ => {}
    }
    entries
}

/// Runs one stage body under isolation.
///
/// The body returns `Ok((passed, entries))` on completion; a returned
/// [`ModelError`] or an escaping panic records the stage as
/// [`StageStatus::Error`] with deterministic diagnostics instead of
/// aborting the suite. Poisoned engine chunks arrive here either as
/// `Err(ModelError::ChunkPoisoned)` (fallible engine paths) or as a
/// resumed panic whose payload downcasts to [`ChunkError`] (infallible
/// paths) — both produce the same diagnostic entries. The stage name is
/// registered as the fault-injection site for the duration of the body,
/// which is what scopes `--inject panic@<stage>:<chunk>` plans.
fn run_stage<F>(name: &'static str, body: F) -> Stage
where
    F: FnOnce() -> Result<(bool, Vec<(String, String)>)>,
{
    fault::enter_site(name);
    let t = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(body));
    let wall_us = t.elapsed().as_micros();
    fault::leave_site();
    let (status, entries) = match outcome {
        Ok(Ok((true, entries))) => (StageStatus::Ok, entries),
        Ok(Ok((false, entries))) => (StageStatus::Failed, entries),
        Ok(Err(e)) => (StageStatus::Error, error_entries(name, &e)),
        Err(payload) => {
            let entries = match payload.downcast::<ChunkError>() {
                Ok(chunk) => error_entries(name, &ModelError::from(*chunk)),
                Err(other) => {
                    let msg = other
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| other.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    vec![("error".to_string(), format!("stage panicked: {msg}"))]
                }
            };
            (StageStatus::Error, entries)
        }
    };
    Stage {
        name,
        wall_us,
        status,
        entries,
    }
}

/// Returns [`ModelError::NonFiniteOutput`] if `value` is NaN or infinite.
/// The stage-boundary tripwire: every number a stage is about to
/// fingerprint or judge goes through here first.
fn audit_finite(context: impl FnOnce() -> String, value: f64) -> Result<()> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(ModelError::NonFiniteOutput {
            context: context(),
            value,
        })
    }
}

/// Runs the whole reproduction on `engine` and collects the report,
/// with [`ROBUSTNESS_SAMPLES`] Monte-Carlo samples per robustness run.
///
/// Individual stage faults degrade to `status: error` stages (see
/// [`StageStatus`]); the suite itself always completes and reports.
#[must_use]
pub fn run_suite(engine: &Engine) -> SuiteReport {
    run_suite_with_samples(engine, ROBUSTNESS_SAMPLES)
}

/// [`run_suite`] with an explicit Monte-Carlo sample count for the
/// robustness stage (the suite's `--samples` flag). The chunk geometry
/// depends only on the sample count, so any value remains bit-identical
/// across thread counts; larger values turn the suite into a useful
/// parallel-speedup benchmark.
///
/// Individual stage faults degrade to `status: error` stages (see
/// [`StageStatus`]); the suite itself always completes and reports.
#[must_use]
pub fn run_suite_with_samples(engine: &Engine, robustness_samples: usize) -> SuiteReport {
    run_suite_with_options(
        engine,
        &SuiteOptions {
            robustness_samples,
            ..SuiteOptions::default()
        },
    )
}

/// The declarative-scenario stage: loads every `*.toml` under `dir`,
/// evaluates the batch through the engine's `try_par_map` fan (same
/// seed/chunk discipline as the hand-coded stages), and reports one
/// suite-format digest entry per scenario id. Load failures and
/// per-scenario evaluation failures degrade the stage to `failed`
/// without aborting the suite.
fn scenarios_stage(engine: &Engine, dir: &Path, memo: Option<&mut SweepMemo>) -> Stage {
    let dir = dir.to_path_buf();
    run_stage("scenarios", move || {
        let scenarios = match focal_scenario::load_dir(&dir) {
            Ok(scenarios) => scenarios,
            Err(e) => {
                return Ok((false, vec![("load-error".to_string(), e.to_string())]));
            }
        };
        let results = match memo {
            Some(memo) => focal_scenario::evaluate_all_memo_on(engine, &scenarios, memo)?,
            None => focal_scenario::evaluate_all_on(engine, &scenarios)?,
        };
        let mut passed = !results.is_empty();
        let mut entries: Vec<(String, String)> = Vec::with_capacity(results.len());
        for (id, result) in results {
            match result {
                Ok(output) => entries.push((id, output.digest_entry())),
                Err(e) => {
                    passed = false;
                    entries.push((id, format!("ERROR: {e}")));
                }
            }
        }
        entries.sort();
        Ok((passed, entries))
    })
}

/// [`run_suite_with_samples`] plus the scenario options: with
/// [`SuiteOptions::scenarios_dir`] set, a `scenarios` stage evaluates
/// the declarative corpus after (or with `scenarios_only`, instead of)
/// the hand-coded stages.
///
/// Individual stage faults degrade to `status: error` stages (see
/// [`StageStatus`]); the suite itself always completes and reports.
#[must_use]
pub fn run_suite_with_options(engine: &Engine, options: &SuiteOptions) -> SuiteReport {
    let robustness_samples = options.robustness_samples;
    // One memo for the whole run, threaded `&mut` through the stages that
    // use it — stages execute strictly sequentially, so no locking.
    let mut memo = options.memo.then(SweepMemo::new);
    if options.scenarios_only {
        if let Some(dir) = &options.scenarios_dir {
            let stages = vec![scenarios_stage(engine, dir, memo.as_mut())];
            return SuiteReport {
                threads: engine.threads(),
                stages,
                memo_stats: memo.map(|m| m.stats()),
            };
        }
    }
    let mut stages = Vec::new();

    // Stage 1: every paper figure, fingerprinted at the CSV-byte level.
    stages.push(run_stage("figures", || {
        let figures = focal_studies::all_figures_on(engine)?;
        for f in &figures {
            for (pi, panel) in f.panels.iter().enumerate() {
                for s in &panel.series {
                    for p in &s.points {
                        for (axis, v) in [("performance", p.performance), ("ncf", p.ncf)] {
                            audit_finite(
                                || {
                                    format!(
                                        "figure {} panel {pi} series {} point {} ({axis})",
                                        f.id, s.name, p.label
                                    )
                                },
                                v,
                            )?;
                        }
                    }
                }
            }
        }
        let mut entries: Vec<(String, String)> = figures
            .iter()
            .map(|f| {
                let csv = f.to_csv();
                (
                    f.id.to_string(),
                    format!("{} bytes, fnv64={:016x}", csv.len(), fnv64(csv.as_bytes())),
                )
            })
            .collect();
        entries.sort();
        Ok((figures.len() == 9, entries))
    }));

    // Stage 2: every finding, gated on reproduction.
    stages.push(run_stage("findings", || {
        let findings = focal_studies::all_findings_on(engine)?;
        for f in &findings {
            for m in &f.metrics {
                for (axis, v) in [("paper", m.paper), ("measured", m.measured)] {
                    audit_finite(
                        || format!("finding {:02} metric {} ({axis})", f.id, m.name),
                        v,
                    )?;
                }
            }
        }
        let reproduced = findings.iter().filter(|f| f.reproduces()).count();
        let mut entries: Vec<(String, String)> = findings
            .iter()
            .map(|f| {
                (
                    format!("finding-{:02}", f.id),
                    if f.reproduces() { "ok" } else { "FAILED" }.to_string(),
                )
            })
            .collect();
        entries.push((
            "reproduced".to_string(),
            format!("{reproduced}/{}", findings.len()),
        ));
        entries.sort();
        Ok((reproduced == findings.len(), entries))
    }));

    // Stage 3: Monte-Carlo verdict robustness across the taxonomy (the
    // §3.5 ablation). Agreements are exact sample fractions, so their
    // shortest-f64 rendering is thread-count invariant.
    stages.push(run_stage("robustness", || {
        let robustness = verdict_robustness_with(
            engine,
            ROBUSTNESS_JITTER,
            robustness_samples,
            ROBUSTNESS_SEED,
            &mut memo.as_mut(),
        )?;
        for r in &robustness {
            for (axis, v) in [
                ("fixed_work_agreement", r.fixed_work_agreement),
                ("fixed_time_agreement", r.fixed_time_agreement),
            ] {
                audit_finite(|| format!("robustness {} ({axis})", r.mechanism), v)?;
            }
        }
        let mut entries: Vec<(String, String)> = robustness
            .iter()
            .map(|r| {
                (
                    r.mechanism.to_string(),
                    format!("min_agreement={}", r.min_agreement()),
                )
            })
            .collect();
        entries.sort();
        Ok((!robustness.is_empty(), entries))
    }));

    // Stage 4: α-crossover + verdict-stability ablation over the
    // regime-sensitive mechanisms.
    stages.push(run_stage("crossovers", || {
        let mechanisms = ablation_mechanisms()?;
        let pairs: Vec<(DesignPoint, DesignPoint)> =
            mechanisms.iter().map(|&(_, x, y)| (x, y)).collect();
        let mut memo = memo.as_mut();
        let (fixed_work, fixed_time) = match memo.as_deref_mut() {
            Some(memo) => (
                alpha_crossover_batch_memo(engine, &pairs, Scenario::FixedWork, memo),
                alpha_crossover_batch_memo(engine, &pairs, Scenario::FixedTime, memo),
            ),
            None => (
                alpha_crossover_batch(engine, &pairs, Scenario::FixedWork),
                alpha_crossover_batch(engine, &pairs, Scenario::FixedTime),
            ),
        };
        let mut entries: Vec<(String, String)> = Vec::with_capacity(mechanisms.len());
        for ((name, x, y), (fw, ft)) in mechanisms.iter().zip(fixed_work.iter().zip(&fixed_time)) {
            let stability = match memo.as_deref_mut() {
                Some(memo) => classify_over_range_memo_on(engine, x, y, E2oRange::FULL, 101, memo)?,
                None => classify_over_range_on(engine, x, y, E2oRange::FULL, 101)?,
            };
            entries.push((
                (*name).to_string(),
                format!(
                    "fw: {fw}; ft: {ft}; {}",
                    if stability.is_stable() {
                        "stable"
                    } else {
                        "flips"
                    }
                ),
            ));
        }
        entries.sort();
        Ok((!entries.is_empty(), entries))
    }));

    // Stage 5: the Monte-Carlo wafer defect simulator backing Figure 1's
    // yield substrate. Fixed seed, so the entries are deterministic and
    // the FOCAL_THREADS byte-diff in CI covers the spatial-index kernel.
    stages.push(run_stage("defect-sim", || {
        let placement = DiePlacement::square(10.0);
        let uniform = DefectSimulator::new(
            Wafer::W300MM,
            DefectDistribution::Uniform,
            DEFECT_SIM_SEED,
        )
        .run(&placement, DEFECT_SIM_DENSITY, DEFECT_SIM_WAFERS)?;
        let clustered = DefectSimulator::new(
            Wafer::W300MM,
            DefectDistribution::Clustered {
                mean_cluster_size: 8.0,
                cluster_radius_mm: 2.0,
            },
            DEFECT_SIM_SEED,
        )
        .run(&placement, DEFECT_SIM_DENSITY, DEFECT_SIM_WAFERS)?;
        for (label, r) in [("uniform", &uniform), ("clustered", &clustered)] {
            for (axis, v) in [("mean_good", r.mean_good_dies), ("yield", r.mean_yield)] {
                audit_finite(|| format!("defect-sim {label} ({axis})"), v)?;
            }
        }
        // 10 mm dies are 1 cm², so λ = defect density; uniform defects must
        // track Poisson and clustering must not lower the yield.
        let analytic = YieldModel::Poisson.fraction_good_from_load(DEFECT_SIM_DENSITY);
        let entries: Vec<(String, String)> = vec![
            (
                "clustered".to_string(),
                format!(
                    "dies={}, mean_good={}, yield={}",
                    clustered.dies_per_wafer, clustered.mean_good_dies, clustered.mean_yield
                ),
            ),
            ("poisson-analytic".to_string(), format!("{analytic}")),
            (
                "uniform".to_string(),
                format!(
                    "dies={}, mean_good={}, yield={}",
                    uniform.dies_per_wafer, uniform.mean_good_dies, uniform.mean_yield
                ),
            ),
        ];
        let passed = (uniform.mean_yield - analytic).abs() < 0.05
            && clustered.mean_yield >= uniform.mean_yield;
        Ok((passed, entries))
    }));

    // Optional stage 6: the declarative scenario corpus, flag-gated so
    // the default suite output keeps exactly the five stages above.
    if let Some(dir) = &options.scenarios_dir {
        stages.push(scenarios_stage(engine, dir, memo.as_mut()));
    }

    SuiteReport {
        threads: engine.threads(),
        stages,
        memo_stats: memo.map(|m| m.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn suite_runs_and_passes_on_the_paper_configuration() {
        let report = run_suite(&Engine::serial());
        assert!(report.ok());
        let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "figures",
                "findings",
                "robustness",
                "crossovers",
                "defect-sim"
            ]
        );
        // 9 figures, 18 findings + the reproduced summary row.
        assert_eq!(report.stages[0].entries.len(), 9);
        assert_eq!(report.stages[1].entries.len(), 19);
        // Uniform + clustered sim results plus the analytic anchor.
        assert_eq!(report.stages[4].entries.len(), 3);
    }

    #[test]
    fn deterministic_json_is_thread_count_invariant() {
        let a = run_suite(&Engine::serial());
        let b = run_suite(&Engine::with_threads(3));
        assert_eq!(a.to_json(false), b.to_json(false));
    }

    #[test]
    fn timed_json_includes_threads_and_wall_us() {
        let report = run_suite(&Engine::serial());
        let timed = report.to_json(true);
        assert!(timed.contains("\"threads\": 1"));
        assert!(timed.contains("\"wall_us\""));
        let bare = report.to_json(false);
        assert!(!bare.contains("\"threads\""));
        assert!(!bare.contains("\"wall_us\""));
    }

    #[test]
    fn human_summary_keeps_submillisecond_resolution() {
        let report = SuiteReport {
            threads: 1,
            stages: vec![Stage {
                name: "fast",
                wall_us: 250,
                status: StageStatus::Ok,
                entries: Vec::new(),
            }],
            memo_stats: None,
        };
        // A 250 µs stage must not round down to a bare 0 ms.
        assert!(
            report.human_summary().contains("0.250 ms"),
            "{}",
            report.human_summary()
        );
        assert!(report.to_json(true).contains("\"wall_us\": 250"));
    }

    fn shipped_scenarios() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data/scenarios")
    }

    #[test]
    fn scenarios_stage_is_flag_gated_and_appended() {
        let options = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            ..SuiteOptions::default()
        };
        let report = run_suite_with_options(&Engine::serial(), &options);
        assert!(report.ok());
        let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "figures",
                "findings",
                "robustness",
                "crossovers",
                "defect-sim",
                "scenarios"
            ]
        );
        // 9 figure twins + 18 finding twins + taxonomy robustness.
        let scenarios = report.stages.last().expect("scenarios stage");
        assert_eq!(scenarios.entries.len(), 28);
    }

    #[test]
    fn scenarios_only_runs_the_single_stage() {
        let options = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            scenarios_only: true,
            ..SuiteOptions::default()
        };
        let report = run_suite_with_options(&Engine::serial(), &options);
        assert!(report.ok());
        let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["scenarios"]);
    }

    #[test]
    fn scenario_twin_digests_match_the_hand_coded_figure_digests() {
        let options = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            ..SuiteOptions::default()
        };
        let report = run_suite_with_options(&Engine::serial(), &options);
        let stage = |name: &str| {
            report
                .stages
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing stage {name}"))
        };
        let figures = stage("figures");
        let scenarios = stage("scenarios");
        for (id, digest) in &figures.entries {
            let twin = scenarios
                .entries
                .iter()
                .find(|(tid, _)| tid == id)
                .unwrap_or_else(|| panic!("no scenario twin digest for {id}"));
            assert_eq!(&twin.1, digest, "twin digest diverges for {id}");
        }
    }

    #[test]
    fn scenarios_stage_with_scenarios_is_thread_count_invariant() {
        let options = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            scenarios_only: true,
            ..SuiteOptions::default()
        };
        let a = run_suite_with_options(&Engine::serial(), &options);
        let b = run_suite_with_options(&Engine::with_threads(3), &options);
        assert_eq!(a.to_json(false), b.to_json(false));
    }

    #[test]
    fn missing_scenario_dir_degrades_to_a_failed_stage() {
        let options = SuiteOptions {
            scenarios_dir: Some(PathBuf::from("/nonexistent/scenarios")),
            scenarios_only: true,
            ..SuiteOptions::default()
        };
        let report = run_suite_with_options(&Engine::serial(), &options);
        assert!(!report.ok());
        let stage = report.stages.first().expect("scenarios stage");
        assert_eq!(stage.status, StageStatus::Failed);
        assert_eq!(stage.entries.len(), 1);
        assert_eq!(stage.entries[0].0, "load-error");
    }

    /// The memo is a pure cache: deterministic suite output must be
    /// byte-identical with and without it, across thread counts, with
    /// the scenario corpus included (whose robustness twin is the memo's
    /// headline hit).
    #[test]
    fn memo_suite_output_is_byte_identical_to_unmemoized() {
        let base = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            ..SuiteOptions::default()
        };
        let memo = SuiteOptions {
            memo: true,
            ..base.clone()
        };
        let plain = run_suite_with_options(&Engine::serial(), &base);
        let memoized = run_suite_with_options(&Engine::serial(), &memo);
        assert_eq!(plain.to_json(false), memoized.to_json(false));
        let memoized_mt = run_suite_with_options(&Engine::with_threads(3), &memo);
        assert_eq!(plain.to_json(false), memoized_mt.to_json(false));
    }

    /// With the robustness stage configured to the scenario twin's
    /// sample count, the twin reruns the stage's exact Monte-Carlo
    /// experiments: a memoized suite must answer all of them from the
    /// cache, and must report counters only in the timed JSON.
    #[test]
    fn memo_stats_record_hits_and_stay_out_of_deterministic_json() {
        let options = SuiteOptions {
            scenarios_dir: Some(shipped_scenarios()),
            memo: true,
            // data/scenarios/taxonomy-robustness.toml: samples = 1024,
            // seed 42, jitter 0.1 — the stage's seed and jitter already
            // match, so aligning the sample count makes the twin's keys
            // identical to the stage's.
            robustness_samples: 1024,
            ..SuiteOptions::default()
        };
        let report = run_suite_with_options(&Engine::serial(), &options);
        assert!(report.ok());
        let stats = report.memo_stats.expect("memo stats with --memo");
        assert!(
            stats.mc.hits >= 44,
            "robustness twin should replay 11 mechanisms x 2 bands x 2 scenarios from cache, got {stats:?}"
        );
        assert!(stats.hits() > 0 && stats.misses() > 0);
        assert!(report.to_json(true).contains("\"memo\""));
        assert!(!report.to_json(false).contains("\"memo\""));
        assert!(report.human_summary().contains("sweep memo:"));
    }

    #[test]
    fn unmemoized_suite_reports_no_memo_stats() {
        let report = run_suite(&Engine::serial());
        assert!(report.memo_stats.is_none());
        assert!(!report.to_json(true).contains("\"memo\""));
    }

    #[test]
    fn human_summary_lists_every_stage() {
        let report = run_suite(&Engine::serial());
        let text = report.human_summary();
        for stage in &report.stages {
            assert!(text.contains(stage.name), "{text}");
        }
        assert!(text.contains("total"));
    }
}
