//! The dependency-free micro-benchmark harness behind the `bench` binary.
//!
//! Each kernel is timed over the monotonic [`std::time::Instant`] clock:
//! a calibration pass sizes the per-trial iteration count so one trial
//! runs long enough to dwarf timer resolution, then the harness reports
//! the **median of k trials** in ns/op — robust against one-off scheduler
//! hiccups without criterion's machinery. Results serialize to
//! `BENCH.json`, the first point of the repo's performance trajectory
//! (one record per kernel: `{kernel, ns_per_op, iters, threads,
//! git_rev}`), which CI regenerates and archives on every run.

use crate::suite::json_escape;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed kernel, as it appears in `BENCH.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Kernel name, e.g. `defect_sim/uniform/die10mm`.
    pub kernel: String,
    /// Median wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Iterations per timed trial.
    pub iters: u64,
    /// Worker threads the process ran with (`FOCAL_THREADS`).
    pub threads: usize,
    /// Git revision the measurement was taken at (`unknown` outside a
    /// checkout).
    pub git_rev: String,
}

/// The result of measuring one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median nanoseconds per operation across the trials.
    pub ns_per_op: f64,
    /// Iterations each timed trial ran.
    pub iters: u64,
    /// Number of timed trials the median was taken over.
    pub trials: usize,
}

/// Measurement policy: how long each trial should run and how many
/// trials feed the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroBench {
    /// Target wall-clock per timed trial, in nanoseconds (calibration
    /// picks the iteration count to hit it).
    pub target_trial_ns: u128,
    /// Timed trials per kernel (odd counts give a true median).
    pub trials: usize,
    /// Fixed iteration count, bypassing calibration (smoke mode).
    pub fixed_iters: Option<u64>,
}

impl MicroBench {
    /// The standard policy: 20 ms trials, median of 5.
    #[must_use]
    pub fn standard() -> MicroBench {
        MicroBench {
            target_trial_ns: 20_000_000,
            trials: 5,
            fixed_iters: None,
        }
    }

    /// The CI smoke policy: every kernel runs exactly once per trial,
    /// one trial — fast and schema-complete rather than statistically
    /// tight.
    #[must_use]
    pub fn smoke() -> MicroBench {
        MicroBench {
            target_trial_ns: 0,
            trials: 1,
            fixed_iters: Some(1),
        }
    }

    /// Times `op`, returning the median ns/op. The calibration pass also
    /// serves as warmup (caches and branch predictors see the kernel
    /// before any timed trial).
    pub fn measure<F: FnMut()>(&self, mut op: F) -> Measurement {
        let iters = match self.fixed_iters {
            Some(n) => n.max(1),
            None => {
                let t = Instant::now();
                op();
                let once_ns = t.elapsed().as_nanos().max(1);
                // One trial ≈ target_trial_ns, at least 1 iteration.
                u64::try_from(self.target_trial_ns / once_ns)
                    .unwrap_or(u64::MAX)
                    .clamp(1, 100_000_000)
            }
        };
        let mut samples: Vec<f64> = (0..self.trials.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    op();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let ns_per_op = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        Measurement {
            ns_per_op,
            iters,
            trials: samples.len(),
        }
    }
}

/// Serializes the records as the `BENCH.json` document: a JSON array of
/// flat records, one per kernel, newest file wins (the perf trajectory
/// lives in CI artifacts, not in-repo history).
#[must_use]
pub fn to_bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"kernel\": \"{}\", \"ns_per_op\": {}, \"iters\": {}, \"threads\": {}, \"git_rev\": \"{}\"}}",
            json_escape(&r.kernel),
            r.ns_per_op,
            r.iters,
            r.threads,
            json_escape(&r.git_rev)
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_policy_runs_exactly_once_per_trial() {
        let mut calls = 0u64;
        let m = MicroBench::smoke().measure(|| calls += 1);
        assert_eq!(m.iters, 1);
        assert_eq!(m.trials, 1);
        assert_eq!(calls, 1); // no calibration pass in smoke mode
        assert!(m.ns_per_op >= 0.0);
    }

    #[test]
    fn standard_policy_calibrates_and_reports_positive_time() {
        let bench = MicroBench {
            target_trial_ns: 100_000, // 0.1 ms: keep the test fast
            trials: 3,
            fixed_iters: None,
        };
        let mut acc = 0u64;
        let m = bench.measure(|| acc = acc.wrapping_add(std::hint::black_box(1)));
        assert!(m.iters >= 1);
        assert_eq!(m.trials, 3);
        assert!(m.ns_per_op > 0.0);
    }

    #[test]
    fn median_is_robust_to_one_slow_trial() {
        // Make the first trial artificially slow; the median must not
        // report it.
        let mut first = true;
        let bench = MicroBench {
            target_trial_ns: 0,
            trials: 3,
            fixed_iters: Some(1),
        };
        let m = bench.measure(|| {
            if first {
                first = false;
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(
            m.ns_per_op < 15_000_000.0,
            "median {} should exclude the 20 ms outlier",
            m.ns_per_op
        );
    }

    #[test]
    fn bench_json_is_schema_shaped() {
        let records = vec![
            BenchRecord {
                kernel: "a/b".into(),
                ns_per_op: 12.5,
                iters: 100,
                threads: 4,
                git_rev: "abc1234".into(),
            },
            BenchRecord {
                kernel: "c".into(),
                ns_per_op: 3.0,
                iters: 1,
                threads: 1,
                git_rev: "unknown".into(),
            },
        ];
        let json = to_bench_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{\"kernel\": \"a/b\", \"ns_per_op\": 12.5, \"iters\": 100, \
             \"threads\": 4, \"git_rev\": \"abc1234\"}"
        ));
        assert_eq!(json.matches("\"kernel\"").count(), 2);
    }

    #[test]
    fn empty_record_list_serializes_to_empty_array() {
        assert_eq!(to_bench_json(&[]), "[\n]\n");
    }
}
