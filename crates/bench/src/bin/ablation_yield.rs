//! Yield-model ablation: how Figure 1's per-chip embodied footprint
//! changes across the five classical yield models and with harvesting.

use focal_core::SiliconArea;
use focal_report::Table;
use focal_wafer::{DefectDensity, EmbodiedModel, HarvestPolicy, Wafer, YieldModel};

fn main() -> focal_core::Result<()> {
    let reference = SiliconArea::from_mm2(100.0)?;
    let models: Vec<(&str, YieldModel)> = vec![
        ("perfect", YieldModel::Perfect),
        ("poisson", YieldModel::Poisson),
        ("murphy", YieldModel::Murphy),
        ("seeds", YieldModel::Seeds),
        (
            "bose-einstein n=3",
            YieldModel::BoseEinstein { critical_layers: 3 },
        ),
        (
            "neg-binomial α=2",
            YieldModel::NegativeBinomial { alpha: 2.0 },
        ),
    ];

    println!("normalized embodied footprint per chip (vs 100 mm², D0 = 0.09/cm²):\n");
    let mut table = Table::new(vec!["yield model", "200 mm²", "400 mm²", "800 mm²"]);
    for (name, model) in &models {
        let m = EmbodiedModel::new(Wafer::W300MM, *model, DefectDensity::TSMC_VOLUME);
        let v = |a: f64| -> focal_core::Result<f64> {
            m.normalized_footprint(SiliconArea::from_mm2(a)?, reference)
        };
        table.row_numeric(*name, &[v(200.0)?, v(400.0)?, v(800.0)?]);
    }
    println!("{table}");

    println!("harvesting sweep (Murphy, 800 mm²): salvage fraction → footprint");
    let mut h = Table::new(vec!["salvage", "normalized footprint"]);
    for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let m = EmbodiedModel::figure1_murphy().with_harvest(HarvestPolicy::new(s)?);
        h.row_numeric(
            format!("{:.0}%", s * 100.0),
            &[m.normalized_footprint(SiliconArea::from_mm2(800.0)?, reference)?],
        );
    }
    println!("{h}");
    println!(
        "takeaway: the paper's choice of die area as the embodied proxy is robust — \
         every defect model preserves the ordering and super-linearity; harvesting \
         interpolates toward the perfect-yield (area-proportional) bound."
    );
    Ok(())
}
