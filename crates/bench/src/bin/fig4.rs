//! Regenerates Figure 4: asymmetric vs. symmetric multicores.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::asymmetric::AsymmetricStudy::default().figure4()?;
    focal_bench::print_figure(&fig);
    Ok(())
}
