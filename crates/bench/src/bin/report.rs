//! Emits the full Markdown reproduction report (the generated core of
//! EXPERIMENTS.md): every finding's paper-vs-measured metrics.

fn main() -> focal_core::Result<()> {
    let findings = focal_studies::all_findings()?;
    print!("{}", focal_studies::findings_markdown(&findings));
    eprintln!("\n{}", focal_studies::findings_summary_table(&findings));
    Ok(())
}
