//! Extension experiment: reconfigurable fabric vs. fixed-function dark
//! silicon (quantifying the paper's §5.4 discussion).

fn main() -> focal_core::Result<()> {
    let study = focal_studies::extensions::ReconfigurableStudy::representative()?;
    let fig = study.figure()?;
    focal_bench::print_figure(&fig);
    println!(
        "\nThe fabric (one 40%-of-core CGRA at 50x energy advantage) beats the \
         20-accelerator fixed suite (2x the core's area at 500x advantage) at \
         every utilization across the paper's α range: amortizing embodied \
         footprint across applications wins, as §5.4's discussion suggests."
    );
    Ok(())
}
