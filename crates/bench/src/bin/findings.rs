//! Recomputes all 17 findings plus the §7 case-study headline, printing
//! paper-vs-measured tables for every quantitative claim.

fn main() -> focal_core::Result<()> {
    let findings = focal_studies::all_findings()?;
    for f in &findings {
        println!("{f}");
        println!("{}", f.to_table());
    }
    let ok = focal_bench::print_findings_summary(&findings);
    if ok != findings.len() {
        std::process::exit(1);
    }
    Ok(())
}
