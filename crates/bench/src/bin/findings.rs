//! Recomputes all 17 findings plus the §7 case-study headline, printing
//! paper-vs-measured tables for every quantitative claim.
//!
//! Exits `0` only if every finding reproduces the paper (see
//! [`focal_bench::findings_exit_code`]), so CI can gate on this binary;
//! `crates/bench/tests/findings_exit.rs` pins the exit code.

fn main() -> focal_core::Result<()> {
    let findings = focal_studies::all_findings()?;
    for f in &findings {
        println!("{f}");
        println!("{}", f.to_table());
    }
    focal_bench::print_findings_summary(&findings);
    std::process::exit(focal_bench::findings_exit_code(&findings));
}
