//! Regenerates Figure 8: branch-prediction sustainability vs. predictor area.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::speculation::SpeculationStudy::default().figure8()?;
    focal_bench::print_figure(&fig);
    Ok(())
}
