//! Runs the entire FOCAL reproduction — all figures, all findings, the
//! robustness and crossover ablations — in one command.
//!
//! ```sh
//! FOCAL_THREADS=4 cargo run --release -p focal-bench --bin suite
//! ```
//!
//! The JSON summary goes to stdout; the human per-stage timing table goes
//! to stderr. Flags:
//!
//! * `--no-timings` — omit the thread count and per-stage wall-clock from
//!   the JSON, leaving only thread-count-invariant content. CI runs the
//!   suite under `FOCAL_THREADS=1` and `FOCAL_THREADS=4` with this flag
//!   and diffs the outputs byte-for-byte.
//! * `--dump-dir <dir>` — additionally write every hand-coded figure's
//!   CSV dump to `<dir>/registry/<fig>.csv` and, when `--scenarios` is
//!   given, every scenario's output to `<dir>/scenarios/<id>.csv` (or
//!   `.txt` for findings and robustness). The two corpora are keyed into
//!   separate subdirectories so DSL twins can never clobber the
//!   hand-coded dumps they mirror.
//! * `--samples <n>` — Monte-Carlo samples per robustness run (default:
//!   [`focal_bench::suite::ROBUSTNESS_SAMPLES`]). Any value stays
//!   bit-identical across thread counts; large values make the suite a
//!   parallel-speedup benchmark.
//! * `--scenarios <dir>` — evaluate every `*.toml` scenario under
//!   `<dir>` as an additional `scenarios` stage (see DESIGN.md §13).
//! * `--scenarios-only` — with `--scenarios`, skip the hand-coded stages
//!   and run the scenario corpus alone.
//! * `--memo` — thread a sweep memo through the robustness, crossovers
//!   and scenarios stages, so repeated sub-evaluations (notably the
//!   scenario twin of the robustness sweep) are answered from the cache.
//!   Deterministic output is byte-identical with or without this flag;
//!   hit/miss counters appear in the timed JSON and the stderr summary.
//! * `--inject <kind>@<site>:<index>` — arm the deterministic
//!   fault-injection harness before running (e.g. `panic@figures:3`,
//!   `nan@mc:1017`). The targeted stage degrades to `status: error` with
//!   a minimal repro line; every other stage still runs. See DESIGN.md
//!   §12.
//!
//! Exits nonzero if any stage fails to reproduce the paper or errors.

use focal_bench::suite::{run_suite_with_options, SuiteOptions};
use focal_engine::{fault, Engine, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut no_timings = false;
    let mut dump_dir: Option<&String> = None;
    let mut options = SuiteOptions::default();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--no-timings" => no_timings = true,
            "--dump-dir" if args.get(i + 1).is_some() => {
                i += 1;
                dump_dir = args.get(i);
            }
            "--scenarios" if args.get(i + 1).is_some() => {
                i += 1;
                options.scenarios_dir = args.get(i).map(std::path::PathBuf::from);
            }
            "--scenarios-only" => options.scenarios_only = true,
            "--memo" => options.memo = true,
            "--samples" if args.get(i + 1).is_some() => {
                i += 1;
                options.robustness_samples = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => {
                        eprintln!("--samples expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--inject" if args.get(i + 1).is_some() => {
                i += 1;
                let spec = args.get(i).map(String::as_str).unwrap_or_default();
                match FaultPlan::parse(spec) {
                    Ok(plan) => fault::arm(plan),
                    Err(e) => {
                        eprintln!("--inject: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (expected --no-timings, \
                     --dump-dir <dir>, --samples <n>, --inject <spec>, \
                     --scenarios <dir>, --scenarios-only, --memo)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if options.scenarios_only && options.scenarios_dir.is_none() {
        eprintln!("--scenarios-only needs --scenarios <dir>");
        std::process::exit(2);
    }

    let engine = Engine::from_env();
    let report = run_suite_with_options(&engine, &options);

    if let Some(dir) = dump_dir {
        // Hand-coded registry dumps and scenario dumps go through the
        // shared namespaced DumpDir (registry/, scenarios/ — serve/ is
        // reserved for focal-serve transcripts), keyed by figure id and
        // scenario id, so a DSL twin (same id as the figure it mirrors)
        // can never clobber the hand-coded artifact it is compared
        // against.
        let dump = focal_bench::dump::DumpDir::new(dir);
        let skip_registry = options.scenarios_only && options.scenarios_dir.is_some();
        if !skip_registry {
            match focal_studies::all_figures_on(&engine) {
                Ok(figures) => {
                    for fig in figures {
                        if let Err(e) = dump.write_registry(fig.id, &fig.to_csv()) {
                            eprintln!("error: failed to dump figure '{}': {e}", fig.id);
                            std::process::exit(1);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: figure dump skipped: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(scenarios_src) = &options.scenarios_dir {
            match focal_scenario::load_dir(scenarios_src) {
                Ok(scenarios) => {
                    for scenario in &scenarios {
                        let output = match scenario.evaluate_on(&engine) {
                            Ok(output) => output,
                            Err(e) => {
                                eprintln!("error: scenario '{}' dump skipped: {e}", scenario.id());
                                std::process::exit(1);
                            }
                        };
                        let ext = match output {
                            focal_scenario::ScenarioOutput::Figure(_) => "csv",
                            _ => "txt",
                        };
                        if let Err(e) = dump.write_scenario(scenario.id(), ext, &output.to_bytes())
                        {
                            eprintln!("error: failed to dump scenario '{}': {e}", scenario.id());
                            std::process::exit(1);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: scenario dump skipped: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    eprintln!("{}", report.human_summary());
    print!("{}", report.to_json(!no_timings));
    std::process::exit(i32::from(!report.ok()));
}
