//! Runs the entire FOCAL reproduction — all figures, all findings, the
//! robustness and crossover ablations — in one command.
//!
//! ```sh
//! FOCAL_THREADS=4 cargo run --release -p focal-bench --bin suite
//! ```
//!
//! The JSON summary goes to stdout; the human per-stage timing table goes
//! to stderr. Flags:
//!
//! * `--no-timings` — omit the thread count and per-stage wall-clock from
//!   the JSON, leaving only thread-count-invariant content. CI runs the
//!   suite under `FOCAL_THREADS=1` and `FOCAL_THREADS=4` with this flag
//!   and diffs the outputs byte-for-byte.
//! * `--dump-dir <dir>` — additionally write every figure's CSV dump to
//!   `<dir>/<fig>.csv`.
//! * `--samples <n>` — Monte-Carlo samples per robustness run (default:
//!   [`focal_bench::suite::ROBUSTNESS_SAMPLES`]). Any value stays
//!   bit-identical across thread counts; large values make the suite a
//!   parallel-speedup benchmark.
//! * `--inject <kind>@<site>:<index>` — arm the deterministic
//!   fault-injection harness before running (e.g. `panic@figures:3`,
//!   `nan@mc:1017`). The targeted stage degrades to `status: error` with
//!   a minimal repro line; every other stage still runs. See DESIGN.md
//!   §12.
//!
//! Exits nonzero if any stage fails to reproduce the paper or errors.

use focal_bench::suite::{run_suite_with_samples, ROBUSTNESS_SAMPLES};
use focal_engine::{fault, Engine, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut no_timings = false;
    let mut dump_dir: Option<&String> = None;
    let mut samples = ROBUSTNESS_SAMPLES;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--no-timings" => no_timings = true,
            "--dump-dir" if args.get(i + 1).is_some() => {
                i += 1;
                dump_dir = args.get(i);
            }
            "--samples" if args.get(i + 1).is_some() => {
                i += 1;
                samples = match args.get(i).map(|v| v.parse()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => {
                        eprintln!("--samples expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--inject" if args.get(i + 1).is_some() => {
                i += 1;
                let spec = args.get(i).map(String::as_str).unwrap_or_default();
                match FaultPlan::parse(spec) {
                    Ok(plan) => fault::arm(plan),
                    Err(e) => {
                        eprintln!("--inject: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (expected --no-timings, \
                     --dump-dir <dir>, --samples <n>, --inject <spec>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let engine = Engine::from_env();
    let report = run_suite_with_samples(&engine, samples);

    if let Some(dir) = dump_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: failed to create dump dir '{dir}': {e}");
            std::process::exit(1);
        }
        match focal_studies::all_figures_on(&engine) {
            Ok(figures) => {
                for fig in figures {
                    let path = std::path::Path::new(dir).join(format!("{}.csv", fig.id));
                    if let Err(e) = std::fs::write(&path, fig.to_csv()) {
                        eprintln!("error: failed to write '{}': {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: figure dump skipped: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!("{}", report.human_summary());
    print!("{}", report.to_json(!no_timings));
    std::process::exit(i32::from(!report.ok()));
}
