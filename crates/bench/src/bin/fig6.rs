//! Regenerates Figure 6: last-level cache sustainability.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::caching::CachingStudy::paper()?.figure6()?;
    focal_bench::print_figure(&fig);
    Ok(())
}
