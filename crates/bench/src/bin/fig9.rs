//! Regenerates Figure 9: the §7 sustainable-multicore case study.

use focal_report::Table;

fn main() -> focal_core::Result<()> {
    let study = focal_studies::case_study::CaseStudy::paper()?;
    let fig = study.figure9()?;
    focal_bench::print_figure(&fig);

    println!("\nper-option verdicts:");
    let mut table = Table::new(vec![
        "cores",
        "α=0.8 (embodied dom)",
        "α=0.2 (operational dom)",
    ]);
    for (cores, emb, op) in study.classification_table()? {
        table.row(vec![cores.to_string(), emb.to_string(), op.to_string()]);
    }
    println!("{table}");
    Ok(())
}
