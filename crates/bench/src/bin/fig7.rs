//! Regenerates Figure 7: InO vs. FSC vs. OoO microarchitectures.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::microarch::MicroarchStudy.figure7()?;
    focal_bench::print_figure(&fig);
    Ok(())
}
