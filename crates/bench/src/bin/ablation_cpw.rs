//! Chips-per-wafer ablation: the de Vries empirical formula vs. exact
//! grid placement vs. the naive area ratio, plus scribe/edge effects.

use focal_core::SiliconArea;
use focal_report::Table;
use focal_wafer::{DiePlacement, Wafer};

fn main() -> focal_core::Result<()> {
    let w = Wafer::W300MM;
    let mut table = Table::new(vec![
        "die (mm²)",
        "area ratio",
        "de Vries",
        "exact grid",
        "exact + scribe/edge",
    ]);
    for a in [50.0, 100.0, 200.0, 400.0, 600.0, 800.0] {
        let die = SiliconArea::from_mm2(a)?;
        let side = a.sqrt();
        let production = w.chips_exact(&DiePlacement::production(side, side))?;
        table.row(vec![
            format!("{a:.0}"),
            format!("{:.0}", w.chips_area_ratio(die)),
            format!("{:.0}", w.chips_de_vries(die)?),
            format!("{}", w.chips_exact_square(die)?),
            format!("{production}"),
        ]);
    }
    println!("chips per 300 mm wafer, four estimators:\n");
    println!("{table}");
    println!(
        "the de Vries formula tracks exact placement within a few percent across \
         the practical range, which justifies its use in Figure 1; real scribe \
         lanes and edge exclusion cost a further ~5-10%."
    );
    Ok(())
}
