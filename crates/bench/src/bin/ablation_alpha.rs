//! α-sweep ablation: how stable each finding's classification verdict is
//! across the full α_E2O ∈ [0, 1] range (the paper's §3.5 robustness
//! argument, quantified).

use focal_core::{classify_over_range, DesignPoint, E2oRange};
use focal_report::Table;

fn main() -> focal_core::Result<()> {
    let reference = DesignPoint::reference();
    let mechanisms: Vec<(&str, DesignPoint, DesignPoint)> = vec![
        (
            "FSC vs OoO (§5.6)",
            focal_uarch::CoreMicroarch::ForwardSlice.design_point()?,
            focal_uarch::CoreMicroarch::OutOfOrder.design_point()?,
        ),
        (
            "OoO vs InO (§5.6)",
            focal_uarch::CoreMicroarch::OutOfOrder.design_point()?,
            focal_uarch::CoreMicroarch::InOrder.design_point()?,
        ),
        (
            "PRE vs baseline (§5.7)",
            focal_uarch::PreciseRunahead::PAPER.design_point()?,
            reference,
        ),
        (
            "pipeline gating (§5.9)",
            focal_uarch::PipelineGating::PAPER.design_point()?,
            reference,
        ),
        (
            "accelerator @30% use (§5.3)",
            focal_uarch::Accelerator::HAMEED_H264.design_point(0.3)?,
            reference,
        ),
        (
            "dark silicon @30% use (§5.4)",
            focal_uarch::DarkSiliconSoc::PAPER.design_point(0.3)?,
            reference,
        ),
        (
            "die shrink, post-Dennard (§6)",
            focal_scaling::DieShrink::next_node(focal_scaling::ScalingRegime::PostDennard)
                .design_points()?
                .0,
            reference,
        ),
    ];

    let mut table = Table::new(vec!["mechanism", "verdict at α grid", "stable?"]);
    for (name, x, y) in &mechanisms {
        let robust = classify_over_range(x, y, E2oRange::FULL, 101)?;
        table.row(vec![
            (*name).to_string(),
            robust
                .observed
                .iter()
                .map(|c| c.label().to_string())
                .collect::<Vec<_>>()
                .join(" / "),
            if robust.is_stable() {
                "yes".into()
            } else {
                "flips".into()
            },
        ]);
    }
    println!("classification stability across α ∈ [0, 1] (101-point grid):\n");
    println!("{table}");
    println!(
        "mechanisms whose verdict never flips are safe calls despite the data \
         uncertainty; flip-prone ones (acceleration, dark silicon) are exactly the \
         ones the paper flags as use-case-dependent."
    );
    Ok(())
}
