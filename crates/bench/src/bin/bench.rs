//! The workspace microbenchmark harness: times the named model kernels
//! and writes `BENCH.json`, the machine-readable perf trajectory CI
//! archives on every run.
//!
//! ```sh
//! cargo run --release -p focal-bench --bin bench
//! ```
//!
//! Flags:
//!
//! * `--smoke` — run every kernel exactly once instead of
//!   calibrated median-of-5 trials (CI's fast schema check).
//! * `--out <path>` — where to write the JSON (default `BENCH.json`).
//! * `--check-speedup` — exit nonzero unless the spatial-index defect
//!   kernel beats the retained naive reference by ≥ 5× at the
//!   `square(10 mm)` / 0.2 defects·cm⁻² acceptance configuration.
//!
//! The human-readable table goes to stderr; only file I/O touches disk.

use focal_bench::micro::{to_bench_json, BenchRecord, Measurement, MicroBench};
use focal_bench::suite::{run_suite, DEFECT_SIM_DENSITY, DEFECT_SIM_SEED};
use focal_core::{
    mc_kernel_isa, DesignPoint, E2oRange, MonteCarloNcf, Scenario, SweepMemo, MC_CHUNK_SAMPLES,
    MC_GROUP_CHUNKS,
};
use focal_engine::Engine;
use focal_wafer::{DefectDistribution, DefectSimulator, DiePlacement, Wafer};
use std::hint::black_box;

/// The speedup the spatial-index kernel must show over the naive
/// reference under `--check-speedup`.
const MIN_DEFECT_SIM_SPEEDUP: f64 = 5.0;

/// The speedup the SoA Monte-Carlo kernel must show over the pinned
/// scalar oracle under `--check-speedup`, by dispatched ISA. The
/// interleaved layout needs 4-wide 64-bit vectors to pay off; below
/// AVX-512 the full 2× is not reachable, so the gate steps down
/// (AVX2) or is waived (pure scalar dispatch — the kernels are then
/// the same loop).
fn min_mc_kernel_speedup(isa: &str) -> Option<f64> {
    match isa {
        "avx512" => Some(2.0),
        "avx2" => Some(1.2),
        _ => None,
    }
}

/// The speedup a warm memoized sweep must show over its cold twin under
/// `--check-speedup`.
const MIN_SWEEP_MEMO_SPEEDUP: f64 = 5.0;

/// Monte-Carlo sample count for the kernel gate: 16 chunks — two full
/// lockstep units — so the vector path dominates the measurement.
const MC_GATE_SAMPLES: usize = 2 * MC_GROUP_CHUNKS * MC_CHUNK_SAMPLES;

/// Wafers per defect-sim benchmark operation: enough to amortize the
/// index build without inflating a single op into seconds.
const BENCH_WAFERS: usize = 4;

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut check_speedup = false;
    let mut out_path = "BENCH.json".to_string();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check-speedup" => check_speedup = true,
            "--out" if args.get(i + 1).is_some() => {
                i += 1;
                if let Some(p) = args.get(i) {
                    out_path.clone_from(p);
                }
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (expected --smoke, --check-speedup, --out <path>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let bench = if smoke {
        MicroBench::smoke()
    } else {
        MicroBench::standard()
    };
    let engine = Engine::from_env();
    let threads = engine.threads();
    let rev = git_rev();

    let mut records: Vec<BenchRecord> = Vec::new();
    let add = |records: &mut Vec<BenchRecord>, kernel: &str, m: Measurement| {
        eprintln!("  {kernel:<40} {:>14.1} ns/op  (x{})", m.ns_per_op, m.iters);
        records.push(BenchRecord {
            kernel: kernel.to_string(),
            ns_per_op: m.ns_per_op,
            iters: m.iters,
            threads,
            git_rev: rev.clone(),
        });
    };
    eprintln!(
        "focal-bench microbenchmarks ({} thread(s), git {rev}):",
        threads
    );

    // Exact die-placement counter.
    let placement10 = DiePlacement::square(10.0);
    add(
        &mut records,
        "chips_exact/square10mm",
        bench.measure(|| {
            let _ = black_box(Wafer::W300MM.chips_exact(black_box(&placement10)));
        }),
    );

    // Defect simulator: uniform and clustered at three die sizes, plus
    // the naive reference at the acceptance configuration.
    let uniform = DefectSimulator::new(Wafer::W300MM, DefectDistribution::Uniform, DEFECT_SIM_SEED);
    let clustered = DefectSimulator::new(
        Wafer::W300MM,
        DefectDistribution::Clustered {
            mean_cluster_size: 8.0,
            cluster_radius_mm: 2.0,
        },
        DEFECT_SIM_SEED,
    );
    for side in [10.0f64, 20.0, 28.0] {
        let placement = DiePlacement::square(side);
        // Surface configuration errors once, outside the timed loop.
        uniform.run(&placement, DEFECT_SIM_DENSITY, 1)?;
        add(
            &mut records,
            &format!("defect_sim/uniform/die{side:.0}mm"),
            bench.measure(|| {
                let _ =
                    black_box(uniform.run(black_box(&placement), DEFECT_SIM_DENSITY, BENCH_WAFERS));
            }),
        );
    }
    for side in [10.0f64, 20.0] {
        let placement = DiePlacement::square(side);
        clustered.run(&placement, DEFECT_SIM_DENSITY, 1)?;
        add(
            &mut records,
            &format!("defect_sim/clustered/die{side:.0}mm"),
            bench.measure(|| {
                let _ = black_box(clustered.run(
                    black_box(&placement),
                    DEFECT_SIM_DENSITY,
                    BENCH_WAFERS,
                ));
            }),
        );
    }
    add(
        &mut records,
        "defect_sim/naive/die10mm",
        bench.measure(|| {
            let _ = black_box(uniform.run_reference(
                black_box(&placement10),
                DEFECT_SIM_DENSITY,
                BENCH_WAFERS,
            ));
        }),
    );

    // One Monte-Carlo NCF chunk on the serial engine: the per-sample
    // kernel cost without pool scheduling in the way.
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1)?;
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 42)?;
    let serial = Engine::serial();
    add(
        &mut records,
        "monte_carlo_ncf/chunk4096",
        bench.measure(|| {
            let _ = black_box(mc.run_on(
                &serial,
                black_box(&x),
                black_box(&y),
                Scenario::FixedWork,
                MC_CHUNK_SAMPLES,
            ));
        }),
    );

    // The SoA kernel gate pair: sample *generation* only (the sort and
    // summary are identical work on both sides and would dilute the
    // kernel ratio). Measured serial and within this one process with a
    // calibrated policy even under --smoke — single-shot timings on a
    // shared box are too noisy to gate a 2× threshold on.
    let gate_bench = if smoke {
        MicroBench {
            target_trial_ns: 5_000_000,
            trials: 3,
            fixed_iters: None,
        }
    } else {
        MicroBench::standard()
    };
    add(
        &mut records,
        "mc_kernel/soa",
        gate_bench.measure(|| {
            let _ = black_box(mc.sample_values_on(
                &serial,
                black_box(&x),
                black_box(&y),
                Scenario::FixedWork,
                MC_GATE_SAMPLES,
            ));
        }),
    );
    add(
        &mut records,
        "mc_kernel/scalar",
        gate_bench.measure(|| {
            let _ = black_box(mc.sample_values_scalar_on(
                &serial,
                black_box(&x),
                black_box(&y),
                Scenario::FixedWork,
                MC_GATE_SAMPLES,
            ));
        }),
    );

    // The memoized-sweep gate pair: the taxonomy robustness sweep run
    // cold (fresh memo every op, so every Monte-Carlo experiment is a
    // miss) vs warm (one pre-populated memo reused every op, so every
    // experiment is a lookup). Same calibrated policy as the kernel gate.
    let memo_sweep = |memo: &mut SweepMemo| {
        focal_studies::robustness::verdict_robustness_with(
            &serial,
            0.1,
            MC_CHUNK_SAMPLES,
            42,
            &mut Some(memo),
        )
    };
    add(
        &mut records,
        "sweep_memo/cold",
        gate_bench.measure(|| {
            let mut memo = SweepMemo::new();
            let _ = black_box(memo_sweep(black_box(&mut memo)));
        }),
    );
    let mut warm_memo = SweepMemo::new();
    memo_sweep(&mut warm_memo)?;
    add(
        &mut records,
        "sweep_memo/warm",
        gate_bench.measure(|| {
            let _ = black_box(memo_sweep(black_box(&mut warm_memo)));
        }),
    );

    // Every paper figure, end to end, on the configured engine.
    focal_studies::all_figures_on(&engine)?;
    add(
        &mut records,
        "all_figures",
        bench.measure(|| {
            let _ = black_box(focal_studies::all_figures_on(black_box(&engine)));
        }),
    );

    // Suite stages ride along from one instrumented run (iters = 1):
    // their wall-clocks are the coarse end of the trajectory.
    let report = run_suite(&engine);
    for stage in &report.stages {
        add(
            &mut records,
            &format!("suite/{}", stage.name),
            Measurement {
                ns_per_op: stage.wall_us as f64 * 1000.0,
                iters: 1,
                trials: 1,
            },
        );
    }

    // The acceptance gate: spatial index vs retained naive reference.
    let fast = records
        .iter()
        .find(|r| r.kernel == "defect_sim/uniform/die10mm")
        .map(|r| r.ns_per_op);
    let naive = records
        .iter()
        .find(|r| r.kernel == "defect_sim/naive/die10mm")
        .map(|r| r.ns_per_op);
    let speedup = match (fast, naive) {
        (Some(f), Some(n)) if f > 0.0 => n / f,
        _ => 0.0,
    };
    eprintln!(
        "defect-sim spatial index vs naive reference at square(10mm)/{DEFECT_SIM_DENSITY} \
         defects/cm^2: {speedup:.1}x"
    );

    // The SoA kernel gate: vector kernel vs pinned scalar oracle, with
    // the threshold picked by the ISA the kernel dispatched to.
    let ns_of = |records: &[BenchRecord], kernel: &str| {
        records
            .iter()
            .find(|r| r.kernel == kernel)
            .map(|r| r.ns_per_op)
    };
    let isa = mc_kernel_isa();
    let mc_speedup = match (
        ns_of(&records, "mc_kernel/soa"),
        ns_of(&records, "mc_kernel/scalar"),
    ) {
        (Some(soa), Some(scalar)) if soa > 0.0 => scalar / soa,
        _ => 0.0,
    };
    eprintln!(
        "mc-kernel SoA vs scalar oracle at {MC_GATE_SAMPLES} samples ({isa} dispatch): \
         {mc_speedup:.2}x"
    );

    // The memoized-sweep gate: warm (fully cached) vs cold repeat of the
    // same robustness sweep.
    let memo_speedup = match (
        ns_of(&records, "sweep_memo/cold"),
        ns_of(&records, "sweep_memo/warm"),
    ) {
        (Some(cold), Some(warm)) if warm > 0.0 => cold / warm,
        _ => 0.0,
    };
    eprintln!("sweep-memo warm vs cold robustness sweep: {memo_speedup:.1}x");

    if let Err(e) = std::fs::write(&out_path, to_bench_json(&records)) {
        eprintln!("error: failed to write '{out_path}': {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} kernel records to {out_path}", records.len());

    let mut failed = false;
    if check_speedup && speedup < MIN_DEFECT_SIM_SPEEDUP {
        eprintln!(
            "FAILED: defect-sim speedup {speedup:.1}x is below the required \
             {MIN_DEFECT_SIM_SPEEDUP}x"
        );
        failed = true;
    }
    if check_speedup {
        match min_mc_kernel_speedup(isa) {
            Some(min) if mc_speedup < min => {
                eprintln!(
                    "FAILED: mc-kernel speedup {mc_speedup:.2}x is below the required \
                     {min}x at {isa} dispatch"
                );
                failed = true;
            }
            Some(_) => {}
            None => {
                eprintln!("note: mc-kernel gate waived (scalar dispatch — no vector ISA available)")
            }
        }
        if memo_speedup < MIN_SWEEP_MEMO_SPEEDUP {
            eprintln!(
                "FAILED: sweep-memo speedup {memo_speedup:.1}x is below the required \
                 {MIN_SWEEP_MEMO_SPEEDUP}x"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    Ok(())
}
