//! Prints the paper's mechanism taxonomy (abstract + §5-§6), computed
//! live from the models.

fn main() -> focal_core::Result<()> {
    println!("archetypal mechanisms, classified by FOCAL (computed, not transcribed):\n");
    println!("{}", focal_studies::taxonomy::taxonomy_table()?);
    Ok(())
}
