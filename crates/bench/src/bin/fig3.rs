//! Regenerates Figure 3: symmetric multicore vs. single-core.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::multicore::MulticoreStudy::default().figure3()?;
    focal_bench::print_figure(&fig);
    Ok(())
}
