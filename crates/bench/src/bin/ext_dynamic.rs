//! Extension experiment: the dynamic (fused) Hill-Marty multicore added
//! to the Figure-3 comparison.

use focal_core::{E2oWeight, Scenario};
use focal_perf::ParallelFraction;
use focal_report::Table;
use focal_studies::extensions::DynamicMulticoreStudy;

fn main() -> focal_core::Result<()> {
    let study = DynamicMulticoreStudy::default();
    let f = ParallelFraction::new(0.8)?;
    for (alpha, name) in [
        (E2oWeight::EMBODIED_DOMINATED, "embodied dominated"),
        (E2oWeight::OPERATIONAL_DOMINATED, "operational dominated"),
    ] {
        for scenario in Scenario::ALL {
            let panel = study.panel(f, scenario, alpha)?;
            println!("--- {name} ---");
            println!("{}", panel.to_chart(56, 14).render());
        }
    }

    println!("dynamic vs same-size symmetric multicore, f sweep at 32 BCEs:");
    let mut table = Table::new(vec!["f", "verdict (α=0.8)", "verdict (α=0.2)"]);
    for fv in [0.5, 0.8, 0.95] {
        let fr = ParallelFraction::new(fv)?;
        table.row(vec![
            format!("{fv}"),
            study
                .dynamic_vs_symmetric(32, fr, E2oWeight::EMBODIED_DOMINATED)?
                .to_string(),
            study
                .dynamic_vs_symmetric(32, fr, E2oWeight::OPERATIONAL_DOMINATED)?
                .to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Dynamic fusion buys Amdahl-optimal speed but burns full power in every \
         phase: weakly sustainable at best — another mechanism whose benefit \
         evaporates under usage rebound."
    );
    Ok(())
}
