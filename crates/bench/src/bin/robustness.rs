//! Monte-Carlo robustness of every mechanism's verdict under α sampling
//! and proxy-ratio noise (the paper's §3.5 argument, quantified).

fn main() -> focal_core::Result<()> {
    for jitter in [0.0, 0.05, 0.10] {
        println!(
            "verdict agreement with ±{:.0}% proxy-ratio noise, α sampled from the paper bands \
             (20k samples):\n",
            jitter * 100.0
        );
        println!(
            "{}",
            focal_studies::robustness::robustness_table(jitter, 20_000, 0xF0CA1)?
        );
    }
    println!(
        "Reading: near-100% rows are conclusions that survive the paper's inherent \
         data uncertainty; lower rows (small-margin mechanisms like pipeline gating) \
         are honest 'it depends' calls — exactly the cautious reading §3.5 prescribes."
    );
    Ok(())
}
