//! Pollack-exponent sensitivity: do the multicore findings survive if
//! single-core performance scales as BCE^e for e ≠ 0.5?

use focal_core::{classify, E2oWeight, Sustainability};
use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
use focal_report::Table;

fn main() -> focal_core::Result<()> {
    let gamma = LeakageFraction::PAPER;
    let f = ParallelFraction::new(0.95)?;

    let mut table = Table::new(vec![
        "pollack exponent",
        "multicore vs big core (α=0.8)",
        "multicore vs big core (α=0.2)",
    ]);
    let mut always_strong = true;
    for e in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let pollack = PollackRule::new(e)?;
        let mc = SymmetricMulticore::unit_cores(32)?.design_point(f, gamma, pollack)?;
        let big = SymmetricMulticore::big_core(32.0)?.design_point(f, gamma, pollack)?;
        let emb = classify(&mc, &big, E2oWeight::EMBODIED_DOMINATED).class;
        let op = classify(&mc, &big, E2oWeight::OPERATIONAL_DOMINATED).class;
        always_strong &= emb == Sustainability::Strongly && op == Sustainability::Strongly;
        table.row(vec![format!("{e:.1}"), emb.to_string(), op.to_string()]);
    }
    println!("Finding #1 under alternative single-core scaling laws (32 BCEs, f = 0.95):\n");
    println!("{table}");
    println!(
        "{}",
        if always_strong {
            "Finding #1 is insensitive to the Pollack exponent: multicore stays \
             strongly sustainable even if big cores scaled linearly with area."
        } else {
            "Finding #1 flips for some exponents — see the table."
        }
    );
    Ok(())
}
