//! Whole-SoC design-space sweep: every (core, LLC, accelerator) bundle,
//! classified against the baseline SoC and against each other — the
//! chip-level question the paper's per-mechanism studies build toward.

use focal_cache::CacheSize;
use focal_core::{pareto_frontier, E2oWeight, Ncf, Scenario};
use focal_report::Table;
use focal_studies::soc::{design_space, SocConfig};
use focal_uarch::{Accelerator, CoreMicroarch};

fn main() -> focal_core::Result<()> {
    let baseline = SocConfig::baseline()?;
    let mut table = Table::new(vec![
        "bundle",
        "area",
        "perf",
        "energy",
        "NCF_fw (α=0.8)",
        "NCF_ft (α=0.2)",
        "vs baseline",
    ]);

    let accelerators = [None, Some((Accelerator::HAMEED_H264, 0.3))];
    for core in CoreMicroarch::ALL {
        for llc_mib in [1.0, 2.0, 4.0] {
            for accel in accelerators {
                let mut soc = SocConfig::new(core, CacheSize::from_mib(llc_mib)?)?;
                if let Some((a, u)) = accel {
                    soc = soc.with_accelerator(a, u)?;
                }
                let dp = soc.design_point()?;
                let base_dp = baseline.design_point()?;
                let fw = Ncf::evaluate(
                    &dp,
                    &base_dp,
                    Scenario::FixedWork,
                    E2oWeight::EMBODIED_DOMINATED,
                );
                let ft = Ncf::evaluate(
                    &dp,
                    &base_dp,
                    Scenario::FixedTime,
                    E2oWeight::OPERATIONAL_DOMINATED,
                );
                let verdict = soc.compare(&baseline, E2oWeight::EMBODIED_DOMINATED)?;
                table.row(vec![
                    soc.to_string(),
                    format!("{:.3}", dp.area().get()),
                    format!("{:.3}", dp.performance().get()),
                    format!("{:.3}", dp.energy().get()),
                    format!("{:.3}", fw.value()),
                    format!("{:.3}", ft.value()),
                    verdict.class.to_string(),
                ]);
            }
        }
    }
    println!("whole-SoC bundles vs the baseline (InO core, 1 MiB LLC, no accelerator):\n");
    println!("{table}");
    // The Pareto frontier over the same design space.
    let candidates = design_space(
        &[1.0, 2.0, 4.0],
        &[None, Some((Accelerator::HAMEED_H264, 0.3))],
    )?;
    let frontier = pareto_frontier(
        &candidates,
        &baseline.design_point()?,
        Scenario::FixedWork,
        E2oWeight::EMBODIED_DOMINATED,
    );
    println!(
        "Pareto-optimal bundles (fixed-work, embodied dominated):\n  {}",
        frontier
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
    println!(
        "\nChip-level reading: on this memory-bound workload the FSC-based bundles \
         dominate the baseline — big OoO cores buy little whole-SoC speed, large \
         LLCs pay in embodied footprint, and the accelerator only helps where it \
         is used."
    );
    Ok(())
}
