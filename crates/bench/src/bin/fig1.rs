//! Regenerates Figure 1: embodied footprint per chip vs. die size.

fn main() -> focal_core::Result<()> {
    let fig = focal_studies::wafer_figure::figure1()?;
    focal_bench::print_figure(&fig);

    let ((lin, lin_r2), (quad, quad_r2)) = focal_studies::wafer_figure::figure1_trendlines()?;
    println!("\ntrendlines (as in the paper's Figure 1):");
    println!(
        "  perfect yield ~ linear:    {:+.4} {:+.6}*A            (R² = {lin_r2:.5})",
        lin.coefficients()[0],
        lin.coefficients()[1]
    );
    println!(
        "  Murphy ~ quadratic: {:+.4} {:+.6}*A {:+.9}*A² (R² = {quad_r2:.5})",
        quad.coefficients()[0],
        quad.coefficients()[1],
        quad.coefficients()[2]
    );
    Ok(())
}
