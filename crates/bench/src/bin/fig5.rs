//! Regenerates Figure 5: hardware acceleration (a) and dark silicon (b).

fn main() -> focal_core::Result<()> {
    let a = focal_studies::accelerator::AcceleratorStudy::default().figure5a()?;
    focal_bench::print_figure(&a);
    let b = focal_studies::dark_silicon::DarkSiliconStudy::default().figure5b()?;
    focal_bench::print_figure(&b);
    Ok(())
}
