//! Namespaced artifact dumps under one `--dump-dir` root.
//!
//! Three producers write artifacts during a run and must never collide
//! or interleave, so each gets its own subdirectory of the dump root:
//!
//! * `registry/<figure-id>.csv` — hand-coded figure dumps (the oracle
//!   artifacts DSL twins are byte-compared against);
//! * `scenarios/<scenario-id>.{csv,txt}` — DSL scenario evaluations;
//! * `serve/<request-id>.json` — serve response transcripts, one file
//!   per request, named by the (sanitized) client request id.
//!
//! A DSL twin deliberately reuses the id of the figure it mirrors and a
//! serve client can name requests after scenarios, so flat files under
//! the root would clobber each other; the namespace split is what makes
//! the three producers safely composable
//! (`crates/bench/tests/dump_namespaces.rs` pins non-interleaving).
//!
//! Request ids come off the wire, so [`sanitize_id`] maps them onto a
//! conservative filename alphabet before they touch the filesystem —
//! `../../etc/passwd` becomes `.._.._etc_passwd`, staying inside the
//! namespace.

use std::io;
use std::path::{Path, PathBuf};

/// The `registry/` namespace (hand-coded figure dumps).
pub const NS_REGISTRY: &str = "registry";
/// The `scenarios/` namespace (DSL scenario dumps).
pub const NS_SCENARIOS: &str = "scenarios";
/// The `serve/` namespace (serve response transcripts).
pub const NS_SERVE: &str = "serve";

/// Maps an untrusted id onto the filename alphabet `[A-Za-z0-9._-]`
/// (anything else becomes `_`), so wire-supplied ids cannot escape
/// their dump namespace or embed separators. Empty ids become `"_"`.
#[must_use]
pub fn sanitize_id(id: &str) -> String {
    if id.is_empty() {
        return "_".to_string();
    }
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One `--dump-dir` root with lazily created namespace subdirectories.
#[derive(Debug, Clone)]
pub struct DumpDir {
    root: PathBuf,
}

impl DumpDir {
    /// Wraps `root` (not created until the first write).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> DumpDir {
        DumpDir { root: root.into() }
    }

    /// The dump root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Writes one artifact into `namespace` as `<name>.<ext>`,
    /// creating the namespace directory on first use. `name` is
    /// sanitized; `namespace` and `ext` are caller-controlled
    /// constants.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory or writing the file.
    pub fn write(
        &self,
        namespace: &str,
        name: &str,
        ext: &str,
        bytes: &[u8],
    ) -> io::Result<PathBuf> {
        let dir = self.root.join(namespace);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.{ext}", sanitize_id(name)));
        std::fs::write(&path, bytes)?;
        Ok(path)
    }

    /// Writes a hand-coded figure dump: `registry/<figure-id>.csv`.
    ///
    /// # Errors
    ///
    /// See [`DumpDir::write`].
    pub fn write_registry(&self, figure_id: &str, csv: &str) -> io::Result<PathBuf> {
        self.write(NS_REGISTRY, figure_id, "csv", csv.as_bytes())
    }

    /// Writes a scenario dump: `scenarios/<scenario-id>.<ext>` (`csv`
    /// for figures, `txt` for findings/robustness).
    ///
    /// # Errors
    ///
    /// See [`DumpDir::write`].
    pub fn write_scenario(
        &self,
        scenario_id: &str,
        ext: &str,
        bytes: &[u8],
    ) -> io::Result<PathBuf> {
        self.write(NS_SCENARIOS, scenario_id, ext, bytes)
    }

    /// Writes a serve transcript: `serve/<request-id>.json`.
    ///
    /// # Errors
    ///
    /// See [`DumpDir::write`].
    pub fn write_serve(&self, request_id: &str, response_line: &str) -> io::Result<PathBuf> {
        let mut bytes = response_line.as_bytes().to_vec();
        if !response_line.ends_with('\n') {
            bytes.push(b'\n');
        }
        self.write(NS_SERVE, request_id, "json", &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_hostile_ids_into_the_namespace() {
        assert_eq!(sanitize_id("p0-r12"), "p0-r12");
        assert_eq!(sanitize_id("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(sanitize_id("a b\"c"), "a_b_c");
        assert_eq!(sanitize_id(""), "_");
    }

    #[test]
    fn namespaces_land_in_their_own_subdirs() {
        let root = std::env::temp_dir().join(format!("focal-dump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dump = DumpDir::new(&root);
        let a = dump.write_registry("fig3", "x,y\n").unwrap();
        let b = dump.write_scenario("fig3", "csv", b"x,y\n").unwrap();
        let c = dump.write_serve("fig3", "{\"ok\":true}").unwrap();
        assert!(a.ends_with("registry/fig3.csv"));
        assert!(b.ends_with("scenarios/fig3.csv"));
        assert!(c.ends_with("serve/fig3.json"));
        assert_eq!(std::fs::read_to_string(c).unwrap(), "{\"ok\":true}\n");
        let _ = std::fs::remove_dir_all(&root);
    }
}
