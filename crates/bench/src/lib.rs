//! # focal-bench — the FOCAL reproduction harness
//!
//! One binary per paper figure (`fig1`, `fig3`, … `fig9`), a `findings`
//! binary that recomputes all 17 findings (+ the §7 case study) with
//! paper-vs-measured tables, and ablation binaries for the design choices
//! DESIGN.md calls out. Criterion benches (`cargo bench -p focal-bench`)
//! time the model kernels behind each figure.
//!
//! Every binary prints the figure's series as an ASCII chart plus a CSV
//! dump on stdout, so `cargo run -p focal-bench --bin fig3 > fig3.csv`
//! captures machine-readable data.

#![warn(missing_docs)]

pub mod dump;
pub mod micro;
pub mod suite;

use focal_studies::Figure;

/// Prints a regenerated figure in the harness's standard format: caption,
/// ASCII charts, then the CSV block.
pub fn print_figure(fig: &Figure) {
    println!("==================================================================");
    println!("{}: {}", fig.id, fig.caption);
    println!("==================================================================\n");
    for panel in &fig.panels {
        println!("{}", panel.to_chart(64, 16).render());
    }
    println!("--- CSV ---");
    print!("{}", fig.to_csv());
}

/// Prints a one-line reproduction summary for a set of findings and
/// returns how many reproduced.
pub fn print_findings_summary(findings: &[focal_studies::Finding]) -> usize {
    let ok = findings.iter().filter(|f| f.reproduces()).count();
    println!(
        "\n{ok}/{} findings reproduce the paper's numbers and verdicts.",
        findings.len()
    );
    ok
}

/// Process exit code for a findings run: `0` only if *every* finding
/// reproduces the paper, `1` otherwise — so CI can gate on the `findings`
/// binary (and the `suite` binary) directly.
///
/// An empty slice is a failure: it means the registry produced nothing,
/// which must never read as success.
#[must_use]
pub fn findings_exit_code(findings: &[focal_studies::Finding]) -> i32 {
    if !findings.is_empty() && findings.iter().all(|f| f.reproduces()) {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_figure_smoke() {
        let fig = focal_studies::wafer_figure::figure1().unwrap();
        // Just exercise the printing path.
        print_figure(&fig);
    }

    #[test]
    fn summary_counts_reproductions() {
        let findings = focal_studies::all_findings().unwrap();
        assert_eq!(print_findings_summary(&findings), findings.len());
    }
}
