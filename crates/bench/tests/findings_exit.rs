//! Pins the exit-code contract of the gate binaries: `findings` (and
//! `suite`) must exit 0 exactly when the reproduction succeeds, so CI
//! can gate on them. The failure side of the contract is pinned at the
//! unit level in [`focal_bench::findings_exit_code`]'s tests and here
//! with fabricated findings; the success side end-to-end against the
//! real binaries.

use focal_studies::{Finding, Metric};
use std::process::Command;

fn failing_finding() -> Finding {
    let mut f = focal_studies::all_findings().expect("registry builds")[0].clone();
    f.metrics
        .push(Metric::new("fabricated mismatch", 1.0, 2.0, 0.001));
    assert!(!f.reproduces(), "fabricated metric must break reproduction");
    f
}

#[test]
fn exit_code_is_zero_only_when_all_findings_reproduce() {
    let all = focal_studies::all_findings().expect("registry builds");
    assert_eq!(focal_bench::findings_exit_code(&all), 0);

    let mut with_failure = all.clone();
    with_failure.push(failing_finding());
    assert_eq!(focal_bench::findings_exit_code(&with_failure), 1);

    // An empty registry must read as failure, not success.
    assert_eq!(focal_bench::findings_exit_code(&[]), 1);
}

#[test]
fn findings_binary_exits_zero_and_reports_full_reproduction() {
    let out = Command::new(env!("CARGO_BIN_EXE_findings"))
        .output()
        .expect("findings binary runs");
    assert!(
        out.status.success(),
        "findings exited {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("18/18 findings reproduce"),
        "summary line missing:\n{stdout}"
    );
}

#[test]
fn suite_binary_json_is_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_suite"))
            .arg("--no-timings")
            .env("FOCAL_THREADS", threads)
            .output()
            .expect("suite binary runs");
        assert!(
            out.status.success(),
            "suite (FOCAL_THREADS={threads}) exited {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert!(
        String::from_utf8_lossy(&serial).contains("\"ok\": true"),
        "suite must pass on the paper configuration"
    );
    assert_eq!(
        serial,
        run("3"),
        "deterministic suite JSON must not depend on FOCAL_THREADS"
    );
}
