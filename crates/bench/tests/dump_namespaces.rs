//! Pins the `--dump-dir` namespace contract: hand-coded figure dumps,
//! DSL scenario dumps, and serve transcripts share one root but land in
//! `registry/`, `scenarios/`, and `serve/` respectively — the SAME id
//! used by all three producers yields three distinct files that never
//! interleave or clobber each other.

use focal_bench::dump::{DumpDir, NS_REGISTRY, NS_SCENARIOS, NS_SERVE};
use std::path::Path;
use std::process::Command;

fn scenarios_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data/scenarios")
}

#[test]
fn suite_dump_namespaces_never_interleave() {
    let root = std::env::temp_dir().join(format!("focal-dump-ns-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let out = Command::new(env!("CARGO_BIN_EXE_suite"))
        .arg("--no-timings")
        .arg("--dump-dir")
        .arg(&root)
        .arg("--scenarios")
        .arg(scenarios_dir())
        .env("FOCAL_THREADS", "2")
        .output()
        .expect("suite binary runs");
    assert!(
        out.status.success(),
        "suite exited {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );

    // A serve transcript joins the same root, reusing an id that
    // already exists in BOTH other namespaces.
    let dump = DumpDir::new(&root);
    dump.write_serve("fig3", "{\"ok\":true}")
        .expect("serve transcript writes");

    // The root contains exactly the three namespace directories — no
    // flat files that could interleave between producers.
    let mut top: Vec<String> = std::fs::read_dir(&root)
        .expect("dump root exists")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    top.sort();
    assert_eq!(top, vec![NS_REGISTRY, NS_SCENARIOS, NS_SERVE]);

    // The shared id "fig3" exists once per namespace, each with the
    // namespace's own content type.
    let registry = root.join(NS_REGISTRY).join("fig3.csv");
    let scenario = root.join(NS_SCENARIOS).join("fig3.csv");
    let serve = root.join(NS_SERVE).join("fig3.json");
    for path in [&registry, &scenario, &serve] {
        assert!(path.is_file(), "missing {}", path.display());
    }

    // The DSL twin must still byte-match its hand-coded oracle — the
    // namespace split exists so this comparison stays possible even
    // though both sides use the same id.
    let oracle = std::fs::read(&registry).expect("registry dump");
    let twin = std::fs::read(&scenario).expect("scenario dump");
    assert_eq!(oracle, twin, "fig3 DSL twin diverged from the registry");

    // Every namespace holds only its own extension: registry/ and
    // scenarios/ never contain .json, serve/ never contains .csv.
    let extensions = |ns: &str| -> Vec<String> {
        let mut exts: Vec<String> = std::fs::read_dir(root.join(ns))
            .expect("namespace dir")
            .filter_map(Result::ok)
            .filter_map(|e| {
                e.path()
                    .extension()
                    .map(|x| x.to_string_lossy().into_owned())
            })
            .collect();
        exts.sort();
        exts.dedup();
        exts
    };
    assert_eq!(extensions(NS_REGISTRY), vec!["csv"]);
    assert!(!extensions(NS_SCENARIOS).contains(&"json".to_string()));
    assert_eq!(extensions(NS_SERVE), vec!["json"]);

    let _ = std::fs::remove_dir_all(&root);
}
