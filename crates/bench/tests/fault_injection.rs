//! End-to-end fault injection through the suite: an armed fault plan
//! degrades exactly one stage to `status: error` — with a minimal repro
//! line — while every other stage completes, and the degraded report is
//! still byte-identical across thread counts.
//!
//! These tests arm the process-global fault plan, so they live in their
//! own integration-test binary and serialize with a file-local lock.

use focal_bench::suite::{run_suite, StageStatus, SuiteReport};
use focal_engine::{fault, Engine, FaultPlan};
use std::sync::{Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const STAGE_NAMES: [&str; 5] = [
    "figures",
    "findings",
    "robustness",
    "crossovers",
    "defect-sim",
];

/// Asserts the report degraded gracefully: exactly `errored` carries
/// `status: error` (with a repro entry), every other stage is ok.
fn assert_degraded(report: &SuiteReport, errored: &str) {
    assert!(!report.ok(), "a degraded report must not claim success");
    let names: Vec<&str> = report.stages.iter().map(|s| s.name).collect();
    assert_eq!(names, STAGE_NAMES, "every stage must still run");
    for stage in &report.stages {
        if stage.name == errored {
            assert_eq!(stage.status, StageStatus::Error, "{}", stage.name);
            let repro = stage
                .entries
                .iter()
                .find(|(k, _)| k == "repro")
                .unwrap_or_else(|| panic!("{} carries no repro line", stage.name));
            assert!(
                repro.1.contains(&format!("stage={errored}")),
                "repro line names the stage: {}",
                repro.1
            );
        } else {
            assert_eq!(stage.status, StageStatus::Ok, "{}", stage.name);
        }
    }
}

#[test]
fn injected_chunk_panic_degrades_only_the_figures_stage() {
    let _guard = lock();
    fault::arm(FaultPlan::parse("panic@figures:3").unwrap());
    let serial = run_suite(&Engine::serial());
    let parallel = run_suite(&Engine::with_threads(4));
    fault::disarm();

    assert_degraded(&serial, "figures");
    assert_degraded(&parallel, "figures");

    // The chunk diagnostic names the failing chunk and its seed.
    let figures = &serial.stages[0];
    let repro = figures.entries.iter().find(|(k, _)| k == "repro").unwrap();
    assert!(repro.1.contains("chunk_index="), "{}", repro.1);
    assert!(repro.1.contains("chunk_seed="), "{}", repro.1);

    // Thread-count invariance holds for faulted reports too.
    assert_eq!(serial.to_json(false), parallel.to_json(false));

    // Disarmed, the suite is whole again.
    let clean = run_suite(&Engine::serial());
    assert!(clean.ok(), "{}", clean.human_summary());
}

#[test]
fn injected_nan_degrades_only_the_robustness_stage() {
    let _guard = lock();
    fault::arm(FaultPlan::parse("nan@mc:1017").unwrap());
    let serial = run_suite(&Engine::serial());
    let parallel = run_suite(&Engine::with_threads(4));
    fault::disarm();

    assert_degraded(&serial, "robustness");
    assert_degraded(&parallel, "robustness");

    // The tripwire names the poisoned sample, not just the chunk.
    let robustness = &serial.stages[2];
    let (_, error) = robustness
        .entries
        .iter()
        .find(|(k, _)| k == "error")
        .unwrap();
    assert!(error.contains("sample 1017"), "{error}");

    assert_eq!(serial.to_json(false), parallel.to_json(false));

    let clean = run_suite(&Engine::serial());
    assert!(clean.ok(), "{}", clean.human_summary());
}

#[test]
fn faulted_json_reports_exactly_one_error_status() {
    let _guard = lock();
    fault::arm(FaultPlan::parse("panic@figures:3").unwrap());
    let report = run_suite(&Engine::serial());
    fault::disarm();

    let json = report.to_json(false);
    assert_eq!(json.matches("\"status\": \"error\"").count(), 1, "{json}");
    assert_eq!(json.matches("\"status\": \"ok\"").count(), 4, "{json}");
}
