//! Pins the `--memo` reporting contract at the binary level: the human
//! summary (stderr) always carries the sweep-memo counters — including
//! under `--no-timings` — while the `--no-timings` JSON (stdout) stays
//! memo-agnostic, byte-identical with and without `--memo`.

use std::process::Command;

fn run_suite(args: &[&str]) -> (Vec<u8>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_suite"))
        .args(args)
        .env("FOCAL_THREADS", "2")
        .output()
        .expect("suite binary runs");
    assert!(
        out.status.success(),
        "suite {args:?} exited {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        out.stdout,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn memo_counters_reach_the_no_timings_human_summary() {
    let (_, stderr) = run_suite(&["--memo", "--no-timings"]);
    let memo_line = stderr
        .lines()
        .find(|l| l.contains("sweep memo:"))
        .unwrap_or_else(|| panic!("no sweep memo line in stderr:\n{stderr}"));
    for piece in ["hits", "misses", "entries", "% hit rate)"] {
        assert!(memo_line.contains(piece), "{memo_line}");
    }
}

#[test]
fn no_timings_json_is_memo_agnostic() {
    let (plain, plain_err) = run_suite(&["--no-timings"]);
    let (memo, _) = run_suite(&["--memo", "--no-timings"]);
    assert_eq!(
        plain, memo,
        "--no-timings JSON must be byte-identical with and without --memo"
    );
    assert!(!String::from_utf8_lossy(&plain).contains("\"memo\""));
    assert!(
        !plain_err.contains("sweep memo:"),
        "no memo line without --memo:\n{plain_err}"
    );
}

#[test]
fn timed_json_memo_block_carries_the_hit_rate() {
    let (stdout, _) = run_suite(&["--memo"]);
    let json = String::from_utf8_lossy(&stdout);
    let memo_line = json
        .lines()
        .find(|l| l.contains("\"memo\""))
        .unwrap_or_else(|| panic!("no memo block in timed JSON:\n{json}"));
    for key in ["\"hits\"", "\"misses\"", "\"entries\"", "\"hit_rate\""] {
        assert!(memo_line.contains(key), "{memo_line}");
    }
}
