//! Criterion benchmarks: one group per paper figure, timing the full
//! regeneration of that figure's data series, plus the findings batch.
//!
//! These exist so `cargo bench --workspace` regenerates every experiment
//! under measurement — if a figure's numbers drift, its bench is the
//! place where both the cost and (via the harness binaries) the values
//! are re-derived.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_embodied_vs_die_size", |b| {
        b.iter(|| black_box(focal_studies::wafer_figure::figure1().unwrap()))
    });
    c.bench_function("fig1_trendlines", |b| {
        b.iter(|| black_box(focal_studies::wafer_figure::figure1_trendlines().unwrap()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let study = focal_studies::multicore::MulticoreStudy::default();
    c.bench_function("fig3_multicore", |b| {
        b.iter(|| black_box(study.figure3().unwrap()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let study = focal_studies::asymmetric::AsymmetricStudy::default();
    c.bench_function("fig4_asymmetric", |b| {
        b.iter(|| black_box(study.figure4().unwrap()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let acc = focal_studies::accelerator::AcceleratorStudy::default();
    let dark = focal_studies::dark_silicon::DarkSiliconStudy::default();
    c.bench_function("fig5a_accelerator", |b| {
        b.iter(|| black_box(acc.figure5a().unwrap()))
    });
    c.bench_function("fig5b_dark_silicon", |b| {
        b.iter(|| black_box(dark.figure5b().unwrap()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let study = focal_studies::caching::CachingStudy::paper().unwrap();
    c.bench_function("fig6_caching", |b| {
        b.iter(|| black_box(study.figure6().unwrap()))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_cores", |b| {
        b.iter(|| black_box(focal_studies::microarch::MicroarchStudy.figure7().unwrap()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let study = focal_studies::speculation::SpeculationStudy::default();
    c.bench_function("fig8_branch", |b| {
        b.iter(|| black_box(study.figure8().unwrap()))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let study = focal_studies::case_study::CaseStudy::paper().unwrap();
    c.bench_function("fig9_case_study", |b| {
        b.iter(|| black_box(study.figure9().unwrap()))
    });
}

fn bench_findings(c: &mut Criterion) {
    c.bench_function("findings_all_18", |b| {
        b.iter(|| black_box(focal_studies::all_findings().unwrap()))
    });
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_findings
);
criterion_main!(figures);
