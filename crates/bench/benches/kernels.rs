//! Criterion benchmarks of the individual model kernels the figures are
//! built from: NCF evaluation, Monte-Carlo uncertainty, yield/geometry
//! math and the exact die-placement counter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focal_core::{DesignPoint, E2oRange, E2oWeight, MonteCarloNcf, Ncf, Scenario};
use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
use focal_wafer::{
    DefectDensity, DefectDistribution, DefectSimulator, DiePlacement, Wafer, YieldModel,
};
use std::hint::black_box;

fn bench_ncf(c: &mut Criterion) {
    let x = DesignPoint::from_power_perf(1.39, 2.32, 1.75).unwrap();
    let y = DesignPoint::reference();
    c.bench_function("ncf_evaluate", |b| {
        b.iter(|| {
            black_box(Ncf::evaluate(
                black_box(&x),
                black_box(&y),
                Scenario::FixedWork,
                E2oWeight::EMBODIED_DOMINATED,
            ))
        })
    });
    c.bench_function("classify", |b| {
        b.iter(|| black_box(focal_core::classify(&x, &y, E2oWeight::EMBODIED_DOMINATED)))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 42).unwrap();
    let mut group = c.benchmark_group("monte_carlo_ncf");
    for samples in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| black_box(mc.run(&x, &y, Scenario::FixedWork, n)))
        });
    }
    group.finish();
}

fn bench_multicore_models(c: &mut Criterion) {
    let f = ParallelFraction::new(0.95).unwrap();
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;
    c.bench_function("woo_lee_design_point_32", |b| {
        b.iter(|| {
            black_box(
                SymmetricMulticore::unit_cores(32)
                    .unwrap()
                    .design_point(f, gamma, pollack)
                    .unwrap(),
            )
        })
    });
}

fn bench_wafer_math(c: &mut Criterion) {
    let die = focal_core::SiliconArea::from_mm2(100.0).unwrap();
    c.bench_function("chips_de_vries", |b| {
        b.iter(|| black_box(Wafer::W300MM.chips_de_vries(black_box(die)).unwrap()))
    });
    c.bench_function("murphy_yield", |b| {
        b.iter(|| {
            black_box(YieldModel::Murphy.fraction_good(black_box(die), DefectDensity::TSMC_VOLUME))
        })
    });
    let mut group = c.benchmark_group("chips_exact_grid");
    for mm2 in [100.0f64, 400.0] {
        let die = focal_core::SiliconArea::from_mm2(mm2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(mm2 as u64), &die, |b, d| {
            b.iter(|| black_box(Wafer::W300MM.chips_exact_square(*d).unwrap()))
        });
    }
    group.finish();
}

fn bench_defect_sim(c: &mut Criterion) {
    let placement = DiePlacement::square(10.0);
    let sim = DefectSimulator::new(Wafer::W300MM, DefectDistribution::Uniform, 0xF0CA1);
    let mut group = c.benchmark_group("defect_sim");
    group.bench_function("indexed/die10mm", |b| {
        b.iter(|| black_box(sim.run(black_box(&placement), 0.2, 4).unwrap()))
    });
    group.bench_function("naive/die10mm", |b| {
        b.iter(|| black_box(sim.run_reference(black_box(&placement), 0.2, 4).unwrap()))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_ncf,
    bench_monte_carlo,
    bench_multicore_models,
    bench_wafer_math,
    bench_defect_sim
);
criterion_main!(kernels);
