//! Property-based tests of the report renderers: alignment invariants for
//! tables, RFC-4180 round-trips for CSV, and bounds-safety for charts.

use focal_report::{AsciiChart, ChartSeries, CsvWriter, Table};
use proptest::prelude::*;

/// A tiny RFC-4180 parser for round-trip checking (quotes, embedded
/// commas/newlines).
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                other => cell.push(other),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

fn arb_cell() -> impl Strategy<Value = String> {
    // Printable ASCII plus the characters that force quoting.
    proptest::string::string_regex("[ -~]{0,12}")
        .expect("valid regex")
        .prop_map(|s| s.replace('\r', " "))
}

proptest! {
    /// CSV round-trips arbitrary cells (including commas, quotes and
    /// embedded newlines) through a conforming parser.
    #[test]
    fn csv_round_trips(
        headers in proptest::collection::vec(arb_cell(), 1..5),
        rows in proptest::collection::vec(
            proptest::collection::vec(arb_cell(), 1..5), 0..6),
    ) {
        let width = headers.len();
        let mut writer = CsvWriter::new(headers.clone());
        let mut expected = vec![headers];
        for mut row in rows {
            row.resize(width, String::new());
            writer.row(&row);
            expected.push(row);
        }
        let text = writer.finish();
        let parsed = parse_csv(&text);
        prop_assert_eq!(parsed, expected);
    }

    /// CSV handles a newline-containing cell without corrupting row
    /// structure.
    #[test]
    fn csv_embedded_newlines(prefix in arb_cell(), suffix in arb_cell()) {
        let tricky = format!("{prefix}\n{suffix}");
        let mut writer = CsvWriter::new(vec!["a", "b"]);
        writer.row(&[tricky.clone(), "plain".into()]);
        let parsed = parse_csv(&writer.finish());
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[1][0], &tricky);
    }

    /// Every rendered table line has the same display width: alignment
    /// never drifts regardless of cell contents.
    #[test]
    fn table_lines_align(
        rows in proptest::collection::vec(
            (arb_cell(), -1e6f64..1e6), 1..8),
    ) {
        let mut table = Table::new(vec!["label", "value"]);
        for (label, value) in &rows {
            table.row_numeric(label.clone(), &[*value]);
        }
        let text = table.to_text();
        let widths: Vec<usize> =
            text.lines().map(|l| l.chars().count()).collect();
        prop_assert!(widths.len() >= 3);
        // Header, rule and every data row share one width.
        let expected = widths[0];
        for (i, w) in widths.iter().enumerate() {
            prop_assert_eq!(*w, expected, "line {} width {} != {}", i, w, expected);
        }
    }

    /// Markdown rendering always emits head + separator + one line per row,
    /// each with the same column count.
    #[test]
    fn markdown_structure(
        rows in proptest::collection::vec(arb_cell(), 1..6),
    ) {
        let mut table = Table::new(vec!["k", "v"]);
        for r in &rows {
            // Pipes inside cells would break Markdown structure; the
            // caller owns escaping, so keep the property's domain clean.
            table.row(vec![r.replace('|', "/"), "x".into()]);
        }
        let md = table.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        prop_assert_eq!(lines.len(), 2 + rows.len());
        for line in &lines {
            prop_assert_eq!(line.matches('|').count(), 3, "line: {}", line);
        }
    }

    /// Charts never panic and always plot every series symbol for any
    /// finite data, including degenerate (single-point, flat) series.
    #[test]
    fn chart_total_for_finite_data(
        points in proptest::collection::vec(
            (-1e9f64..1e9, -1e9f64..1e9), 1..30),
        width in 2usize..80,
        height in 2usize..30,
    ) {
        let chart = AsciiChart::new("prop", width, height)
            .series(ChartSeries::new("s", '*', points));
        let text = chart.render();
        prop_assert!(text.contains('*'));
        prop_assert!(text.contains("prop"));
        // Plot rows are exactly `height` lines containing the axis bar.
        let plot_rows = text.lines().filter(|l| l.contains('|')).count();
        prop_assert_eq!(plot_rows, height);
    }
}
