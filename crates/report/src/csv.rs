//! Minimal CSV writing (RFC 4180 quoting), hand-rolled to keep the
//! dependency set to the approved list.

use std::fmt::Write as _;

/// Builds CSV text row by row.
///
/// # Examples
///
/// ```
/// use focal_report::CsvWriter;
///
/// let mut csv = CsvWriter::new(vec!["die_mm2", "footprint"]);
/// csv.row(&["100".to_string(), "1.0".to_string()]);
/// csv.row_numeric(&[800.0, 16.98]);
/// let text = csv.finish();
/// assert!(text.starts_with("die_mm2,footprint\n"));
/// ```
#[derive(Debug, Clone)]
pub struct CsvWriter {
    columns: usize,
    out: String,
}

impl CsvWriter {
    /// Creates a writer with a header row.
    pub fn new<S: AsRef<str>>(headers: Vec<S>) -> Self {
        let mut w = CsvWriter {
            columns: headers.len(),
            out: String::new(),
        };
        let cells: Vec<String> = headers.iter().map(|h| Self::escape(h.as_ref())).collect();
        w.out.push_str(&cells.join(","));
        w.out.push('\n');
        w
    }

    fn escape(cell: &str) -> String {
        if cell.contains([',', '"', '\n', '\r']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Appends a row of string cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        let escaped: Vec<String> = cells.iter().map(|c| Self::escape(c)).collect();
        self.out.push_str(&escaped.join(","));
        self.out.push('\n');
        self
    }

    /// Appends a row of numbers (full precision via `{}`).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_numeric(&mut self, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.columns, "CSV row width mismatch");
        let mut first = true;
        for v in values {
            if !first {
                self.out.push(',');
            }
            write!(self.out, "{v}").expect("writing to String cannot fail");
            first = false;
        }
        self.out.push('\n');
        self
    }

    /// Consumes the writer, returning the CSV text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::new(vec!["a", "b"]);
        w.row(&["1".into(), "2".into()]);
        w.row_numeric(&[3.5, 4.25]);
        let text = w.finish();
        assert_eq!(text, "a,b\n1,2\n3.5,4.25\n");
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let mut w = CsvWriter::new(vec!["label"]);
        w.row(&["hello, \"world\"".into()]);
        let text = w.finish();
        assert_eq!(text, "label\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    fn newlines_are_quoted() {
        let mut w = CsvWriter::new(vec!["x"]);
        w.row(&["line1\nline2".into()]);
        assert!(w.finish().contains("\"line1\nline2\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new(vec!["a", "b"]);
        w.row_numeric(&[1.0]);
    }

    #[test]
    fn headers_are_escaped_too() {
        let w = CsvWriter::new(vec!["a,b", "c"]);
        assert!(w.finish().starts_with("\"a,b\",c\n"));
    }
}
