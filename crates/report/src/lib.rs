//! # focal-report — harness output rendering
//!
//! Text tables, CSV, and ASCII charts used by the `focal-bench` harness to
//! print the regenerated paper figures and findings:
//!
//! * [`Table`] — aligned plain-text and Markdown tables.
//! * [`CsvWriter`] — RFC-4180 CSV for downstream plotting.
//! * [`AsciiChart`] / [`ChartSeries`] — terminal scatter plots of each
//!   figure's series.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod chart;
mod csv;
mod table;

pub use chart::{AsciiChart, ChartSeries};
pub use csv::CsvWriter;
pub use table::{Align, Table};
