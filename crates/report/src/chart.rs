//! ASCII scatter charts, so the benchmark harness can sketch each paper
//! figure directly in the terminal.

use std::fmt;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSeries {
    /// Legend name.
    pub name: String,
    /// Plot symbol (one char per series).
    pub symbol: char,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl ChartSeries {
    /// Creates a series.
    pub fn new(name: impl Into<String>, symbol: char, points: Vec<(f64, f64)>) -> Self {
        ChartSeries {
            name: name.into(),
            symbol,
            points,
        }
    }
}

/// An ASCII scatter chart.
///
/// # Examples
///
/// ```
/// use focal_report::{AsciiChart, ChartSeries};
///
/// let chart = AsciiChart::new("NCF vs performance", 40, 12)
///     .series(ChartSeries::new("multicore", 'o', vec![(1.0, 1.0), (2.0, 0.8)]));
/// let text = chart.render();
/// assert!(text.contains("NCF vs performance"));
/// assert!(text.contains('o'));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<ChartSeries>,
}

impl AsciiChart {
    /// Creates an empty chart of `width × height` characters (plot area).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart needs at least 2x2 cells");
        AsciiChart {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn series(mut self, series: ChartSeries) -> Self {
        self.series.push(series);
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter());
        let first = pts.next()?;
        let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
        for &(x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Degenerate ranges get padded so everything still plots.
        if x0 == x1 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if y0 == y1 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart as multi-line text (title, plot, axis labels,
    /// legend). An empty chart renders its title and a note.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let Some((x0, x1, y0, y1)) = self.bounds() else {
            out.push_str("(no data)\n");
            return out;
        };

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                // y axis points up: row 0 is the top.
                grid[self.height - 1 - cy][cx] = s.symbol;
            }
        }

        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y1:>8.2} ")
            } else if i == self.height - 1 {
                format!("{y0:>8.2} ")
            } else {
                " ".repeat(9)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(9));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<width$.2}{:>rest$.2}\n",
            " ".repeat(10),
            x0,
            x1,
            width = self.width / 2,
            rest = self.width - self.width / 2
        ));
        for s in &self.series {
            out.push_str(&format!("  {} {}\n", s.symbol, s.name));
        }
        out
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let chart = AsciiChart::new("t", 20, 8)
            .series(ChartSeries::new("a", 'o', vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(ChartSeries::new("b", 'x', vec![(0.5, 0.5)]));
        let text = chart.render();
        assert!(text.contains('o'));
        assert!(text.contains('x'));
        assert!(text.contains("  o a"));
        assert!(text.contains("  x b"));
    }

    #[test]
    fn empty_chart_notes_no_data() {
        let chart = AsciiChart::new("empty", 10, 5);
        assert!(chart.render().contains("(no data)"));
    }

    #[test]
    fn extremes_land_on_corners() {
        let chart = AsciiChart::new("c", 10, 5).series(ChartSeries::new(
            "s",
            '*',
            vec![(0.0, 0.0), (1.0, 1.0)],
        ));
        let text = chart.render();
        let plot_lines: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        // Top row holds the (1,1) point at the right edge.
        assert!(plot_lines.first().unwrap().ends_with('*'));
        // Bottom plot row holds (0,0) at the left edge (just after '|').
        let bottom = plot_lines.last().unwrap();
        let after_bar = bottom.split('|').nth(1).unwrap();
        assert!(after_bar.starts_with('*'));
    }

    #[test]
    fn degenerate_range_still_renders() {
        let chart =
            AsciiChart::new("flat", 10, 5).series(ChartSeries::new("s", '*', vec![(1.0, 2.0)]));
        let text = chart.render();
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_chart_panics() {
        let _ = AsciiChart::new("t", 1, 5);
    }

    #[test]
    fn axis_labels_show_bounds() {
        let chart = AsciiChart::new("c", 16, 4).series(ChartSeries::new(
            "s",
            '*',
            vec![(2.0, 10.0), (4.0, 30.0)],
        ));
        let text = chart.render();
        assert!(text.contains("30.00"));
        assert!(text.contains("10.00"));
        assert!(text.contains("2.00"));
        assert!(text.contains("4.00"));
    }
}
