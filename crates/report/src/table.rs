//! Plain-text and Markdown table rendering for the benchmark harness.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table: a header row plus data rows.
///
/// # Examples
///
/// ```
/// use focal_report::Table;
///
/// let mut t = Table::new(vec!["design", "NCF_fw", "NCF_ft"]);
/// t.row(vec!["FSC vs OoO".to_string(), "0.55".to_string(), "0.47".to_string()]);
/// let text = t.to_text();
/// assert!(text.contains("FSC vs OoO"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (the common label+numbers
    /// shape); use [`Table::with_aligns`] to override.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides the per-column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of
    /// columns.
    #[must_use]
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns;
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of a label plus formatted numbers (4 decimal places).
    ///
    /// # Panics
    ///
    /// Panics if `1 + values.len()` differs from the column count.
    pub fn row_numeric(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let pad = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(pad)),
            Align::Right => format!("{}{cell}", " ".repeat(pad)),
        }
    }

    /// Renders an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .zip(&self.aligns)
                .map(|((c, &w), &a)| Self::pad(c, w, a))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row_numeric("beta", &[2.25]);
        t
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // Numbers right-aligned: the value column ends at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_render_has_separator_row() {
        let md = sample().to_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("| :--- | ---: |"));
        assert!(md.contains("| beta | 2.2500 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn mismatched_aligns_panic() {
        let _ = Table::new(vec!["a", "b"]).with_aligns(vec![Align::Left]);
    }

    #[test]
    fn row_numeric_formats_4dp() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row_numeric("x", &[1.0 / 3.0]);
        assert!(t.to_text().contains("0.3333"));
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn display_matches_text() {
        let t = sample();
        assert_eq!(t.to_string(), t.to_text());
    }

    #[test]
    fn unicode_headers_align_by_chars() {
        let mut t = Table::new(vec!["α_E2O", "NCF"]);
        t.row(vec!["0.8".into(), "1.0".into()]);
        let text = t.to_text();
        assert!(text.contains("α_E2O"));
    }
}
