//! Property-based tests of the technology-scaling substrate.

use focal_core::{classify, E2oWeight, Sustainability};
use focal_scaling::{iso_power_frequency, DieShrink, Roadmap, ScalingRegime, TechNode};
use focal_wafer::ManufacturingTrend;
use proptest::prelude::*;

proptest! {
    /// Iso-power frequency: scaling the power ratio by k³ scales the
    /// frequency by 1/k (exact inverse-cube law).
    #[test]
    fn iso_power_inverse_cube(p in 0.1f64..10.0, k in 0.5f64..2.0, gain in 1.0f64..2.0) {
        let base = iso_power_frequency(p, gain).unwrap();
        let scaled = iso_power_frequency(p * k.powi(3), gain).unwrap();
        prop_assert!((scaled - base / k).abs() < 1e-9 * base.max(1.0));
    }

    /// Iso-power frequency is monotone decreasing in relative power.
    #[test]
    fn iso_power_monotone(p in 0.1f64..10.0, dp in 0.01f64..1.0) {
        let a = iso_power_frequency(p, 1.41).unwrap();
        let b = iso_power_frequency(p + dp, 1.41).unwrap();
        prop_assert!(b < a);
    }

    /// Shrink factors compound exactly: factors(a+b) = factors(a)·factors(b).
    #[test]
    fn shrink_factors_compound(a in 0u32..5, b in 0u32..5) {
        for regime in ScalingRegime::ALL {
            let fa = regime.shrink_factors().over_transitions(a);
            let fb = regime.shrink_factors().over_transitions(b);
            let fab = regime.shrink_factors().over_transitions(a + b);
            prop_assert!((fab.area - fa.area * fb.area).abs() < 1e-12);
            prop_assert!((fab.frequency - fa.frequency * fb.frequency).abs() < 1e-9);
            prop_assert!((fab.power - fa.power * fb.power).abs() < 1e-12);
            prop_assert!((fab.energy - fa.energy * fb.energy).abs() < 1e-12);
        }
    }

    /// A die shrink is strongly sustainable for any manufacturing growth
    /// below the area halving (the paper's Finding #17 condition).
    #[test]
    fn shrink_strong_while_growth_below_halving(growth in 0.0f64..0.9) {
        let trend = ManufacturingTrend::new(growth, growth, growth, growth).unwrap();
        for regime in ScalingRegime::ALL {
            let shrink = DieShrink::new(regime, trend, 1);
            prop_assert!(shrink.embodied_factor() < 1.0);
            let (new, old) = shrink.design_points().unwrap();
            for alpha in [E2oWeight::EMBODIED_DOMINATED, E2oWeight::OPERATIONAL_DOMINATED] {
                prop_assert_eq!(
                    classify(&new, &old, alpha).class,
                    Sustainability::Strongly
                );
            }
        }
    }

    /// Once per-node manufacturing growth exceeds 100 % (doubling), the
    /// embodied factor crosses 1 and the shrink stops paying.
    #[test]
    fn shrink_fails_when_growth_exceeds_doubling(excess in 0.01f64..2.0) {
        let growth = 1.0 + excess; // > 100 % growth per node
        let trend = ManufacturingTrend::new(growth, growth, growth, growth).unwrap();
        let shrink = DieShrink::new(ScalingRegime::PostDennard, trend, 1);
        prop_assert!(shrink.embodied_factor() > 1.0);
    }

    /// Roadmap rows agree with standalone DieShrink at every step.
    #[test]
    fn roadmap_rows_match_die_shrink(regime_classical in any::<bool>()) {
        let regime = if regime_classical {
            ScalingRegime::Classical
        } else {
            ScalingRegime::PostDennard
        };
        let roadmap = Roadmap::project(TechNode::N28, TechNode::N3, regime).unwrap();
        for step in roadmap.steps() {
            let shrink = DieShrink::new(regime, ManufacturingTrend::IMEC, step.transitions);
            prop_assert!((step.embodied - shrink.embodied_factor()).abs() < 1e-12);
            prop_assert!(
                (step.factors.frequency - shrink.performance_factor()).abs() < 1e-12
            );
        }
    }
}

#[test]
fn node_transitions_are_path_independent() {
    // transitions(a→c) = transitions(a→b) + transitions(b→c).
    for a in TechNode::ROADMAP {
        for b in TechNode::ROADMAP {
            for c in TechNode::ROADMAP {
                if let (Some(ab), Some(bc), Some(ac)) = (
                    a.transitions_to(b),
                    b.transitions_to(c),
                    a.transitions_to(c),
                ) {
                    assert_eq!(ab + bc, ac);
                }
            }
        }
    }
}
