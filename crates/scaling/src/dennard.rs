//! Classical (Dennard) versus post-Dennard scaling rules (§6).
//!
//! Per node transition the paper assumes chip area halves and the circuit
//! clocks 1.41× higher. Under **classical** scaling voltage scales down
//! with feature size, so power halves and energy falls by 2.82×; under
//! **post-Dennard** scaling voltage is stuck, so power stays constant and
//! energy falls only by the 1.41× performance gain.

use std::fmt;

/// The voltage-scaling regime governing a die shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingRegime {
    /// Dennard scaling: V scales with feature size.
    Classical,
    /// Post-Dennard: V is (nearly) constant; power density rises.
    PostDennard,
}

impl ScalingRegime {
    /// Both regimes, classical first.
    pub const ALL: [ScalingRegime; 2] = [ScalingRegime::Classical, ScalingRegime::PostDennard];

    /// The per-transition factors this regime implies.
    pub fn shrink_factors(self) -> ShrinkFactors {
        match self {
            ScalingRegime::Classical => ShrinkFactors {
                area: 0.5,
                frequency: std::f64::consts::SQRT_2,
                power: 0.5,
                energy: 0.5 / std::f64::consts::SQRT_2, // 1/2.82
            },
            ScalingRegime::PostDennard => ShrinkFactors {
                area: 0.5,
                frequency: std::f64::consts::SQRT_2,
                power: 1.0,
                energy: 1.0 / std::f64::consts::SQRT_2, // 1/1.41
            },
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ScalingRegime::Classical => "classical (Dennard)",
            ScalingRegime::PostDennard => "post-Dennard",
        }
    }
}

impl fmt::Display for ScalingRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Multiplicative factors applied to a design when moving it one node
/// forward (same microarchitecture, same transistor count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShrinkFactors {
    /// Chip-area factor (0.5: the die halves).
    pub area: f64,
    /// Clock-frequency factor (≈ 1.41).
    pub frequency: f64,
    /// Power factor (0.5 classical, 1.0 post-Dennard).
    pub power: f64,
    /// Energy-per-work factor (`power / frequency`).
    pub energy: f64,
}

impl ShrinkFactors {
    /// Compounds the factors over `transitions` node transitions.
    #[must_use]
    pub fn over_transitions(&self, transitions: u32) -> ShrinkFactors {
        let n = transitions as i32;
        ShrinkFactors {
            area: self.area.powi(n),
            frequency: self.frequency.powi(n),
            power: self.power.powi(n),
            energy: self.energy.powi(n),
        }
    }
}

impl fmt::Display for ShrinkFactors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area x{:.3}, freq x{:.3}, power x{:.3}, energy x{:.3}",
            self.area, self.frequency, self.power, self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_factors_match_paper() {
        let f = ScalingRegime::Classical.shrink_factors();
        assert_eq!(f.area, 0.5);
        assert!((f.frequency - 1.41).abs() < 0.01);
        assert_eq!(f.power, 0.5);
        // Energy reduced by 2.82x.
        assert!((1.0 / f.energy - 2.82).abs() < 0.02);
    }

    #[test]
    fn post_dennard_factors_match_paper() {
        let f = ScalingRegime::PostDennard.shrink_factors();
        assert_eq!(f.area, 0.5);
        assert_eq!(f.power, 1.0);
        // Energy reduced by 1.41x.
        assert!((1.0 / f.energy - 1.41).abs() < 0.01);
    }

    #[test]
    fn energy_is_power_over_frequency_in_both_regimes() {
        for regime in ScalingRegime::ALL {
            let f = regime.shrink_factors();
            assert!((f.energy - f.power / f.frequency).abs() < 1e-12, "{regime}");
        }
    }

    #[test]
    fn factors_compound_over_transitions() {
        let f = ScalingRegime::Classical
            .shrink_factors()
            .over_transitions(2);
        assert_eq!(f.area, 0.25);
        assert!((f.frequency - 2.0).abs() < 1e-12);
        assert_eq!(f.power, 0.25);
        let id = ScalingRegime::PostDennard
            .shrink_factors()
            .over_transitions(0);
        assert_eq!(id.area, 1.0);
        assert_eq!(id.power, 1.0);
    }

    #[test]
    fn labels_distinguish_regimes() {
        assert_ne!(
            ScalingRegime::Classical.to_string(),
            ScalingRegime::PostDennard.to_string()
        );
    }
}
