//! Multi-node roadmap projections: cumulative shrink factors from a
//! starting node to every later node, in one table-ready structure.

use crate::dennard::{ScalingRegime, ShrinkFactors};
use crate::node::TechNode;
use crate::shrink::DieShrink;
use focal_core::{ModelError, Result};
use focal_wafer::ManufacturingTrend;
use std::fmt;

/// One row of a roadmap projection: the cumulative factors at a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadmapStep {
    /// The technology node.
    pub node: TechNode,
    /// Transitions from the roadmap's starting node.
    pub transitions: u32,
    /// Cumulative physical shrink factors (area/frequency/power/energy).
    pub factors: ShrinkFactors,
    /// Cumulative per-wafer manufacturing-footprint growth.
    pub wafer_footprint: f64,
    /// Cumulative *effective embodied* factor (area × wafer footprint).
    pub embodied: f64,
}

/// A projection of a design carried unchanged from `start` down the
/// roadmap.
///
/// # Examples
///
/// ```
/// use focal_scaling::{Roadmap, ScalingRegime, TechNode};
///
/// let roadmap = Roadmap::project(TechNode::N28, TechNode::N3, ScalingRegime::PostDennard)?;
/// let last = roadmap.steps().last().unwrap();
/// assert_eq!(last.transitions, 6);
/// assert!(last.embodied < 0.07); // 0.626^6
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Roadmap {
    regime: ScalingRegime,
    trend: ManufacturingTrend,
    steps: Vec<RoadmapStep>,
}

impl Roadmap {
    /// Projects from `start` to `end` (inclusive) under `regime` with the
    /// Imec manufacturing trend.
    ///
    /// # Errors
    ///
    /// Returns an error if `end` is not a later node than `start`.
    pub fn project(start: TechNode, end: TechNode, regime: ScalingRegime) -> Result<Self> {
        Roadmap::project_with_trend(start, end, regime, ManufacturingTrend::IMEC)
    }

    /// Like [`Roadmap::project`] with a custom manufacturing trend.
    ///
    /// # Errors
    ///
    /// Returns an error if `end` is not a later node than `start`.
    pub fn project_with_trend(
        start: TechNode,
        end: TechNode,
        regime: ScalingRegime,
        trend: ManufacturingTrend,
    ) -> Result<Self> {
        let Some(total) = start.transitions_to(end) else {
            return Err(ModelError::Inconsistent {
                constraint: "roadmap end node must not be older than the start node",
            });
        };
        let mut steps = Vec::new();
        let mut node = start;
        for t in 0..=total {
            let shrink = DieShrink::new(regime, trend, t);
            steps.push(RoadmapStep {
                node,
                transitions: t,
                factors: regime.shrink_factors().over_transitions(t),
                wafer_footprint: trend.wafer_footprint_node_factor(t),
                embodied: shrink.embodied_factor(),
            });
            if t < total {
                // focal-lint: allow(panic-freedom) -- `t < total` keeps the walk inside the roadmap
                node = node.next().expect("within the roadmap");
            }
        }
        Ok(Roadmap {
            regime,
            trend,
            steps,
        })
    }

    /// The scaling regime.
    pub fn regime(&self) -> ScalingRegime {
        self.regime
    }

    /// The projection rows, starting node first.
    pub fn steps(&self) -> &[RoadmapStep] {
        &self.steps
    }

    /// The node (if any) at which the cumulative embodied factor first
    /// drops below `threshold`.
    pub fn first_below_embodied(&self, threshold: f64) -> Option<TechNode> {
        self.steps
            .iter()
            .find(|s| s.embodied < threshold)
            .map(|s| s.node)
    }
}

impl fmt::Display for Roadmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "roadmap {} -> {} under {} scaling:",
            self.steps
                .first()
                .map(|s| s.node.to_string())
                .unwrap_or_default(),
            self.steps
                .last()
                .map(|s| s.node.to_string())
                .unwrap_or_default(),
            self.regime
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  {:>5}: area x{:.3}, wafer x{:.3}, embodied x{:.3}, freq x{:.2}, energy x{:.3}",
                s.node.to_string(),
                s.factors.area,
                s.wafer_footprint,
                s.embodied,
                s.factors.frequency,
                s.factors.energy
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_roadmap_has_seven_steps() {
        let r = Roadmap::project(TechNode::N28, TechNode::N3, ScalingRegime::PostDennard).unwrap();
        assert_eq!(r.steps().len(), 7);
        assert_eq!(r.steps()[0].node, TechNode::N28);
        assert_eq!(r.steps()[6].node, TechNode::N3);
        assert_eq!(r.steps()[0].transitions, 0);
        assert_eq!(r.steps()[6].transitions, 6);
    }

    #[test]
    fn first_step_is_identity() {
        let r = Roadmap::project(TechNode::N16, TechNode::N7, ScalingRegime::Classical).unwrap();
        let first = &r.steps()[0];
        assert_eq!(first.factors.area, 1.0);
        assert_eq!(first.wafer_footprint, 1.0);
        assert_eq!(first.embodied, 1.0);
    }

    #[test]
    fn embodied_compounds_per_transition() {
        let r = Roadmap::project(TechNode::N28, TechNode::N10, ScalingRegime::PostDennard).unwrap();
        let single: f64 = 0.5 * 1.252;
        for s in r.steps() {
            assert!((s.embodied - single.powi(s.transitions as i32)).abs() < 1e-9);
        }
    }

    #[test]
    fn backwards_roadmap_is_rejected() {
        assert!(Roadmap::project(TechNode::N3, TechNode::N28, ScalingRegime::Classical).is_err());
    }

    #[test]
    fn single_node_roadmap_is_allowed() {
        let r = Roadmap::project(TechNode::N7, TechNode::N7, ScalingRegime::Classical).unwrap();
        assert_eq!(r.steps().len(), 1);
    }

    #[test]
    fn first_below_embodied_threshold() {
        let r = Roadmap::project(TechNode::N28, TechNode::N3, ScalingRegime::PostDennard).unwrap();
        // 0.626^t < 0.25 first at t = 3 (0.245) → N10.
        assert_eq!(r.first_below_embodied(0.25), Some(TechNode::N10));
        assert_eq!(r.first_below_embodied(1e-9), None);
    }

    #[test]
    fn display_renders_every_node() {
        let r = Roadmap::project(TechNode::N28, TechNode::N16, ScalingRegime::Classical).unwrap();
        let s = r.to_string();
        assert!(s.contains("28nm") && s.contains("20nm") && s.contains("16nm"));
    }
}
