//! The CMOS technology-node roadmap the Imec analysis covers (28 nm down
//! to 3 nm).

use focal_core::{ModelError, Result};
use std::fmt;

/// A logic technology node on the 28 nm → 3 nm roadmap analyzed by
/// Imec \[16\] and referenced throughout §3.1 and §6 of the paper.
///
/// # Examples
///
/// ```
/// use focal_scaling::TechNode;
///
/// let now = TechNode::N7;
/// let next = now.next().unwrap();
/// assert_eq!(next, TechNode::N5);
/// assert_eq!(TechNode::N28.transitions_to(TechNode::N3), Some(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechNode {
    /// 28 nm planar.
    N28,
    /// 20 nm planar.
    N20,
    /// 16 nm FinFET.
    N16,
    /// 10 nm FinFET.
    N10,
    /// 7 nm FinFET (EUV introduction).
    N7,
    /// 5 nm FinFET/EUV.
    N5,
    /// 3 nm (gate-all-around era).
    N3,
}

impl TechNode {
    /// The full roadmap, oldest first.
    pub const ROADMAP: [TechNode; 7] = [
        TechNode::N28,
        TechNode::N20,
        TechNode::N16,
        TechNode::N10,
        TechNode::N7,
        TechNode::N5,
        TechNode::N3,
    ];

    /// The node's marketing feature size in nanometres.
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N28 => 28.0,
            TechNode::N20 => 20.0,
            TechNode::N16 => 16.0,
            TechNode::N10 => 10.0,
            TechNode::N7 => 7.0,
            TechNode::N5 => 5.0,
            TechNode::N3 => 3.0,
        }
    }

    /// Index on the roadmap (N28 = 0 … N3 = 6).
    fn index(self) -> usize {
        TechNode::ROADMAP
            .iter()
            .position(|&n| n == self)
            // focal-lint: allow(panic-freedom) -- ROADMAP enumerates every TechNode variant
            .expect("every node is on the roadmap")
    }

    /// The next (smaller) node, or `None` at the end of the roadmap.
    pub fn next(self) -> Option<TechNode> {
        TechNode::ROADMAP.get(self.index() + 1).copied()
    }

    /// The previous (larger) node, or `None` at the start.
    pub fn prev(self) -> Option<TechNode> {
        self.index().checked_sub(1).map(|i| TechNode::ROADMAP[i])
    }

    /// Number of forward transitions from `self` to `target`, or `None`
    /// if `target` is an older node.
    pub fn transitions_to(self, target: TechNode) -> Option<u32> {
        target.index().checked_sub(self.index()).map(|d| d as u32)
    }

    /// Parses a label like `"7nm"`, `"N7"` or `"7"`.
    ///
    /// # Errors
    ///
    /// Returns an error for unrecognized labels.
    pub fn parse(label: &str) -> Result<TechNode> {
        let trimmed = label
            .trim()
            .trim_start_matches(['n', 'N'])
            .trim_end_matches("nm");
        match trimmed {
            "28" => Ok(TechNode::N28),
            "20" => Ok(TechNode::N20),
            "16" => Ok(TechNode::N16),
            "10" => Ok(TechNode::N10),
            "7" => Ok(TechNode::N7),
            "5" => Ok(TechNode::N5),
            "3" => Ok(TechNode::N3),
            _ => Err(ModelError::OutOfRange {
                parameter: "technology node label",
                value: f64::NAN,
                expected: "one of 28/20/16/10/7/5/3 nm",
            }),
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roadmap_is_ordered_oldest_first() {
        let sizes: Vec<f64> = TechNode::ROADMAP.iter().map(|n| n.feature_nm()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(sizes, sorted);
        assert_eq!(TechNode::ROADMAP.len(), 7);
    }

    #[test]
    fn next_and_prev_walk_the_roadmap() {
        assert_eq!(TechNode::N28.next(), Some(TechNode::N20));
        assert_eq!(TechNode::N3.next(), None);
        assert_eq!(TechNode::N3.prev(), Some(TechNode::N5));
        assert_eq!(TechNode::N28.prev(), None);
    }

    #[test]
    fn transitions_count_forward_only() {
        assert_eq!(TechNode::N28.transitions_to(TechNode::N28), Some(0));
        assert_eq!(TechNode::N28.transitions_to(TechNode::N3), Some(6));
        assert_eq!(TechNode::N7.transitions_to(TechNode::N5), Some(1));
        assert_eq!(TechNode::N5.transitions_to(TechNode::N7), None);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!(TechNode::parse("7nm").unwrap(), TechNode::N7);
        assert_eq!(TechNode::parse("N7").unwrap(), TechNode::N7);
        assert_eq!(TechNode::parse("7").unwrap(), TechNode::N7);
        assert_eq!(TechNode::parse(" 28nm ").unwrap(), TechNode::N28);
        assert!(TechNode::parse("14nm").is_err());
        assert!(TechNode::parse("").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for node in TechNode::ROADMAP {
            assert_eq!(TechNode::parse(&node.to_string()).unwrap(), node);
        }
    }

    #[test]
    fn ordering_matches_roadmap_position() {
        assert!(TechNode::N28 < TechNode::N3);
        assert!(TechNode::N7 < TechNode::N5);
    }
}
