//! Die-shrink sustainability analysis (§6, Finding #17).
//!
//! Moving an existing design to the next node halves its area but makes
//! each wafer dirtier to produce (Imec: scope-2 +25.2 %, scope-1 +19.5 %
//! per transition). FOCAL folds the manufacturing growth into the embodied
//! proxy: `embodied ∝ area × wafer-footprint factor`.

use crate::dennard::ScalingRegime;
use focal_core::{DesignPoint, Result};
use focal_wafer::ManufacturingTrend;
use std::fmt;

/// A die-shrink: the same microarchitecture reimplemented `transitions`
/// nodes ahead under a scaling regime.
///
/// # Examples
///
/// ```
/// use focal_scaling::{DieShrink, ScalingRegime};
/// use focal_core::{classify, E2oWeight, Sustainability};
///
/// let shrink = DieShrink::next_node(ScalingRegime::PostDennard);
/// let (new, old) = shrink.design_points()?;
/// // Finding #17: a die shrink is strongly sustainable.
/// let c = classify(&new, &old, E2oWeight::EMBODIED_DOMINATED);
/// assert_eq!(c.class, Sustainability::Strongly);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieShrink {
    regime: ScalingRegime,
    trend: ManufacturingTrend,
    transitions: u32,
}

impl DieShrink {
    /// A single-transition shrink with the Imec manufacturing trend.
    pub fn next_node(regime: ScalingRegime) -> Self {
        DieShrink {
            regime,
            trend: ManufacturingTrend::IMEC,
            transitions: 1,
        }
    }

    /// A multi-transition shrink with a custom manufacturing trend.
    pub fn new(regime: ScalingRegime, trend: ManufacturingTrend, transitions: u32) -> Self {
        DieShrink {
            regime,
            trend,
            transitions,
        }
    }

    /// The scaling regime.
    pub fn regime(&self) -> ScalingRegime {
        self.regime
    }

    /// Number of node transitions.
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// The *effective embodied factor*: chip-area factor × per-wafer
    /// manufacturing-footprint growth. For one post-/classical transition
    /// with Imec numbers: `0.5 × 1.252 = 0.626` — the paper's "0.625".
    pub fn embodied_factor(&self) -> f64 {
        let area = self
            .regime
            .shrink_factors()
            .over_transitions(self.transitions)
            .area;
        area * self.trend.wafer_footprint_node_factor(self.transitions)
    }

    /// The power factor (fixed-time operational proxy).
    pub fn power_factor(&self) -> f64 {
        self.regime
            .shrink_factors()
            .over_transitions(self.transitions)
            .power
    }

    /// The energy factor (fixed-work operational proxy).
    pub fn energy_factor(&self) -> f64 {
        self.regime
            .shrink_factors()
            .over_transitions(self.transitions)
            .energy
    }

    /// The performance factor (clock-frequency gain).
    pub fn performance_factor(&self) -> f64 {
        self.regime
            .shrink_factors()
            .over_transitions(self.transitions)
            .frequency
    }

    /// `(new, old)` design points for NCF evaluation. The "area" axis of
    /// the new design carries the *effective embodied factor* (area ×
    /// manufacturing growth), which is how FOCAL compares embodied
    /// footprints across technology nodes.
    ///
    /// # Errors
    ///
    /// Never fails for valid configurations; guards the `DesignPoint`
    /// constructor invariants.
    pub fn design_points(&self) -> Result<(DesignPoint, DesignPoint)> {
        let old = DesignPoint::reference();
        let new = DesignPoint::from_raw(
            self.embodied_factor(),
            self.power_factor(),
            self.energy_factor(),
            self.performance_factor(),
        )?;
        Ok((new, old))
    }
}

impl fmt::Display for DieShrink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "die shrink x{} transitions under {} scaling",
            self.transitions, self.regime
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::{classify, E2oWeight, Ncf, Scenario, Sustainability};

    #[test]
    fn embodied_factor_matches_paper_case_study() {
        // "the embodied carbon footprint of the 4-core option in the new
        // technology node equals 0.625, i.e. chip area halves but the
        // manufacturing footprint increases by 25.2%."
        let s = DieShrink::next_node(ScalingRegime::PostDennard);
        assert!((s.embodied_factor() - 0.626).abs() < 0.001);
    }

    /// Finding #17: a die shrink is strongly sustainable under both
    /// regimes and both α scenarios.
    #[test]
    fn finding17_die_shrink_strongly_sustainable() {
        for regime in ScalingRegime::ALL {
            let (new, old) = DieShrink::next_node(regime).design_points().unwrap();
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                let c = classify(&new, &old, alpha);
                assert!(
                    matches!(
                        c.class,
                        Sustainability::Strongly | Sustainability::Indifferent
                    ),
                    "{regime} α={alpha}: {:?}",
                    c.class
                );
            }
        }
    }

    #[test]
    fn classical_shrink_is_strict_everywhere() {
        let (new, old) = DieShrink::next_node(ScalingRegime::Classical)
            .design_points()
            .unwrap();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            assert_eq!(classify(&new, &old, alpha).class, Sustainability::Strongly);
        }
    }

    #[test]
    fn post_dennard_fixed_time_operational_is_flat() {
        // Post-Dennard: power constant ⇒ the fixed-time operational ratio
        // is exactly 1; the shrink still wins on embodied.
        let s = DieShrink::next_node(ScalingRegime::PostDennard);
        let (new, old) = s.design_points().unwrap();
        let ncf = Ncf::evaluate(&new, &old, Scenario::FixedTime, E2oWeight::BALANCED);
        assert!((ncf.operational_ratio() - 1.0).abs() < 1e-12);
        assert!(ncf.value() < 1.0);
    }

    #[test]
    fn multi_transition_compounds() {
        let s1 = DieShrink::new(ScalingRegime::Classical, ManufacturingTrend::IMEC, 1);
        let s2 = DieShrink::new(ScalingRegime::Classical, ManufacturingTrend::IMEC, 2);
        assert!((s2.embodied_factor() - s1.embodied_factor().powi(2)).abs() < 1e-12);
        assert!((s2.performance_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_transitions_is_identity() {
        let s = DieShrink::new(ScalingRegime::PostDennard, ManufacturingTrend::IMEC, 0);
        assert_eq!(s.embodied_factor(), 1.0);
        assert_eq!(s.power_factor(), 1.0);
        assert_eq!(s.energy_factor(), 1.0);
    }

    #[test]
    fn greener_fabs_would_amplify_the_win() {
        // If manufacturing stopped getting dirtier (0% growth), the
        // embodied factor would be the pure area halving.
        let flat = ManufacturingTrend::new(0.0, 0.0, 0.0, 0.0).unwrap();
        let s = DieShrink::new(ScalingRegime::PostDennard, flat, 1);
        assert_eq!(s.embodied_factor(), 0.5);
    }

    #[test]
    fn display_mentions_regime() {
        let s = DieShrink::next_node(ScalingRegime::Classical);
        assert!(s.to_string().contains("classical"));
    }
}
