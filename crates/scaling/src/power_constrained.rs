//! Iso-power frequency scaling for power-constrained designs (§7).
//!
//! Modern processors are power-limited: when a new node packs more cores,
//! the clock must drop so total power stays within the old budget. The
//! paper's case study assumes the new node clocks 1.41× higher at
//! iso-power for the *same* core count (post-Dennard), and derives lower
//! boosts for larger core counts — "from being 1.41× higher for 4 cores
//! … to being 1.24× higher for 8 cores".

use focal_core::{ModelError, Result};

/// Solves the iso-power frequency for a power-constrained die shrink.
///
/// ## Model
///
/// Let `relative_power` be the new configuration's power draw relative to
/// the budget configuration *at equal frequency* (e.g. the Woo–Lee
/// multicore power ratio `P(n)/P(4)`), and let `iso_power_frequency_gain`
/// be the frequency boost the new node affords at the same power (1.41
/// under post-Dennard). With dynamic power cubic in frequency, the
/// achievable frequency factor `φ` satisfies
///
/// ```text
/// relative_power · (φ / gain)³ = 1
/// φ = gain · relative_power^(−1/3)
/// ```
///
/// # Errors
///
/// Returns an error if either argument is not strictly positive and
/// finite.
///
/// # Examples
///
/// ```
/// use focal_scaling::iso_power_frequency;
///
/// // Same core count: full 1.41x boost.
/// assert!((iso_power_frequency(1.0, 1.41)? - 1.41).abs() < 1e-12);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn iso_power_frequency(relative_power: f64, iso_power_frequency_gain: f64) -> Result<f64> {
    for (name, v) in [
        ("relative power", relative_power),
        ("iso-power frequency gain", iso_power_frequency_gain),
    ] {
        if !v.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: name,
                value: v,
            });
        }
        if v <= 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: name,
                value: v,
                expected: "(0, +inf)",
            });
        }
    }
    Ok(iso_power_frequency_gain * relative_power.powf(-1.0 / 3.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};

    #[test]
    fn unit_power_gets_full_boost() {
        let phi = iso_power_frequency(1.0, std::f64::consts::SQRT_2).unwrap();
        assert!((phi - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn doubling_power_costs_cube_root_of_two() {
        let phi = iso_power_frequency(2.0, 1.0).unwrap();
        assert!((phi - 0.5_f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    /// Reproduces the paper's §7 statement: with Woo–Lee power at f = 0.75
    /// and γ = 0.2, the achievable frequency falls from 1.41× (4 cores) to
    /// ≈ 1.24× (8 cores).
    #[test]
    fn paper_case_study_frequencies() {
        let f = ParallelFraction::new(0.75).unwrap();
        let gamma = LeakageFraction::PAPER;
        let pollack = PollackRule::CLASSIC;
        let p4 = SymmetricMulticore::unit_cores(4)
            .unwrap()
            .power(f, gamma, pollack);
        let phi = |n: u32| {
            let pn = SymmetricMulticore::unit_cores(n)
                .unwrap()
                .power(f, gamma, pollack);
            iso_power_frequency(pn / p4, std::f64::consts::SQRT_2).unwrap()
        };
        assert!((phi(4) - 1.414).abs() < 0.001);
        assert!((phi(8) - 1.24).abs() < 0.01, "got {}", phi(8));
        // Monotone decline in between.
        let mut prev = f64::INFINITY;
        for n in 4..=8 {
            let p = phi(n);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(iso_power_frequency(0.0, 1.41).is_err());
        assert!(iso_power_frequency(1.0, 0.0).is_err());
        assert!(iso_power_frequency(f64::NAN, 1.0).is_err());
    }
}
