//! # focal-scaling — technology nodes, Dennard scaling, die shrinks
//!
//! The technology-scaling substrate of the die-shrink analysis (§6) and
//! the sustainable-multicore case study (§7):
//!
//! * [`TechNode`] — the 28 nm → 3 nm roadmap.
//! * [`ScalingRegime`] / [`ShrinkFactors`] — classical (Dennard) vs.
//!   post-Dennard per-transition factors (area ×0.5, frequency ×1.41,
//!   power ×0.5 or ×1.0).
//! * [`DieShrink`] — folds the Imec manufacturing growth into the embodied
//!   proxy and reproduces Finding #17.
//! * [`iso_power_frequency`] — the power-constrained clock model behind
//!   Figure 9's 1.41× → 1.24× frequency range.
//!
//! ## Example
//!
//! ```
//! use focal_scaling::{DieShrink, ScalingRegime};
//!
//! let shrink = DieShrink::next_node(ScalingRegime::PostDennard);
//! // Area halves, wafers get 25.2% dirtier: net embodied x0.626.
//! assert!((shrink.embodied_factor() - 0.626).abs() < 0.001);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod dennard;
mod node;
mod power_constrained;
mod roadmap;
mod shrink;

pub use dennard::{ScalingRegime, ShrinkFactors};
pub use node::TechNode;
pub use power_constrained::iso_power_frequency;
pub use roadmap::{Roadmap, RoadmapStep};
pub use shrink::DieShrink;
