//! Differential tests for the two perf layers added by the SoA/memo PR:
//!
//! 1. The vectorized (struct-of-arrays, lockstep-RNG) Monte-Carlo kernel
//!    must be **bit-identical** to the pinned scalar oracle
//!    ([`MonteCarloNcf::run_scalar_on`]) — same draw stream, same sorted
//!    sample multiset, same summary — at every thread count and sample
//!    count, including tails and sub-chunk runs.
//! 2. The memoized sweep variants must return exactly what their
//!    unmemoized twins return, on cold and warm caches alike.

use focal_core::{
    alpha_crossover_batch, alpha_crossover_batch_memo, classify_over_range_memo_on,
    classify_over_range_on, DesignPoint, E2oRange, MonteCarloNcf, Scenario, SweepMemo,
    MC_CHUNK_SAMPLES, MC_GROUP_CHUNKS,
};
use focal_engine::Engine;
use proptest::prelude::*;

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    (0.05f64..20.0, 0.05f64..20.0, 0.05f64..20.0, 0.05f64..20.0)
        .prop_map(|(a, p, e, s)| DesignPoint::from_raw(a, p, e, s).expect("positive axes"))
}

/// Sample counts that exercise every kernel shape: sub-chunk runs, exact
/// chunk/unit boundaries, tails just past a boundary, and the suite's own
/// uneven configuration.
fn interesting_samples() -> impl Strategy<Value = usize> {
    (0usize..10, 1usize..2 * MC_CHUNK_SAMPLES).prop_map(|(pick, fuzz)| match pick {
        0 => 1,
        1 => 2,
        2 => 7,
        3 => MC_CHUNK_SAMPLES - 1,
        4 => MC_CHUNK_SAMPLES,
        5 => MC_CHUNK_SAMPLES + 1,
        6 => 2 * MC_CHUNK_SAMPLES + 257,
        7 => MC_GROUP_CHUNKS * MC_CHUNK_SAMPLES,
        8 => MC_GROUP_CHUNKS * MC_CHUNK_SAMPLES + 511,
        _ => fuzz,
    })
}

fn sorted_bits(mut values: Vec<f64>) -> Vec<u64> {
    values.sort_by(|a, b| a.total_cmp(b));
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// The SoA kernel and the scalar oracle draw the same stream: the
    /// sorted sample multiset is bit-identical and the summaries are
    /// equal, at 1, 2 and 7 threads (7 never divides the unit count, so
    /// work stealing is exercised).
    #[test]
    fn soa_kernel_is_bit_identical_to_scalar_oracle(
        x in arb_design(),
        seed in any::<u64>(),
        samples in interesting_samples(),
        jitter in 0.0f64..0.5,
    ) {
        let y = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::FULL, jitter, seed).expect("jitter in [0, 1)");
        let serial = Engine::serial();
        let oracle = mc
            .run_scalar_on(&serial, &x, &y, Scenario::FixedWork, samples)
            .expect("samples >= 1");
        let oracle_bits = sorted_bits(
            mc.sample_values_scalar_on(&serial, &x, &y, Scenario::FixedWork, samples)
                .expect("samples >= 1"),
        );
        for threads in [1usize, 2, 7] {
            let engine = Engine::with_threads(threads);
            let soa = mc
                .run_on(&engine, &x, &y, Scenario::FixedWork, samples)
                .expect("samples >= 1");
            prop_assert_eq!(&soa, &oracle, "summary diverges at {} threads", threads);
            let soa_bits = sorted_bits(
                mc.sample_values_on(&engine, &x, &y, Scenario::FixedWork, samples)
                    .expect("samples >= 1"),
            );
            prop_assert_eq!(&soa_bits, &oracle_bits, "sample multiset diverges at {} threads", threads);
        }
    }

    /// Memoized variants are pure caches: cold call, warm call and
    /// unmemoized call all agree exactly.
    #[test]
    fn memo_variants_match_unmemoized_cold_and_warm(
        x in arb_design(),
        y in arb_design(),
        seed in any::<u64>(),
    ) {
        let engine = Engine::serial();
        let mut memo = SweepMemo::new();

        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, seed).expect("valid jitter");
        let samples = 2 * MC_CHUNK_SAMPLES + 257;
        let plain = mc.run_on(&engine, &x, &y, Scenario::FixedWork, samples).expect("runs");
        let cold = mc
            .run_memo_on(&engine, &x, &y, Scenario::FixedWork, samples, &mut memo)
            .expect("runs");
        let warm = mc
            .run_memo_on(&engine, &x, &y, Scenario::FixedWork, samples, &mut memo)
            .expect("runs");
        prop_assert_eq!(&cold, &plain);
        prop_assert_eq!(&warm, &plain);
        prop_assert_eq!(memo.stats().mc.hits, 1);

        let plain = classify_over_range_on(&engine, &x, &y, E2oRange::FULL, 31).expect("runs");
        let cold =
            classify_over_range_memo_on(&engine, &x, &y, E2oRange::FULL, 31, &mut memo)
                .expect("runs");
        let warm =
            classify_over_range_memo_on(&engine, &x, &y, E2oRange::FULL, 31, &mut memo)
                .expect("runs");
        prop_assert_eq!(&cold, &plain);
        prop_assert_eq!(&warm, &plain);

        let pairs = [(x, y), (y, x), (x, y)];
        for scenario in [Scenario::FixedWork, Scenario::FixedTime] {
            let plain = alpha_crossover_batch(&engine, &pairs, scenario);
            let cold = alpha_crossover_batch_memo(&engine, &pairs, scenario, &mut memo);
            let warm = alpha_crossover_batch_memo(&engine, &pairs, scenario, &mut memo);
            prop_assert_eq!(&cold, &plain);
            prop_assert_eq!(&warm, &plain);
        }
    }

    /// Overlapping α grids reuse cached points: a denser grid over the
    /// same range only misses on the new points, and still matches the
    /// unmemoized result.
    #[test]
    fn overlapping_grids_share_cached_points(x in arb_design(), y in arb_design()) {
        let engine = Engine::serial();
        let mut memo = SweepMemo::new();
        classify_over_range_memo_on(&engine, &x, &y, E2oRange::FULL, 11, &mut memo)
            .expect("runs");
        let misses_after_coarse = memo.stats().classify.misses;
        // The 21-point FULL grid contains every 11-point grid value.
        let fine =
            classify_over_range_memo_on(&engine, &x, &y, E2oRange::FULL, 21, &mut memo)
                .expect("runs");
        let plain = classify_over_range_on(&engine, &x, &y, E2oRange::FULL, 21).expect("runs");
        prop_assert_eq!(&fine, &plain);
        let stats = memo.stats().classify;
        prop_assert!(stats.hits >= 11, "coarse grid points should all hit, got {:?}", stats);
        prop_assert!(
            stats.misses - misses_after_coarse <= 10,
            "only the new fine-grid points may miss, got {:?}",
            stats
        );
    }
}

/// `samples == 1`: one value is every order statistic, and the unbiased
/// std-dev denominator `n - 1` must degrade to 0, not NaN.
#[test]
fn mc_summary_with_one_sample_collapses_all_percentiles() {
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).expect("valid");
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 9).expect("valid jitter");
    let s = mc
        .run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, 1)
        .expect("one sample is allowed");
    assert_eq!(s.samples, 1);
    assert_eq!(s.std_dev, 0.0);
    for v in [s.min, s.max, s.p05, s.p50, s.p95] {
        assert_eq!(v.to_bits(), s.mean.to_bits());
    }
    assert!(s.prob_reduction == 0.0 || s.prob_reduction == 1.0);
}

/// `samples == 2`: the nearest-rank index `round(p * (n-1))` puts p05 on
/// the smaller value and both p50 and p95 on the larger.
#[test]
fn mc_summary_with_two_samples_uses_nearest_rank_percentiles() {
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).expect("valid");
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 9).expect("valid jitter");
    let s = mc
        .run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, 2)
        .expect("two samples are allowed");
    assert_eq!(s.samples, 2);
    assert!(s.min <= s.max);
    assert_eq!(s.p05.to_bits(), s.min.to_bits());
    assert_eq!(s.p50.to_bits(), s.max.to_bits());
    assert_eq!(s.p95.to_bits(), s.max.to_bits());
    assert_eq!(s.mean.to_bits(), ((s.min + s.max) / 2.0).to_bits());
}
