//! Fault injection against the Monte-Carlo sampler.
//!
//! These tests arm the process-global fault plan, so they live in their
//! own integration-test binary (nothing else in this process evaluates
//! the model while a plan is armed) and serialize among themselves with
//! a file-local lock.

use focal_core::{DesignPoint, E2oRange, ModelError, MonteCarloNcf, Scenario, MC_CHUNK_SAMPLES};
use focal_engine::{fault, Engine, FaultPlan};
use std::sync::{Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn injected_nan_trips_the_finiteness_tripwire_identically_at_every_thread_count() {
    let _guard = lock();
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 7).unwrap();
    let samples = MC_CHUNK_SAMPLES + 500;

    fault::arm(FaultPlan::parse("nan@mc:1017").unwrap());
    let errors: Vec<ModelError> = [1, 2, 7]
        .iter()
        .map(|&threads| {
            mc.run_on(
                &Engine::with_threads(threads),
                &x,
                &y,
                Scenario::FixedWork,
                samples,
            )
            .unwrap_err()
        })
        .collect();
    fault::disarm();

    // `ModelError`'s derived equality is useless here (NaN != NaN), so
    // compare the rendered diagnostics — the part a user would repro from.
    for err in &errors {
        assert_eq!(
            errors.first().map(ToString::to_string),
            Some(err.to_string()),
            "error not thread-invariant"
        );
        match err {
            ModelError::NonFiniteOutput { context, value } => {
                assert!(context.contains("sample 1017"), "{context}");
                assert!(context.contains("chunk 0"), "{context}");
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteOutput, got {other}"),
        }
    }

    // Disarmed, the same experiment succeeds again: injection leaves no
    // residue in the sampler or the engine.
    assert!(mc
        .run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, samples)
        .is_ok());
}

#[test]
fn nan_injection_outside_the_drawn_range_is_inert() {
    let _guard = lock();
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 7).unwrap();

    fault::arm(FaultPlan::parse("nan@mc:999999").unwrap());
    let armed = mc.run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, 1000);
    fault::disarm();
    let clean = mc
        .run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, 1000)
        .unwrap();

    // A plan whose index is never drawn must not perturb the samples.
    assert_eq!(armed.unwrap(), clean);
}

#[test]
fn injected_chunk_panic_surfaces_as_chunk_poisoned() {
    let _guard = lock();
    let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
    let y = DesignPoint::reference();
    let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 40).unwrap();
    let samples = 3 * MC_CHUNK_SAMPLES;

    fault::arm(FaultPlan::parse("panic@mc-test:2").unwrap());
    fault::enter_site("mc-test");
    let err = mc
        .run_on(
            &Engine::with_threads(4),
            &x,
            &y,
            Scenario::FixedWork,
            samples,
        )
        .unwrap_err();
    fault::leave_site();
    fault::disarm();

    match err {
        ModelError::ChunkPoisoned {
            chunk_index,
            chunk_seed,
            payload,
        } => {
            assert_eq!(chunk_index, 2);
            assert_eq!(chunk_seed, 42); // base seed 40 + chunk 2
            assert!(payload.contains("panic@mc-test:2"), "{payload}");
        }
        other => panic!("expected ChunkPoisoned, got {other}"),
    }
}
