//! Property-based tests of focal-core invariants, run in-crate (the
//! facade's `tests/` covers cross-crate properties).

use focal_core::{
    alpha_crossover, classify_over_range, deployment_adjusted_weight, lifetime_adjusted_weight,
    AlphaCrossover, DesignPoint, E2oRange, E2oWeight, Ncf, NcfBand, Scenario,
};
use proptest::prelude::*;

fn arb_design() -> impl Strategy<Value = DesignPoint> {
    (0.05f64..20.0, 0.05f64..20.0, 0.05f64..20.0, 0.05f64..20.0)
        .prop_map(|(a, p, e, s)| DesignPoint::from_raw(a, p, e, s).expect("positive axes"))
}

proptest! {
    /// NcfBand's min/max really are the extrema over a dense α grid.
    #[test]
    fn band_extrema_are_tight(x in arb_design(), y in arb_design()) {
        for range in [E2oRange::EMBODIED_DOMINATED, E2oRange::OPERATIONAL_DOMINATED, E2oRange::FULL] {
            for scenario in Scenario::ALL {
                let band = NcfBand::evaluate(&x, &y, scenario, range);
                for alpha in range.grid(33).expect("33 >= 2") {
                    let v = Ncf::evaluate(&x, &y, scenario, alpha).value();
                    prop_assert!(v >= band.min() - 1e-9);
                    prop_assert!(v <= band.max() + 1e-9);
                }
            }
        }
    }

    /// The α crossover is consistent with direct evaluation: on the
    /// winning side NCF < 1, on the losing side NCF > 1.
    #[test]
    fn crossover_sides_are_correct(x in arb_design(), y in arb_design()) {
        for scenario in Scenario::ALL {
            match alpha_crossover(&x, &y, scenario) {
                AlphaCrossover::At { alpha, wins_below } => {
                    let eps = 1e-6;
                    if alpha.get() > eps {
                        let below = Ncf::evaluate(
                            &x, &y, scenario, E2oWeight::new(alpha.get() - eps).unwrap()
                        ).value();
                        prop_assert_eq!(below < 1.0, wins_below);
                    }
                    if alpha.get() < 1.0 - eps {
                        let above = Ncf::evaluate(
                            &x, &y, scenario, E2oWeight::new(alpha.get() + eps).unwrap()
                        ).value();
                        prop_assert_eq!(above < 1.0, !wins_below);
                    }
                }
                AlphaCrossover::AlwaysBelow => {
                    for a in [0.0, 0.5, 1.0] {
                        let v = Ncf::evaluate(&x, &y, scenario, E2oWeight::new(a).unwrap()).value();
                        prop_assert!(v <= 1.0 + 1e-9);
                    }
                }
                AlphaCrossover::AlwaysAbove => {
                    for a in [0.0, 0.5, 1.0] {
                        let v = Ncf::evaluate(&x, &y, scenario, E2oWeight::new(a).unwrap()).value();
                        prop_assert!(v >= 1.0 - 1e-9);
                    }
                }
                AlphaCrossover::AlwaysOne => {
                    let v = Ncf::evaluate(&x, &y, scenario, E2oWeight::BALANCED).value();
                    prop_assert!((v - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    /// Verdict flips over α happen at most twice across the full range
    /// (NCF is affine in α per scenario, so each scenario contributes at
    /// most one sign change).
    #[test]
    fn at_most_two_verdict_changes_over_alpha(x in arb_design(), y in arb_design()) {
        let robust = classify_over_range(&x, &y, E2oRange::FULL, 201).expect("201 >= 2");
        let mut changes = 0;
        for w in robust.per_alpha.windows(2) {
            if w[0].1 != w[1].1 {
                changes += 1;
            }
        }
        prop_assert!(changes <= 2, "saw {changes} verdict changes");
    }

    /// Rebound weight adjustments are monotone in their factor and
    /// compose: deployment(k1) then deployment(k2) = deployment(k1·k2).
    #[test]
    fn weight_adjustments_compose(
        alpha in 0.01f64..0.99,
        k1 in 0.1f64..10.0,
        k2 in 0.1f64..10.0,
    ) {
        let w = E2oWeight::new(alpha).unwrap();
        let sequential =
            deployment_adjusted_weight(deployment_adjusted_weight(w, k1).unwrap(), k2).unwrap();
        let combined = deployment_adjusted_weight(w, k1 * k2).unwrap();
        prop_assert!((sequential.get() - combined.get()).abs() < 1e-12);

        // Lifetime is the inverse channel.
        let via_lifetime = lifetime_adjusted_weight(w, 1.0 / k1).unwrap();
        let via_deployment = deployment_adjusted_weight(w, k1).unwrap();
        prop_assert!((via_lifetime.get() - via_deployment.get()).abs() < 1e-12);
    }

    /// Normalizing X to Y then evaluating against the unit reference gives
    /// the same NCF as evaluating X against Y directly.
    #[test]
    fn normalization_commutes_with_ncf(
        x in arb_design(),
        y in arb_design(),
        alpha in 0.0f64..=1.0,
    ) {
        let w = E2oWeight::new(alpha).unwrap();
        let normalized = x.normalized_to(&y).unwrap();
        for scenario in Scenario::ALL {
            let direct = Ncf::evaluate(&x, &y, scenario, w).value();
            let via_norm =
                Ncf::evaluate(&normalized, &DesignPoint::reference(), scenario, w).value();
            prop_assert!((direct - via_norm).abs() < 1e-9 * direct.max(1.0));
        }
    }
}
