//! Design points: the (area, power, energy, performance) tuples that NCF
//! compares.

use crate::error::{ensure_positive, Result};
use crate::quantity::{Energy, Performance, Power, SiliconArea};
use std::fmt;

/// A processor design characterized by the four quantities the FOCAL model
/// needs: chip area (embodied proxy), average power (fixed-time operational
/// proxy), energy per unit of work (fixed-work operational proxy), and
/// performance.
///
/// Energy, power and performance are linked for a fixed amount of work:
/// `energy = power / performance`. The [`DesignPoint::from_power_perf`]
/// constructor derives energy from that identity; [`DesignPoint::new`]
/// accepts all four explicitly and verifies consistency only in debug
/// builds, because some published data points (e.g. the branch-predictor
/// study) quote independently-measured energy and power.
///
/// # Examples
///
/// ```
/// use focal_core::DesignPoint;
///
/// // A design with 39% more area, 2.32x the power and 1.75x the performance
/// // of the baseline (the paper's OoO core vs. InO, §5.6).
/// let ooo = DesignPoint::from_power_perf(1.39, 2.32, 1.75)?;
/// assert!((ooo.energy().get() - 2.32 / 1.75).abs() < 1e-12);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    area: SiliconArea,
    power: Power,
    energy: Energy,
    performance: Performance,
}

impl DesignPoint {
    /// Creates a design point from all four quantities.
    ///
    /// Use this when energy and power come from independent measurements;
    /// otherwise prefer [`DesignPoint::from_power_perf`], which derives
    /// energy from the fixed-work identity.
    pub fn new(area: SiliconArea, power: Power, energy: Energy, performance: Performance) -> Self {
        DesignPoint {
            area,
            power,
            energy,
            performance,
        }
    }

    /// Creates a design point from raw relative values, deriving energy as
    /// `power / performance` (one unit of work).
    ///
    /// # Errors
    ///
    /// Returns an error if any argument is not strictly positive and finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use focal_core::DesignPoint;
    /// let baseline = DesignPoint::from_power_perf(1.0, 1.0, 1.0)?;
    /// assert_eq!(baseline.energy().get(), 1.0);
    /// # Ok::<(), focal_core::ModelError>(())
    /// ```
    pub fn from_power_perf(area: f64, power: f64, performance: f64) -> Result<Self> {
        let area = SiliconArea::from_mm2(area)?;
        let power = Power::from_watts(power)?;
        let performance = Performance::from_speedup(performance)?;
        let energy = power / performance;
        Ok(DesignPoint {
            area,
            power,
            energy,
            performance,
        })
    }

    /// Creates a design point from raw relative values for all four axes.
    ///
    /// # Errors
    ///
    /// Returns an error if any argument is not strictly positive and finite.
    pub fn from_raw(area: f64, power: f64, energy: f64, performance: f64) -> Result<Self> {
        Ok(DesignPoint {
            area: SiliconArea::from_mm2(area)?,
            power: Power::from_watts(power)?,
            energy: Energy::from_joules(energy)?,
            performance: Performance::from_speedup(performance)?,
        })
    }

    /// The unit baseline design: area = power = energy = performance = 1.
    ///
    /// Studies normalize their comparisons to this design (the paper's
    /// "one-BCE single-core processor").
    pub fn reference() -> Self {
        // focal-lint: allow(panic-freedom) -- the all-ones literal design is trivially valid
        DesignPoint::from_raw(1.0, 1.0, 1.0, 1.0).expect("unit design is valid")
    }

    /// Chip area (embodied-footprint proxy).
    #[inline]
    pub fn area(&self) -> SiliconArea {
        self.area
    }

    /// Average power (fixed-time operational proxy).
    #[inline]
    pub fn power(&self) -> Power {
        self.power
    }

    /// Energy per unit of work (fixed-work operational proxy).
    #[inline]
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Performance (speedup relative to the study's reference design).
    #[inline]
    pub fn performance(&self) -> Performance {
        self.performance
    }

    /// Returns a copy with the area scaled by `factor` (e.g. to add an
    /// accelerator's 6.5 % area overhead: `design.with_area_scaled(1.065)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` is not strictly positive and finite.
    pub fn with_area_scaled(&self, factor: f64) -> Result<Self> {
        let factor = ensure_positive("area scale factor", factor)?;
        Ok(DesignPoint {
            area: self.area.scaled(factor),
            ..*self
        })
    }

    /// Returns a copy with power and energy scaled by `factor` (performance
    /// unchanged), e.g. to model a fixed-frequency power-saving feature.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` is not strictly positive and finite.
    pub fn with_operational_scaled(&self, factor: f64) -> Result<Self> {
        let factor = ensure_positive("operational scale factor", factor)?;
        Ok(DesignPoint {
            power: self.power.scaled(factor),
            energy: self.energy.scaled(factor),
            ..*self
        })
    }

    /// Normalizes this design point to `baseline`, returning a design point
    /// whose four axes are the dimensionless ratios `self / baseline`.
    ///
    /// # Examples
    ///
    /// ```
    /// use focal_core::DesignPoint;
    /// let x = DesignPoint::from_raw(8.0, 4.0, 2.0, 2.0)?;
    /// let y = DesignPoint::from_raw(4.0, 2.0, 1.0, 1.0)?;
    /// let n = x.normalized_to(&y)?;
    /// assert_eq!(n.area().get(), 2.0);
    /// assert_eq!(n.performance().get(), 2.0);
    /// # Ok::<(), focal_core::ModelError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Never fails for valid design points; the `Result` guards against
    /// ratios degenerating through extreme magnitudes.
    pub fn normalized_to(&self, baseline: &DesignPoint) -> Result<Self> {
        DesignPoint::from_raw(
            self.area / baseline.area,
            self.power / baseline.power,
            self.energy / baseline.energy,
            self.performance / baseline.performance,
        )
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DesignPoint(area={}, power={}, energy={}, perf={})",
            self.area, self.power, self.energy, self.performance
        )
    }
}

/// Incremental builder for [`DesignPoint`], convenient when a study derives
/// the four axes in separate steps.
///
/// Unset power/energy default to being derived from each other through the
/// fixed-work identity once performance is known; unset area defaults to 1.
///
/// # Examples
///
/// ```
/// use focal_core::DesignPointBuilder;
///
/// let d = DesignPointBuilder::new()
///     .area(1.065)
///     .power(0.5)
///     .performance(1.0)
///     .build()?;
/// assert_eq!(d.energy().get(), 0.5);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DesignPointBuilder {
    area: Option<f64>,
    power: Option<f64>,
    energy: Option<f64>,
    performance: Option<f64>,
}

impl DesignPointBuilder {
    /// Creates a builder with no axes set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative chip area (default 1).
    #[must_use]
    pub fn area(mut self, area: f64) -> Self {
        self.area = Some(area);
        self
    }

    /// Sets the relative average power.
    #[must_use]
    pub fn power(mut self, power: f64) -> Self {
        self.power = Some(power);
        self
    }

    /// Sets the relative energy per unit of work.
    #[must_use]
    pub fn energy(mut self, energy: f64) -> Self {
        self.energy = Some(energy);
        self
    }

    /// Sets the relative performance (default 1).
    #[must_use]
    pub fn performance(mut self, performance: f64) -> Self {
        self.performance = Some(performance);
        self
    }

    /// Builds the design point, deriving whichever of power/energy was not
    /// provided from the other via `energy = power / performance`.
    ///
    /// # Errors
    ///
    /// Returns an error if neither power nor energy was provided, or if any
    /// value fails validation.
    pub fn build(self) -> Result<DesignPoint> {
        let area = self.area.unwrap_or(1.0);
        let performance = self.performance.unwrap_or(1.0);
        let (power, energy) = match (self.power, self.energy) {
            (Some(p), Some(e)) => (p, e),
            (Some(p), None) => (p, p / performance),
            (None, Some(e)) => (e * performance, e),
            (None, None) => {
                return Err(crate::ModelError::Inconsistent {
                    constraint: "a design point needs at least one of power or energy",
                })
            }
        };
        DesignPoint::from_raw(area, power, energy, performance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_power_perf_derives_energy() {
        let d = DesignPoint::from_power_perf(1.0, 6.0, 3.0).unwrap();
        assert_eq!(d.energy().get(), 2.0);
    }

    #[test]
    fn reference_is_unit() {
        let r = DesignPoint::reference();
        assert_eq!(r.area().get(), 1.0);
        assert_eq!(r.power().get(), 1.0);
        assert_eq!(r.energy().get(), 1.0);
        assert_eq!(r.performance().get(), 1.0);
    }

    #[test]
    fn with_area_scaled_only_touches_area() {
        let d = DesignPoint::from_power_perf(1.0, 2.0, 2.0).unwrap();
        let d2 = d.with_area_scaled(1.065).unwrap();
        assert!((d2.area().get() - 1.065).abs() < 1e-12);
        assert_eq!(d2.power(), d.power());
        assert_eq!(d2.energy(), d.energy());
        assert_eq!(d2.performance(), d.performance());
    }

    #[test]
    fn with_operational_scaled_touches_power_and_energy() {
        let d = DesignPoint::from_power_perf(1.0, 2.0, 1.0).unwrap();
        let d2 = d.with_operational_scaled(0.5).unwrap();
        assert_eq!(d2.power().get(), 1.0);
        assert_eq!(d2.energy().get(), 1.0);
        assert_eq!(d2.area(), d.area());
    }

    #[test]
    fn normalization_produces_ratios() {
        let x = DesignPoint::from_raw(3.0, 6.0, 2.0, 1.5).unwrap();
        let y = DesignPoint::from_raw(1.5, 2.0, 4.0, 3.0).unwrap();
        let n = x.normalized_to(&y).unwrap();
        assert_eq!(n.area().get(), 2.0);
        assert_eq!(n.power().get(), 3.0);
        assert_eq!(n.energy().get(), 0.5);
        assert_eq!(n.performance().get(), 0.5);
    }

    #[test]
    fn builder_derives_energy_from_power() {
        let d = DesignPointBuilder::new()
            .power(4.0)
            .performance(2.0)
            .build()
            .unwrap();
        assert_eq!(d.energy().get(), 2.0);
        assert_eq!(d.area().get(), 1.0);
    }

    #[test]
    fn builder_derives_power_from_energy() {
        let d = DesignPointBuilder::new()
            .energy(2.0)
            .performance(2.0)
            .build()
            .unwrap();
        assert_eq!(d.power().get(), 4.0);
    }

    #[test]
    fn builder_requires_an_operational_axis() {
        let err = DesignPointBuilder::new().area(2.0).build().unwrap_err();
        assert!(matches!(err, crate::ModelError::Inconsistent { .. }));
    }

    #[test]
    fn builder_accepts_independent_power_and_energy() {
        // Branch-predictor data point: power +6.6%, energy -7%, perf +14%.
        let d = DesignPointBuilder::new()
            .power(1.066)
            .energy(0.93)
            .performance(1.14)
            .build()
            .unwrap();
        assert_eq!(d.power().get(), 1.066);
        assert_eq!(d.energy().get(), 0.93);
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(DesignPoint::from_power_perf(-1.0, 1.0, 1.0).is_err());
        assert!(DesignPoint::from_raw(1.0, 1.0, 1.0, 0.0).is_err());
        assert!(DesignPoint::from_power_perf(1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn display_mentions_all_axes() {
        let d = DesignPoint::reference();
        let s = d.to_string();
        assert!(s.contains("area") && s.contains("perf"));
    }
}
