//! # focal-core — the FOCAL first-order carbon model
//!
//! This crate implements the core of FOCAL (Eeckhout, ASPLOS 2024): a
//! parameterized, first-order analytical model that lets computer architects
//! reason about processor sustainability *despite* inherent data
//! uncertainty.
//!
//! ## Model in one paragraph
//!
//! FOCAL compares two designs `X` and `Y` using first-order proxies: chip
//! **area** stands in for the embodied footprint, and **energy** (fixed-work
//! scenario) or **power** (fixed-time scenario) stands in for the
//! operational footprint. The *normalized carbon footprint*
//!
//! ```text
//! NCF_s,α(X, Y) = α · A_X/A_Y + (1 − α) · O_s(X)/O_s(Y)
//! ```
//!
//! weighs the two with the embodied-to-operational weight `α_E2O`. Designs
//! are then classified **strongly** (NCF < 1 under both scenarios),
//! **weakly** (under exactly one) or **less** sustainable (under neither).
//!
//! ## Quick start
//!
//! ```
//! use focal_core::{classify, DesignPoint, E2oWeight, Scenario, Sustainability, Ncf};
//!
//! // The paper's OoO-vs-InO comparison (§5.6): +75% performance for
//! // +39% area and 2.32x power.
//! let ooo = DesignPoint::from_power_perf(1.39, 2.32, 1.75)?;
//! let ino = DesignPoint::reference();
//!
//! let ncf = Ncf::evaluate(&ooo, &ino, Scenario::FixedWork, E2oWeight::EMBODIED_DOMINATED);
//! assert!(ncf.value() > 1.0);
//!
//! let verdict = classify(&ooo, &ino, E2oWeight::EMBODIED_DOMINATED);
//! assert_eq!(verdict.class, Sustainability::Less); // Finding #9
//! # Ok::<(), focal_core::ModelError>(())
//! ```
//!
//! ## Embracing uncertainty
//!
//! Because the true α is unknown, analyses should sweep ranges
//! ([`E2oRange`], [`classify_over_range`]) or sample distributions
//! ([`MonteCarloNcf`]); rebound effects are modeled with the fixed-time
//! scenario (usage rebound) and weight adjustments
//! ([`deployment_adjusted_weight`], deployment rebound).
//!
//! The companion crates supply the substrates the paper's studies need:
//! `focal-wafer` (yield & embodied carbon), `focal-perf` (Amdahl /
//! Hill-Marty / Woo-Lee), `focal-cache`, `focal-uarch`, `focal-scaling`,
//! and `focal-studies` reproduces every figure and finding.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod analysis;
mod classify;
mod design;
mod error;
mod fleet;
mod mc_kernel;
mod memo;
mod ncf;
mod quantity;
mod rebound;
mod scenario;
mod sensitivity;
mod uncertainty;
mod weight;

pub use analysis::{classify_all, pareto_frontier, Candidate, SweepPoint, SweepSeries};
pub use classify::{
    classify, classify_over_range, classify_over_range_memo_on, classify_over_range_on,
    classify_with_tolerance, Classification, RobustClassification, Sustainability,
    DEFAULT_TOLERANCE,
};
pub use design::{DesignPoint, DesignPointBuilder};
pub use error::{ModelError, Result};
pub use fleet::{Fleet, Segment};
pub use mc_kernel::{mc_kernel_isa, MC_GROUP_CHUNKS};
pub use memo::{MemoStats, SweepMemo, SweepMemoStats};
pub use ncf::{Ncf, NcfBand, NcfPair};
pub use quantity::{CarbonFootprint, Energy, ExecutionTime, Performance, Power, SiliconArea};
pub use rebound::{deployment_adjusted_weight, lifetime_adjusted_weight};
pub use scenario::Scenario;
pub use sensitivity::{
    alpha_crossover, alpha_crossover_batch, alpha_crossover_batch_memo, blended_ncf,
    rebound_tolerance, AlphaCrossover, NcfSensitivity,
};
pub use uncertainty::{ncf_interval, Interval, McSummary, MonteCarloNcf, MC_CHUNK_SAMPLES};
pub use weight::{E2oRange, E2oWeight};
