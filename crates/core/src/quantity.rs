//! Strongly-typed physical quantities used throughout the FOCAL model.
//!
//! FOCAL deliberately works with *relative* (normalized) quantities: the NCF
//! metric compares two designs, so only ratios of areas, energies and powers
//! matter. The newtypes in this module keep the different axes apart at the
//! type level (an area can never be accidentally divided by a power) while
//! staying zero-cost at run time.
//!
//! Where a substrate crate needs absolute units (e.g. the wafer model works
//! in mm², the cache model in nJ), the same newtypes are used with the unit
//! documented by the constructor (`SiliconArea::from_mm2`, `Energy::from_nj`).

use crate::error::{ensure_positive, Result};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

/// Implements the shared surface of a positive, finite `f64` quantity
/// newtype: validating constructor, raw accessor, ratio, scaling and
/// formatting.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $ctor:ident, $param:literal, $unit_doc:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            #[doc = concat!("Creates a new quantity from a value in ", $unit_doc, ".")]
            ///
            /// # Errors
            ///
            /// Returns [`crate::ModelError::OutOfRange`] if the value is not
            /// strictly positive, or [`crate::ModelError::NotFinite`] if it
            /// is NaN or infinite.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("# use focal_core::", stringify!($name), ";")]
            #[doc = concat!("let q = ", stringify!($name), "::", stringify!($ctor), "(2.0)?;")]
            /// assert_eq!(q.get(), 2.0);
            /// # Ok::<(), focal_core::ModelError>(())
            /// ```
            pub fn $ctor(value: f64) -> Result<Self> {
                Ok(Self(ensure_positive($param, value)?))
            }

            /// Returns the underlying `f64` value.
            #[inline]
            pub fn get(self) -> f64 {
                self.0
            }

            /// Returns the dimensionless ratio `self / other`.
            ///
            /// This is the fundamental operation of the FOCAL model: NCF is
            /// a weighted sum of such ratios.
            #[inline]
            pub fn ratio_to(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// Returns this quantity scaled by a dimensionless factor.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the scaled value would be
            /// non-positive or non-finite; in release builds the invalid
            /// value propagates (matching `f64` semantics) and will be
            /// caught by the next validating constructor.
            #[inline]
            #[must_use]
            pub fn scaled(self, factor: f64) -> Self {
                debug_assert!(
                    factor.is_finite() && factor > 0.0,
                    "scaling factor must be positive and finite, got {factor}"
                );
                Self(self.0 * factor)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                debug_assert!(
                    self.0 > rhs.0,
                    "subtraction would produce a non-positive quantity"
                );
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                self.scaled(rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.ratio_to(rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Silicon die area — FOCAL's first-order proxy for the *embodied*
    /// carbon footprint (§3.1 of the paper).
    ///
    /// The unit is context-dependent: the core model only ever takes ratios,
    /// so any consistent unit works; the wafer substrate uses mm²
    /// (see [`SiliconArea::from_mm2`]). Relative studies use "base core
    /// equivalents" (BCEs) as the unit.
    SiliconArea,
    from_mm2,
    "area",
    "mm² (or any consistent relative unit)"
);

impl SiliconArea {
    /// Creates an area measured in base-core equivalents (BCEs), the
    /// relative unit used by the Hill-Marty multicore studies.
    ///
    /// # Errors
    ///
    /// Returns an error if `bce` is not strictly positive and finite.
    pub fn from_bce(bce: f64) -> Result<Self> {
        Self::from_mm2(bce)
    }

    /// Returns the area in cm², assuming the stored unit is mm².
    #[inline]
    pub fn as_cm2(self) -> f64 {
        self.get() / 100.0
    }
}

quantity!(
    /// Average power draw — FOCAL's proxy for the *operational* footprint
    /// under the **fixed-time** scenario (§3.2).
    Power,
    from_watts,
    "power",
    "watts (or any consistent relative unit)"
);

quantity!(
    /// Total energy consumed for a fixed amount of work — FOCAL's proxy for
    /// the *operational* footprint under the **fixed-work** scenario (§3.2).
    Energy,
    from_joules,
    "energy",
    "joules (or any consistent relative unit)"
);

impl Energy {
    /// Creates an energy measured in nanojoules (used by the cache model).
    ///
    /// # Errors
    ///
    /// Returns an error if `nj` is not strictly positive and finite.
    pub fn from_nj(nj: f64) -> Result<Self> {
        Self::from_joules(nj)
    }
}

quantity!(
    /// Application-level performance (work per unit time), normalized to a
    /// reference design.
    ///
    /// Higher is better. Execution time for a fixed amount of work is the
    /// reciprocal of performance.
    Performance,
    from_speedup,
    "performance",
    "speedup relative to a reference design"
);

quantity!(
    /// Execution time for a fixed amount of work, normalized to a reference
    /// design. Lower is better.
    ExecutionTime,
    from_seconds,
    "time",
    "seconds (or any consistent relative unit)"
);

quantity!(
    /// An (absolute or normalized) carbon footprint, used by the wafer and
    /// ACT substrates. The core NCF metric itself is dimensionless and is
    /// represented by [`crate::Ncf`].
    CarbonFootprint,
    from_kg_co2e,
    "carbon",
    "kg CO₂-equivalent (or any consistent relative unit)"
);

impl Performance {
    /// The reference performance (speedup of 1).
    pub fn baseline() -> Self {
        Performance(1.0)
    }

    /// Returns the execution time needed to complete one unit of work.
    ///
    /// # Examples
    ///
    /// ```
    /// use focal_core::Performance;
    /// let p = Performance::from_speedup(2.0)?;
    /// assert_eq!(p.execution_time().get(), 0.5);
    /// # Ok::<(), focal_core::ModelError>(())
    /// ```
    pub fn execution_time(self) -> ExecutionTime {
        ExecutionTime(1.0 / self.0)
    }
}

impl ExecutionTime {
    /// Returns the performance (speedup) corresponding to this execution
    /// time for a fixed amount of work.
    pub fn performance(self) -> Performance {
        Performance(1.0 / self.0)
    }
}

impl Mul<ExecutionTime> for Power {
    type Output = Energy;

    /// Energy is power integrated over time; for the piecewise-constant
    /// power profiles FOCAL considers this is a plain product.
    fn mul(self, rhs: ExecutionTime) -> Energy {
        Energy(self.get() * rhs.get())
    }
}

impl Div<ExecutionTime> for Energy {
    type Output = Power;

    /// Average power is energy divided by execution time.
    fn div(self, rhs: ExecutionTime) -> Power {
        Power(self.get() / rhs.get())
    }
}

impl Div<Performance> for Power {
    type Output = Energy;

    /// For one unit of work, `energy = power × time = power / performance`.
    ///
    /// This identity is used pervasively: the paper derives multicore energy
    /// (Eq. 3) as power (Eq. 2) divided by speedup (Eq. 1).
    fn div(self, rhs: Performance) -> Energy {
        Energy(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(SiliconArea::from_mm2(-1.0).is_err());
        assert!(Power::from_watts(0.0).is_err());
        assert!(Energy::from_joules(f64::NAN).is_err());
        assert!(Performance::from_speedup(f64::INFINITY).is_err());
        assert!(SiliconArea::from_mm2(450.0).is_ok());
    }

    #[test]
    fn ratio_is_dimensionless_division() {
        let a = SiliconArea::from_mm2(300.0).unwrap();
        let b = SiliconArea::from_mm2(100.0).unwrap();
        assert_eq!(a.ratio_to(b), 3.0);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_watts(10.0).unwrap();
        let t = ExecutionTime::from_seconds(3.0).unwrap();
        assert_eq!((p * t).get(), 30.0);
    }

    #[test]
    fn energy_over_time_is_power() {
        let e = Energy::from_joules(30.0).unwrap();
        let t = ExecutionTime::from_seconds(3.0).unwrap();
        assert_eq!((e / t).get(), 10.0);
    }

    #[test]
    fn power_over_performance_is_energy_for_unit_work() {
        // Paper Eq. 3 = Eq. 2 / Eq. 1: energy = power / speedup.
        let p = Power::from_watts(8.0).unwrap();
        let s = Performance::from_speedup(4.0).unwrap();
        assert_eq!((p / s).get(), 2.0);
    }

    #[test]
    fn performance_and_time_are_reciprocal() {
        let p = Performance::from_speedup(4.0).unwrap();
        assert_eq!(p.execution_time().get(), 0.25);
        assert_eq!(p.execution_time().performance().get(), 4.0);
    }

    #[test]
    fn scaled_multiplies() {
        let a = SiliconArea::from_mm2(100.0).unwrap();
        assert_eq!(a.scaled(2.5).get(), 250.0);
        assert_eq!((a * 2.5).get(), 250.0);
    }

    #[test]
    fn add_and_sum_accumulate() {
        let a = Energy::from_joules(1.0).unwrap();
        let b = Energy::from_joules(2.0).unwrap();
        assert_eq!((a + b).get(), 3.0);
        let total: Energy = vec![a, b, a].into_iter().sum();
        assert_eq!(total.get(), 4.0);
    }

    #[test]
    fn area_cm2_conversion() {
        let a = SiliconArea::from_mm2(450.0).unwrap();
        assert!((a.as_cm2() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn display_shows_value() {
        let a = SiliconArea::from_mm2(123.5).unwrap();
        assert_eq!(a.to_string(), "123.5");
        assert_eq!(format!("{a:.0}"), "124");
    }

    #[test]
    fn quantities_are_copy_and_comparable() {
        let a = Power::from_watts(1.0).unwrap();
        let b = a; // Copy
        assert!(a <= b);
        assert_eq!(a, b);
    }
}
