//! Error types shared by all FOCAL model crates.

use std::fmt;

/// The error type returned by fallible FOCAL model constructors and
/// evaluators.
///
/// FOCAL follows the "functions validate their arguments" guideline: every
/// parameter that has a physical or mathematical domain (areas must be
/// positive, fractions must lie in `[0, 1]`, …) is checked at construction
/// time so that downstream model code can assume well-formed inputs.
///
/// # Examples
///
/// ```
/// use focal_core::{E2oWeight, ModelError};
///
/// let err = E2oWeight::new(1.5).unwrap_err();
/// assert!(matches!(err, ModelError::OutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A parameter fell outside its mathematical domain.
    OutOfRange {
        /// Name of the offending parameter (e.g. `"alpha_e2o"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid domain (e.g. `"[0, 1]"`).
        expected: &'static str,
    },
    /// A parameter that must be a finite number was NaN or infinite.
    NotFinite {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Two parameters are individually valid but mutually inconsistent
    /// (e.g. a big core using more base-core equivalents than the whole
    /// chip provides).
    Inconsistent {
        /// Description of the violated consistency condition.
        constraint: &'static str,
    },
    /// A requested data point is outside the calibrated range of an
    /// empirical sub-model (e.g. a cache size the CACTI-lite model was
    /// never calibrated for).
    OutsideCalibration {
        /// Name of the model refusing to extrapolate.
        model: &'static str,
        /// Human-readable description of the calibrated domain.
        domain: &'static str,
    },
    /// A chunk of a parallel evaluation panicked (or had a fault
    /// injected) and was isolated by the engine. Carries the minimal
    /// reproduction coordinates: the lowest failing chunk index and the
    /// chunk's derived RNG seed (see `focal_engine::ChunkError`).
    ChunkPoisoned {
        /// Index of the poisoned chunk (lowest failing index of the run,
        /// identical at every thread count).
        chunk_index: usize,
        /// The chunk's derived RNG seed (`seed + chunk_index`, wrapping).
        chunk_seed: u64,
        /// Stringified panic payload (or injected-fault description).
        payload: String,
    },
    /// A computed output value that must be a finite number was NaN or
    /// infinite — the stage-boundary tripwire that turns silent numeric
    /// corruption into a structured error before results are fingerprinted.
    NonFiniteOutput {
        /// Where the value was produced (e.g. `"figure f7 panel 0"`).
        context: String,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfRange {
                parameter,
                value,
                expected,
            } => write!(
                f,
                "parameter `{parameter}` = {value} is outside its valid domain {expected}"
            ),
            ModelError::NotFinite { parameter, value } => {
                write!(f, "parameter `{parameter}` = {value} must be finite")
            }
            ModelError::Inconsistent { constraint } => {
                write!(f, "inconsistent parameters: {constraint}")
            }
            ModelError::OutsideCalibration { model, domain } => {
                write!(f, "model `{model}` is only calibrated for {domain}")
            }
            ModelError::ChunkPoisoned {
                chunk_index,
                chunk_seed,
                payload,
            } => write!(
                f,
                "chunk {chunk_index} (chunk_seed {chunk_seed}) poisoned: {payload}"
            ),
            ModelError::NonFiniteOutput { context, value } => {
                write!(f, "non-finite output in {context}: {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<focal_engine::ChunkError> for ModelError {
    /// Lifts the engine's structured chunk failure into the model error
    /// space, preserving the reproduction coordinates verbatim.
    fn from(e: focal_engine::ChunkError) -> Self {
        ModelError::ChunkPoisoned {
            chunk_index: e.chunk_index,
            chunk_seed: e.chunk_seed,
            payload: e.payload,
        }
    }
}

/// Convenience alias for `Result<T, ModelError>`.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Validates that `value` is finite, returning [`ModelError::NotFinite`]
/// otherwise.
///
/// This is the first line of defence used by every validating constructor
/// in the FOCAL crates.
pub(crate) fn ensure_finite(parameter: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NotFinite { parameter, value })
    }
}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(parameter: &'static str, value: f64) -> Result<f64> {
    let value = ensure_finite(parameter, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(ModelError::OutOfRange {
            parameter,
            value,
            expected: "(0, +inf)",
        })
    }
}

/// Validates that `value` is finite and lies in the closed unit interval.
pub(crate) fn ensure_unit_interval(parameter: &'static str, value: f64) -> Result<f64> {
    let value = ensure_finite(parameter, value)?;
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::OutOfRange {
            parameter,
            value,
            expected: "[0, 1]",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_finite_accepts_ordinary_values() {
        assert_eq!(ensure_finite("x", 1.25).unwrap(), 1.25);
        assert_eq!(ensure_finite("x", -3.0).unwrap(), -3.0);
        assert_eq!(ensure_finite("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn ensure_finite_rejects_nan_and_infinities() {
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert!(ensure_finite("x", f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn ensure_positive_rejects_zero_and_negatives() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -1.0).is_err());
        assert_eq!(ensure_positive("x", 2.0).unwrap(), 2.0);
    }

    #[test]
    fn ensure_unit_interval_accepts_bounds() {
        assert_eq!(ensure_unit_interval("f", 0.0).unwrap(), 0.0);
        assert_eq!(ensure_unit_interval("f", 1.0).unwrap(), 1.0);
        assert!(ensure_unit_interval("f", 1.0001).is_err());
        assert!(ensure_unit_interval("f", -0.0001).is_err());
    }

    #[test]
    fn display_messages_are_informative() {
        let err = ModelError::OutOfRange {
            parameter: "alpha_e2o",
            value: 2.0,
            expected: "[0, 1]",
        };
        let msg = err.to_string();
        assert!(msg.contains("alpha_e2o"));
        assert!(msg.contains("[0, 1]"));

        let err = ModelError::OutsideCalibration {
            model: "cacti-lite",
            domain: "1 MiB to 16 MiB",
        };
        assert!(err.to_string().contains("cacti-lite"));
    }

    #[test]
    fn chunk_error_lifts_losslessly() {
        let e = focal_engine::ChunkError {
            chunk_index: 3,
            chunk_seed: 45,
            payload: "boom".into(),
        };
        let m: ModelError = e.into();
        assert_eq!(
            m,
            ModelError::ChunkPoisoned {
                chunk_index: 3,
                chunk_seed: 45,
                payload: "boom".into(),
            }
        );
        let msg = m.to_string();
        assert!(msg.contains("chunk 3"));
        assert!(msg.contains("chunk_seed 45"));
    }

    #[test]
    fn non_finite_output_names_context() {
        let m = ModelError::NonFiniteOutput {
            context: "figure f7 panel 0".into(),
            value: f64::NAN,
        };
        let msg = m.to_string();
        assert!(msg.contains("figure f7 panel 0"));
        assert!(msg.contains("NaN"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
