//! Design-space analysis helpers: labelled series for the figure harness and
//! Pareto-frontier extraction over (performance, NCF).

use crate::classify::{classify, Classification};
use crate::design::DesignPoint;
use crate::ncf::Ncf;
use crate::scenario::Scenario;
use crate::weight::E2oWeight;
use std::fmt;

/// One point of a figure series: a labelled design with its normalized
/// performance and NCF value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable point label (e.g. `"16 BCEs"` or `"f=0.95"`).
    pub label: String,
    /// Normalized performance (x-axis of most FOCAL figures).
    pub performance: f64,
    /// NCF value (y-axis).
    pub ncf: f64,
}

/// A labelled series of sweep points, matching one curve of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Series name (e.g. `"f=0.95"` in Figure 3).
    pub name: String,
    /// The curve's points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point computed from a design comparison.
    pub fn push_design(
        &mut self,
        label: impl Into<String>,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        alpha: E2oWeight,
    ) {
        let ncf = Ncf::evaluate(x, y, scenario, alpha);
        self.points.push(SweepPoint {
            label: label.into(),
            performance: x.performance() / y.performance(),
            ncf: ncf.value(),
        });
    }

    /// Appends a raw (performance, ncf) point.
    pub fn push_raw(&mut self, label: impl Into<String>, performance: f64, ncf: f64) {
        self.points.push(SweepPoint {
            label: label.into(),
            performance,
            ncf,
        });
    }

    /// The point with the lowest NCF, if the series is non-empty.
    pub fn min_ncf(&self) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| a.ncf.total_cmp(&b.ncf))
    }

    /// The point with the highest performance, if the series is non-empty.
    pub fn max_performance(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))
    }
}

impl fmt::Display for SweepSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "series `{}` ({} points):", self.name, self.points.len())?;
        for p in &self.points {
            writeln!(
                f,
                "  {:<14} perf={:.4} ncf={:.4}",
                p.label, p.performance, p.ncf
            )?;
        }
        Ok(())
    }
}

/// A candidate in a design-space exploration: a named design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Candidate name for reports.
    pub name: String,
    /// The design's model quantities.
    pub design: DesignPoint,
}

impl Candidate {
    /// Creates a named candidate.
    pub fn new(name: impl Into<String>, design: DesignPoint) -> Self {
        Candidate {
            name: name.into(),
            design,
        }
    }
}

/// Extracts the Pareto-optimal candidates under the bi-objective
/// (maximize performance, minimize NCF vs `baseline`).
///
/// A candidate is dominated if some other candidate has performance at least
/// as high *and* NCF at least as low, with at least one strict. The paper's
/// "design points towards the bottom-right are optimal" (§5.6) is exactly
/// this frontier.
///
/// The result preserves the input order of the surviving candidates.
///
/// # Examples
///
/// ```
/// use focal_core::{pareto_frontier, Candidate, DesignPoint, E2oWeight, Scenario};
///
/// let baseline = DesignPoint::reference();
/// let cands = vec![
///     Candidate::new("slow-clean", DesignPoint::from_power_perf(1.0, 1.0, 1.0)?),
///     Candidate::new("fast-dirty", DesignPoint::from_power_perf(1.4, 2.3, 1.75)?),
///     Candidate::new("dominated", DesignPoint::from_power_perf(1.4, 2.3, 1.0)?),
/// ];
/// let frontier = pareto_frontier(&cands, &baseline, Scenario::FixedWork, E2oWeight::BALANCED);
/// let names: Vec<_> = frontier.iter().map(|c| c.name.as_str()).collect();
/// assert_eq!(names, ["slow-clean", "fast-dirty"]);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn pareto_frontier<'a>(
    candidates: &'a [Candidate],
    baseline: &DesignPoint,
    scenario: Scenario,
    alpha: E2oWeight,
) -> Vec<&'a Candidate> {
    // Scoring each candidate is independent; par_map preserves candidate
    // order, so the frontier (and its order) is thread-count invariant.
    let scored: Vec<(f64, f64)> = focal_engine::Engine::from_env().par_map(candidates, |c| {
        (
            c.design.performance() / baseline.performance(),
            Ncf::evaluate(&c.design, baseline, scenario, alpha).value(),
        )
    });
    candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let (perf_i, ncf_i) = scored[*i];
            !scored.iter().enumerate().any(|(j, &(perf_j, ncf_j))| {
                j != *i && perf_j >= perf_i && ncf_j <= ncf_i && (perf_j > perf_i || ncf_j < ncf_i)
            })
        })
        .map(|(_, c)| c)
        .collect()
}

/// Classifies every candidate against a baseline, returning
/// `(candidate, classification)` pairs — the bulk operation behind the
/// "findings" tables.
pub fn classify_all<'a>(
    candidates: &'a [Candidate],
    baseline: &DesignPoint,
    alpha: E2oWeight,
) -> Vec<(&'a Candidate, Classification)> {
    let classes = focal_engine::Engine::from_env()
        .par_map(candidates, |c| classify(&c.design, baseline, alpha));
    candidates.iter().zip(classes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Sustainability;

    fn dp(area: f64, power: f64, perf: f64) -> DesignPoint {
        DesignPoint::from_power_perf(area, power, perf).unwrap()
    }

    #[test]
    fn series_push_design_computes_normalized_axes() {
        let baseline = DesignPoint::reference();
        let mut s = SweepSeries::new("test");
        s.push_design(
            "x",
            &dp(2.0, 2.0, 2.0),
            &baseline,
            Scenario::FixedWork,
            E2oWeight::BALANCED,
        );
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].performance, 2.0);
        // NCF = 0.5·2 + 0.5·1 = 1.5 (energy = 2/2 = 1)
        assert!((s.points[0].ncf - 1.5).abs() < 1e-12);
    }

    #[test]
    fn series_extrema() {
        let mut s = SweepSeries::new("t");
        s.push_raw("a", 1.0, 0.9);
        s.push_raw("b", 2.0, 1.3);
        s.push_raw("c", 1.5, 0.7);
        assert_eq!(s.min_ncf().unwrap().label, "c");
        assert_eq!(s.max_performance().unwrap().label, "b");
        assert!(SweepSeries::new("empty").min_ncf().is_none());
    }

    #[test]
    fn pareto_keeps_non_dominated() {
        let baseline = DesignPoint::reference();
        let cands = vec![
            Candidate::new("a", dp(1.0, 1.0, 1.0)),
            Candidate::new("b", dp(0.9, 0.9, 1.1)), // dominates a
            Candidate::new("c", dp(2.0, 3.0, 2.0)), // fastest, worst NCF
        ];
        let frontier = pareto_frontier(&cands, &baseline, Scenario::FixedWork, E2oWeight::BALANCED);
        let names: Vec<_> = frontier.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn pareto_of_single_candidate_is_itself() {
        let baseline = DesignPoint::reference();
        let cands = vec![Candidate::new("only", dp(1.0, 1.0, 1.0))];
        let frontier = pareto_frontier(&cands, &baseline, Scenario::FixedTime, E2oWeight::BALANCED);
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn pareto_deduplicates_identical_points_keeping_one() {
        let baseline = DesignPoint::reference();
        let cands = vec![
            Candidate::new("x1", dp(1.0, 1.0, 1.0)),
            Candidate::new("x2", dp(1.0, 1.0, 1.0)),
        ];
        let frontier = pareto_frontier(&cands, &baseline, Scenario::FixedWork, E2oWeight::BALANCED);
        // Neither strictly dominates the other, so both survive.
        assert_eq!(frontier.len(), 2);
    }

    #[test]
    fn classify_all_matches_individual_classification() {
        let baseline = DesignPoint::reference();
        let cands = vec![
            Candidate::new("good", dp(0.5, 0.5, 1.0)),
            Candidate::new("bad", dp(2.0, 2.0, 1.0)),
        ];
        let results = classify_all(&cands, &baseline, E2oWeight::BALANCED);
        assert_eq!(results[0].1.class, Sustainability::Strongly);
        assert_eq!(results[1].1.class, Sustainability::Less);
    }

    #[test]
    fn display_renders_points() {
        let mut s = SweepSeries::new("fig");
        s.push_raw("p1", 1.0, 1.0);
        let out = s.to_string();
        assert!(out.contains("fig") && out.contains("p1"));
    }
}
