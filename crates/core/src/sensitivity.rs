//! Sensitivity analysis of the NCF metric.
//!
//! Because NCF is affine in α, a comparison's verdict can flip at most
//! once as α sweeps `[0, 1]`: at the *crossover weight* where NCF = 1.
//! Knowing that crossover tells a designer exactly which use cases
//! (device classes, lifetimes, energy mixes) favour a design — a sharper
//! statement than evaluating two fixed scenarios.

use crate::design::DesignPoint;
use crate::error::Result;
use crate::ncf::Ncf;
use crate::scenario::Scenario;
use crate::weight::E2oWeight;
use std::fmt;

/// Where a comparison stands as a function of α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaCrossover {
    /// NCF < 1 for every α ∈ \[0, 1\]: X wins regardless of the
    /// embodied/operational split.
    AlwaysBelow,
    /// NCF > 1 for every α: X loses regardless.
    AlwaysAbove,
    /// NCF = 1 for every α (both ratios are exactly 1).
    AlwaysOne,
    /// NCF crosses 1 at this α; X wins *below* it (operational-leaning
    /// use cases) when `wins_below` is true, otherwise above.
    At {
        /// The crossover weight.
        alpha: E2oWeight,
        /// `true` if NCF < 1 for α below the crossover.
        wins_below: bool,
    },
}

impl fmt::Display for AlphaCrossover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphaCrossover::AlwaysBelow => write!(f, "lower footprint for every α"),
            AlphaCrossover::AlwaysAbove => write!(f, "higher footprint for every α"),
            AlphaCrossover::AlwaysOne => write!(f, "identical footprint for every α"),
            AlphaCrossover::At { alpha, wins_below } => write!(
                f,
                "crossover at α = {:.3} (wins {})",
                alpha.get(),
                if *wins_below { "below" } else { "above" }
            ),
        }
    }
}

/// Computes where `NCF_s,α(x, y) = 1` as α sweeps `[0, 1]`.
///
/// With embodied ratio `a` and operational ratio `o`,
/// `NCF(α) = α·a + (1 − α)·o` crosses 1 at `α* = (1 − o)/(a − o)`.
///
/// # Examples
///
/// ```
/// use focal_core::{alpha_crossover, AlphaCrossover, DesignPoint, Scenario};
///
/// // Bigger chip, much lower energy: wins under operational-leaning α.
/// let x = DesignPoint::from_raw(1.5, 0.5, 0.5, 1.0)?;
/// let y = DesignPoint::reference();
/// match alpha_crossover(&x, &y, Scenario::FixedWork) {
///     AlphaCrossover::At { alpha, wins_below } => {
///         assert!(wins_below);
///         assert!((alpha.get() - 0.5).abs() < 1e-12);
///     }
///     other => panic!("expected a crossover, got {other:?}"),
/// }
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn alpha_crossover(x: &DesignPoint, y: &DesignPoint, scenario: Scenario) -> AlphaCrossover {
    let a = x.area() / y.area();
    let o = scenario.operational_ratio(x, y);
    let eps = 1e-12;
    let below = |v: f64| v < 1.0 - eps;
    let above = |v: f64| v > 1.0 + eps;

    match (below(a) || above(a), below(o) || above(o)) {
        (false, false) => AlphaCrossover::AlwaysOne,
        _ => {
            // Endpoint values: NCF(0) = o, NCF(1) = a.
            match (above(o), above(a)) {
                (false, false) => AlphaCrossover::AlwaysBelow,
                (true, true) => AlphaCrossover::AlwaysAbove,
                (false, true) => {
                    // Wins at α = 0, loses at α = 1. The crossover is in
                    // [0, 1] mathematically; clamp guards against rounding
                    // pushing it an epsilon outside.
                    let alpha = ((1.0 - o) / (a - o)).clamp(0.0, 1.0);
                    AlphaCrossover::At {
                        // focal-lint: allow(panic-freedom) -- clamped into the validated [0, 1] domain; a ≠ o in this branch
                        alpha: E2oWeight::new(alpha).expect("crossover lies in [0, 1]"),
                        wins_below: true,
                    }
                }
                (true, false) => {
                    let alpha = ((1.0 - o) / (a - o)).clamp(0.0, 1.0);
                    AlphaCrossover::At {
                        // focal-lint: allow(panic-freedom) -- clamped into the validated [0, 1] domain; a ≠ o in this branch
                        alpha: E2oWeight::new(alpha).expect("crossover lies in [0, 1]"),
                        wins_below: false,
                    }
                }
            }
        }
    }
}

/// Computes [`alpha_crossover`] for every `(x, y)` pair of a design-space
/// sweep in parallel, preserving pair order.
///
/// Each crossover is an independent closed-form evaluation, so
/// [`focal_engine::Engine::par_map`]'s order-preserving merge makes the
/// result identical at every thread count. Use
/// [`focal_engine::Engine::serial`] (or `FOCAL_THREADS=1` with
/// [`focal_engine::Engine::from_env`]) for the exact serial path.
pub fn alpha_crossover_batch(
    engine: &focal_engine::Engine,
    pairs: &[(DesignPoint, DesignPoint)],
    scenario: Scenario,
) -> Vec<AlphaCrossover> {
    engine.par_map(pairs, |(x, y)| alpha_crossover(x, y, scenario))
}

/// [`alpha_crossover_batch`] with a [`crate::SweepMemo`]: pairs whose
/// crossover is already cached are answered from the memo and only the
/// missing pairs are fanned out to the engine, preserving pair order. The
/// result is element-wise identical to the unmemoized call.
///
/// While a fault plan is armed (see [`focal_engine::fault::armed`]) the memo
/// is bypassed entirely so injected faults reach the real evaluation path.
pub fn alpha_crossover_batch_memo(
    engine: &focal_engine::Engine,
    pairs: &[(DesignPoint, DesignPoint)],
    scenario: Scenario,
    memo: &mut crate::SweepMemo,
) -> Vec<AlphaCrossover> {
    if focal_engine::fault::armed() {
        return alpha_crossover_batch(engine, pairs, scenario);
    }
    let mut cached: Vec<Option<AlphaCrossover>> = pairs
        .iter()
        .map(|(x, y)| memo.crossover_lookup(x, y, scenario))
        .collect();
    let missing: Vec<(DesignPoint, DesignPoint)> = pairs
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(&pair, _)| pair)
        .collect();
    let fresh = alpha_crossover_batch(engine, &missing, scenario);
    for ((x, y), result) in missing.iter().zip(&fresh) {
        memo.crossover_insert(x, y, scenario, *result);
    }
    let mut fresh = fresh.into_iter();
    pairs
        .iter()
        .zip(cached.iter_mut())
        .map(|((x, y), hit)| match hit.take() {
            Some(result) => result,
            // Misses and fresh results are in the same order by
            // construction; recompute serially if the engine ever
            // under-returned rather than panic.
            None => fresh
                .next()
                .unwrap_or_else(|| alpha_crossover(x, y, scenario)),
        })
        .collect()
}

/// First-order sensitivities of one NCF evaluation: how much the value
/// moves per unit change in α and per 1 % change in each proxy ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcfSensitivity {
    /// `∂NCF/∂α = embodied_ratio − operational_ratio`.
    pub d_alpha: f64,
    /// `∂NCF/∂(embodied ratio) = α` — the impact of a 100 % area-ratio
    /// error.
    pub d_embodied: f64,
    /// `∂NCF/∂(operational ratio) = 1 − α`.
    pub d_operational: f64,
}

impl NcfSensitivity {
    /// Computes the sensitivities of an evaluated NCF.
    pub fn of(ncf: &Ncf) -> NcfSensitivity {
        NcfSensitivity {
            d_alpha: ncf.embodied_ratio() - ncf.operational_ratio(),
            d_embodied: ncf.weight().embodied(),
            d_operational: ncf.weight().operational(),
        }
    }

    /// The dominant uncertainty axis: `"alpha"`, `"embodied"` or
    /// `"operational"` depending on which unit perturbation moves the NCF
    /// most.
    pub fn dominant_axis(&self) -> &'static str {
        let a = self.d_alpha.abs();
        let e = self.d_embodied.abs();
        let o = self.d_operational.abs();
        if a >= e && a >= o {
            "alpha"
        } else if e >= o {
            "embodied"
        } else {
            "operational"
        }
    }
}

/// A blended use-case: a fraction of the device's deployments (or
/// lifetime) behaves fixed-time (rebound-prone), the rest fixed-work.
///
/// `NCF_mix = (1 − mix)·NCF_fw + mix·NCF_ft`, which interpolates the
/// paper's two scenarios for fleets whose rebound exposure is partial.
///
/// # Errors
///
/// Returns an error if `fixed_time_share ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use focal_core::{blended_ncf, DesignPoint, E2oWeight};
///
/// let x = DesignPoint::from_power_perf(1.0, 1.3, 1.38)?; // runahead-like
/// let y = DesignPoint::reference();
/// let pure_fw = blended_ncf(&x, &y, E2oWeight::OPERATIONAL_DOMINATED, 0.0)?;
/// let pure_ft = blended_ncf(&x, &y, E2oWeight::OPERATIONAL_DOMINATED, 1.0)?;
/// let half = blended_ncf(&x, &y, E2oWeight::OPERATIONAL_DOMINATED, 0.5)?;
/// assert!(pure_fw < half && half < pure_ft);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn blended_ncf(
    x: &DesignPoint,
    y: &DesignPoint,
    alpha: E2oWeight,
    fixed_time_share: f64,
) -> Result<f64> {
    let share = crate::error::ensure_unit_interval("fixed_time_share", fixed_time_share)?;
    let fw = Ncf::evaluate(x, y, Scenario::FixedWork, alpha).value();
    let ft = Ncf::evaluate(x, y, Scenario::FixedTime, alpha).value();
    Ok((1.0 - share) * fw + share * ft)
}

/// The fixed-time share at which a blended comparison breaks even
/// (`NCF_mix = 1`), or `None` when the verdict does not depend on the
/// blend. This quantifies *how much rebound* a weakly sustainable
/// mechanism tolerates before it backfires.
///
/// # Examples
///
/// ```
/// use focal_core::{rebound_tolerance, DesignPoint, E2oWeight};
///
/// // PRE-like: saves energy (fw < 1) but burns power (ft > 1).
/// let x = DesignPoint::from_raw(1.005, 1.29, 0.93, 1.38)?;
/// let y = DesignPoint::reference();
/// let tol = rebound_tolerance(&x, &y, E2oWeight::OPERATIONAL_DOMINATED).unwrap();
/// assert!(tol > 0.1 && tol < 0.3); // flips once ~19% of use rebounds
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn rebound_tolerance(x: &DesignPoint, y: &DesignPoint, alpha: E2oWeight) -> Option<f64> {
    let fw = Ncf::evaluate(x, y, Scenario::FixedWork, alpha).value();
    let ft = Ncf::evaluate(x, y, Scenario::FixedTime, alpha).value();
    if (ft - fw).abs() < 1e-12 {
        return None;
    }
    let share = (1.0 - fw) / (ft - fw);
    (0.0..=1.0).contains(&share).then_some(share)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn dp(area: f64, power: f64, energy: f64, perf: f64) -> DesignPoint {
        DesignPoint::from_raw(area, power, energy, perf).unwrap()
    }

    #[test]
    fn crossover_always_below_for_dominant_designs() {
        let x = dp(0.5, 0.5, 0.5, 1.0);
        let y = DesignPoint::reference();
        assert_eq!(
            alpha_crossover(&x, &y, Scenario::FixedWork),
            AlphaCrossover::AlwaysBelow
        );
    }

    #[test]
    fn crossover_always_above_for_dominated_designs() {
        let x = dp(2.0, 2.0, 2.0, 1.0);
        let y = DesignPoint::reference();
        assert_eq!(
            alpha_crossover(&x, &y, Scenario::FixedTime),
            AlphaCrossover::AlwaysAbove
        );
    }

    #[test]
    fn crossover_always_one_for_identical() {
        let y = DesignPoint::reference();
        assert_eq!(
            alpha_crossover(&y, &y, Scenario::FixedWork),
            AlphaCrossover::AlwaysOne
        );
    }

    #[test]
    fn crossover_value_solves_ncf_equals_one() {
        // a = 1.3, o = 0.7 ⇒ α* = 0.3/0.6 = 0.5; wins below (op side).
        let x = dp(1.3, 0.7, 0.7, 1.0);
        let y = DesignPoint::reference();
        match alpha_crossover(&x, &y, Scenario::FixedWork) {
            AlphaCrossover::At { alpha, wins_below } => {
                assert!((alpha.get() - 0.5).abs() < 1e-12);
                assert!(wins_below);
                let v = Ncf::evaluate(&x, &y, Scenario::FixedWork, alpha).value();
                assert!((v - 1.0).abs() < 1e-12);
            }
            other => panic!("expected crossover, got {other:?}"),
        }
    }

    #[test]
    fn crossover_direction_flips_with_ratios() {
        // Small chip, hungry operation: wins above the crossover.
        let x = dp(0.7, 1.3, 1.3, 1.0);
        let y = DesignPoint::reference();
        match alpha_crossover(&x, &y, Scenario::FixedWork) {
            AlphaCrossover::At { wins_below, .. } => assert!(!wins_below),
            other => panic!("expected crossover, got {other:?}"),
        }
    }

    #[test]
    fn sensitivity_matches_analytic_derivatives() {
        let x = dp(1.4, 0.6, 0.6, 1.0);
        let y = DesignPoint::reference();
        let alpha = E2oWeight::new(0.3).unwrap();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedWork, alpha);
        let s = NcfSensitivity::of(&ncf);
        assert!((s.d_alpha - (1.4 - 0.6)).abs() < 1e-12);
        assert!((s.d_embodied - 0.3).abs() < 1e-12);
        assert!((s.d_operational - 0.7).abs() < 1e-12);
        assert_eq!(s.dominant_axis(), "alpha");
    }

    #[test]
    fn sensitivity_dominant_axis_tracks_weight() {
        let x = dp(1.01, 1.0, 1.0, 1.0);
        let y = DesignPoint::reference();
        let high = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::new(0.9).unwrap());
        assert_eq!(NcfSensitivity::of(&high).dominant_axis(), "embodied");
        let low = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::new(0.1).unwrap());
        assert_eq!(NcfSensitivity::of(&low).dominant_axis(), "operational");
    }

    #[test]
    fn blended_ncf_interpolates_linearly() {
        let x = dp(1.0, 1.3, 0.9, 1.4);
        let y = DesignPoint::reference();
        let alpha = E2oWeight::BALANCED;
        let fw = blended_ncf(&x, &y, alpha, 0.0).unwrap();
        let ft = blended_ncf(&x, &y, alpha, 1.0).unwrap();
        let mid = blended_ncf(&x, &y, alpha, 0.5).unwrap();
        assert!((mid - 0.5 * (fw + ft)).abs() < 1e-12);
        assert!(blended_ncf(&x, &y, alpha, 1.5).is_err());
    }

    #[test]
    fn rebound_tolerance_finds_breakeven_share() {
        let x = dp(1.0, 1.3, 0.9, 1.4);
        let y = DesignPoint::reference();
        let alpha = E2oWeight::OPERATIONAL_DOMINATED;
        let share = rebound_tolerance(&x, &y, alpha).unwrap();
        let at_share = blended_ncf(&x, &y, alpha, share).unwrap();
        assert!((at_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebound_tolerance_none_when_verdict_fixed() {
        let y = DesignPoint::reference();
        // Strongly sustainable: never breaks even within [0, 1].
        let strong = dp(0.8, 0.8, 0.8, 1.0);
        assert_eq!(rebound_tolerance(&strong, &y, E2oWeight::BALANCED), None);
        // Same ft and fw value: blend-independent.
        let flat = dp(1.0, 1.2, 1.2, 1.0);
        assert_eq!(rebound_tolerance(&flat, &y, E2oWeight::BALANCED), None);
    }

    #[test]
    fn crossover_batch_matches_scalar_calls() {
        let y = DesignPoint::reference();
        let pairs: Vec<(DesignPoint, DesignPoint)> = (1..40)
            .map(|i| (dp(0.5 + 0.05 * i as f64, 1.1, 1.1, 1.0), y))
            .collect();
        let want: Vec<AlphaCrossover> = pairs
            .iter()
            .map(|(x, y)| alpha_crossover(x, y, Scenario::FixedWork))
            .collect();
        for threads in [1, 2, 7] {
            let got = alpha_crossover_batch(
                &focal_engine::Engine::with_threads(threads),
                &pairs,
                Scenario::FixedWork,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn crossover_display_is_readable() {
        let x = dp(1.3, 0.7, 0.7, 1.0);
        let y = DesignPoint::reference();
        let c = alpha_crossover(&x, &y, Scenario::FixedWork);
        assert!(c.to_string().contains("crossover at α = 0.500"));
        assert!(AlphaCrossover::AlwaysBelow.to_string().contains("every α"));
    }
}
