//! The Normalized Carbon Footprint (NCF) metric (§3.4 of the paper).
//!
//! For two designs `X` and `Y`, an E2O weight `α` and a scenario `s`:
//!
//! ```text
//! NCF_fw,α(X, Y) = α · A_X/A_Y + (1 − α) · E_X/E_Y      (fixed-work)
//! NCF_ft,α(X, Y) = α · A_X/A_Y + (1 − α) · P_X/P_Y      (fixed-time)
//! ```
//!
//! `NCF < 1` means `X` incurs a lower footprint than `Y`; `NCF > 1` a higher
//! one.

use crate::design::DesignPoint;
use crate::scenario::Scenario;
use crate::weight::{E2oRange, E2oWeight};
use std::fmt;

/// The result of one NCF evaluation, retaining the embodied and operational
/// ratio terms so reports can show *why* a design wins or loses.
///
/// # Examples
///
/// ```
/// use focal_core::{DesignPoint, E2oWeight, Ncf, Scenario};
///
/// let x = DesignPoint::from_power_perf(1.39, 2.32, 1.75)?; // OoO vs InO
/// let y = DesignPoint::reference();
/// let ncf = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::EMBODIED_DOMINATED);
/// assert!(ncf.value() > 1.0); // OoO is less sustainable than InO
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ncf {
    embodied_ratio: f64,
    operational_ratio: f64,
    weight: E2oWeight,
    scenario: Scenario,
}

impl Ncf {
    /// Evaluates `NCF_s,α(x, y)`.
    pub fn evaluate(x: &DesignPoint, y: &DesignPoint, scenario: Scenario, alpha: E2oWeight) -> Ncf {
        Ncf {
            embodied_ratio: x.area() / y.area(),
            operational_ratio: scenario.operational_ratio(x, y),
            weight: alpha,
            scenario,
        }
    }

    /// Builds an NCF directly from precomputed area and operational ratios.
    ///
    /// Useful when a study works with ratios throughout (e.g. the published
    /// runahead numbers are already relative to the baseline core).
    pub fn from_ratios(
        embodied_ratio: f64,
        operational_ratio: f64,
        scenario: Scenario,
        alpha: E2oWeight,
    ) -> Ncf {
        Ncf {
            embodied_ratio,
            operational_ratio,
            weight: alpha,
            scenario,
        }
    }

    /// The weighted NCF value; `< 1` means `X` has the smaller footprint.
    #[inline]
    pub fn value(&self) -> f64 {
        self.weight.embodied() * self.embodied_ratio
            + self.weight.operational() * self.operational_ratio
    }

    /// The embodied term `A_X / A_Y` before weighting.
    #[inline]
    pub fn embodied_ratio(&self) -> f64 {
        self.embodied_ratio
    }

    /// The operational term (`E_X/E_Y` or `P_X/P_Y`) before weighting.
    #[inline]
    pub fn operational_ratio(&self) -> f64 {
        self.operational_ratio
    }

    /// The weight used for this evaluation.
    #[inline]
    pub fn weight(&self) -> E2oWeight {
        self.weight
    }

    /// The scenario used for this evaluation.
    #[inline]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// `true` if `X` strictly reduces the footprint (NCF < 1 − tolerance).
    #[inline]
    pub fn is_reduction(&self, tolerance: f64) -> bool {
        self.value() < 1.0 - tolerance
    }

    /// `true` if `X` strictly increases the footprint (NCF > 1 + tolerance).
    #[inline]
    pub fn is_increase(&self, tolerance: f64) -> bool {
        self.value() > 1.0 + tolerance
    }

    /// The footprint saving expressed as a percentage: `(1 − NCF) · 100`.
    ///
    /// Positive = reduction (the paper's "reduces the footprint by 39 %"),
    /// negative = increase.
    #[inline]
    pub fn saving_percent(&self) -> f64 {
        (1.0 - self.value()) * 100.0
    }
}

impl fmt::Display for Ncf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NCF_{},{}={:.4}",
            self.scenario.subscript(),
            self.weight.get(),
            self.value()
        )
    }
}

/// NCF evaluated under *both* scenarios for one weight — the input to the
/// strong/weak/less sustainability classification (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcfPair {
    /// NCF under the fixed-work scenario.
    pub fixed_work: Ncf,
    /// NCF under the fixed-time scenario.
    pub fixed_time: Ncf,
}

impl NcfPair {
    /// Evaluates both scenarios for designs `x` vs `y` at weight `alpha`.
    ///
    /// # Examples
    ///
    /// ```
    /// use focal_core::{DesignPoint, E2oWeight, NcfPair};
    ///
    /// let x = DesignPoint::from_power_perf(1.0, 0.9, 1.0)?;
    /// let y = DesignPoint::reference();
    /// let pair = NcfPair::evaluate(&x, &y, E2oWeight::OPERATIONAL_DOMINATED);
    /// assert!(pair.fixed_work.value() < 1.0);
    /// assert!(pair.fixed_time.value() < 1.0);
    /// # Ok::<(), focal_core::ModelError>(())
    /// ```
    pub fn evaluate(x: &DesignPoint, y: &DesignPoint, alpha: E2oWeight) -> NcfPair {
        NcfPair {
            fixed_work: Ncf::evaluate(x, y, Scenario::FixedWork, alpha),
            fixed_time: Ncf::evaluate(x, y, Scenario::FixedTime, alpha),
        }
    }

    /// Returns the NCF for `scenario`.
    pub fn get(&self, scenario: Scenario) -> Ncf {
        match scenario {
            Scenario::FixedWork => self.fixed_work,
            Scenario::FixedTime => self.fixed_time,
        }
    }

    /// The larger (worst-case) of the two NCF values.
    pub fn worst(&self) -> f64 {
        self.fixed_work.value().max(self.fixed_time.value())
    }

    /// The smaller (best-case) of the two NCF values.
    pub fn best(&self) -> f64 {
        self.fixed_work.value().min(self.fixed_time.value())
    }
}

/// An NCF evaluated across an α band, yielding the center value plus the
/// error-bar extremes the paper plots for `α = 0.8 ± 0.1` and `0.2 ± 0.1`.
///
/// NCF is affine in α, so its extrema over a band always occur at the band's
/// endpoints; evaluating low/center/high is exact, not an approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NcfBand {
    /// NCF at the band's lower α.
    pub at_low: Ncf,
    /// NCF at the band's center α.
    pub at_center: Ncf,
    /// NCF at the band's upper α.
    pub at_high: Ncf,
}

impl NcfBand {
    /// Evaluates the NCF at the band's low, center and high α.
    pub fn evaluate(
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        range: E2oRange,
    ) -> NcfBand {
        NcfBand {
            at_low: Ncf::evaluate(x, y, scenario, range.low()),
            at_center: Ncf::evaluate(x, y, scenario, range.center()),
            at_high: Ncf::evaluate(x, y, scenario, range.high()),
        }
    }

    /// The center NCF value.
    pub fn center(&self) -> f64 {
        self.at_center.value()
    }

    /// The smallest NCF value over the band.
    ///
    /// Because NCF is affine in α this is exactly
    /// `min(value(α_low), value(α_high))`.
    pub fn min(&self) -> f64 {
        self.at_low.value().min(self.at_high.value())
    }

    /// The largest NCF value over the band.
    pub fn max(&self) -> f64 {
        self.at_low.value().max(self.at_high.value())
    }

    /// `true` if the NCF stays strictly below 1 over the whole band, i.e.
    /// the footprint reduction is robust to the α uncertainty.
    pub fn robust_reduction(&self, tolerance: f64) -> bool {
        self.max() < 1.0 - tolerance
    }

    /// `true` if the NCF stays strictly above 1 over the whole band.
    pub fn robust_increase(&self, tolerance: f64) -> bool {
        self.min() > 1.0 + tolerance
    }
}

impl fmt::Display for NcfBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NCF_{}={:.4} [{:.4}, {:.4}]",
            self.at_center.scenario().subscript(),
            self.center(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (DesignPoint, DesignPoint) {
        // X: half the area, 1.5x the power, 3x the performance => E = 0.5.
        let x = DesignPoint::from_power_perf(0.5, 1.5, 3.0).unwrap();
        let y = DesignPoint::reference();
        (x, y)
    }

    #[test]
    fn ncf_definition_fixed_work() {
        let (x, y) = xy();
        let alpha = E2oWeight::new(0.8).unwrap();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedWork, alpha);
        // 0.8 * 0.5 + 0.2 * 0.5 = 0.5
        assert!((ncf.value() - 0.5).abs() < 1e-12);
        assert_eq!(ncf.embodied_ratio(), 0.5);
        assert_eq!(ncf.operational_ratio(), 0.5);
    }

    #[test]
    fn ncf_definition_fixed_time() {
        let (x, y) = xy();
        let alpha = E2oWeight::new(0.8).unwrap();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedTime, alpha);
        // 0.8 * 0.5 + 0.2 * 1.5 = 0.7
        assert!((ncf.value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn identical_designs_have_unit_ncf() {
        let y = DesignPoint::reference();
        for scenario in Scenario::ALL {
            for a in [0.0, 0.2, 0.5, 0.8, 1.0] {
                let ncf = Ncf::evaluate(&y, &y, scenario, E2oWeight::new(a).unwrap());
                assert!((ncf.value() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn alpha_one_ignores_operational_axis() {
        let (x, y) = xy();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedTime, E2oWeight::new(1.0).unwrap());
        assert_eq!(ncf.value(), 0.5); // pure area ratio
    }

    #[test]
    fn alpha_zero_ignores_area() {
        let (x, y) = xy();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedTime, E2oWeight::new(0.0).unwrap());
        assert_eq!(ncf.value(), 1.5); // pure power ratio
    }

    #[test]
    fn saving_percent_sign_convention() {
        let (x, y) = xy();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::BALANCED);
        assert!(ncf.saving_percent() > 0.0);
        let ncf_rev = Ncf::evaluate(&y, &x, Scenario::FixedWork, E2oWeight::BALANCED);
        assert!(ncf_rev.saving_percent() < 0.0);
    }

    #[test]
    fn ncf_is_not_symmetric_but_reciprocal_in_ratios() {
        let (x, y) = xy();
        let a = E2oWeight::BALANCED;
        let fwd = Ncf::evaluate(&x, &y, Scenario::FixedWork, a);
        let rev = Ncf::evaluate(&y, &x, Scenario::FixedWork, a);
        assert!((fwd.embodied_ratio() * rev.embodied_ratio() - 1.0).abs() < 1e-12);
        assert!((fwd.operational_ratio() * rev.operational_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_contains_both_scenarios() {
        let (x, y) = xy();
        let pair = NcfPair::evaluate(&x, &y, E2oWeight::EMBODIED_DOMINATED);
        assert_eq!(
            pair.get(Scenario::FixedWork).scenario(),
            Scenario::FixedWork
        );
        assert!((pair.worst() - 0.7).abs() < 1e-12);
        assert!((pair.best() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn band_extremes_at_endpoints() {
        let (x, y) = xy();
        let band = NcfBand::evaluate(&x, &y, Scenario::FixedTime, E2oRange::EMBODIED_DOMINATED);
        // value(α) = α·0.5 + (1−α)·1.5 = 1.5 − α ⇒ decreasing in α.
        assert!((band.max() - (1.5 - 0.7)).abs() < 1e-12);
        assert!((band.min() - (1.5 - 0.9)).abs() < 1e-12);
        assert!((band.center() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn band_robustness_predicates() {
        let (x, y) = xy();
        let band = NcfBand::evaluate(&x, &y, Scenario::FixedWork, E2oRange::EMBODIED_DOMINATED);
        assert!(band.robust_reduction(1e-9));
        assert!(!band.robust_increase(1e-9));
    }

    #[test]
    fn from_ratios_matches_evaluate() {
        let (x, y) = xy();
        let a = E2oWeight::EMBODIED_DOMINATED;
        let direct = Ncf::evaluate(&x, &y, Scenario::FixedWork, a);
        let via_ratios = Ncf::from_ratios(0.5, 0.5, Scenario::FixedWork, a);
        assert!((direct.value() - via_ratios.value()).abs() < 1e-12);
    }

    #[test]
    fn display_includes_subscript() {
        let (x, y) = xy();
        let ncf = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::BALANCED);
        assert!(ncf.to_string().contains("NCF_fw"));
    }
}
