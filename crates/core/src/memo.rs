//! Memoized incremental sweep evaluation.
//!
//! FOCAL's studies evaluate the same expensive sub-results many times:
//! the robustness stage and its scenario-DSL twin rerun identical
//! Monte-Carlo experiments, and overlapping α-grids re-classify the
//! same `(x, y, α)` points. [`SweepMemo`] caches those sub-results
//! across calls so repeated sweeps become lookups.
//!
//! ## Key policy
//!
//! A cache key is the **canonical bit-pattern** of every input that
//! determines the result: each `f64` contributes its `to_bits()` word
//! and discrete inputs (scenario, seed, sample count) contribute one
//! word each. Equal keys therefore imply bit-identical results — the
//! memoized evaluators are pure functions of exactly the fields in the
//! key. Distinct bit-patterns that compare equal as floats (`-0.0` vs
//! `0.0`) get distinct keys; that costs at most a redundant miss, never
//! a wrong hit.
//!
//! ## Invalidation
//!
//! There is none, deliberately: keys capture *all* inputs, so an entry
//! can never go stale — a changed input is a different key. The only
//! ways a cached value could diverge from a fresh evaluation are a
//! model-code change (a new build, which starts with an empty memo) or
//! an armed fault plan; the memoized variants bypass the memo entirely
//! while [`focal_engine::fault::armed`] reports an armed plan so
//! injected faults always reach the real evaluation path.
//!
//! ## Determinism and confinement
//!
//! The table is a plain open-addressed vector — no `HashMap` (banned in
//! determinism crates: iteration order), no interior mutability, no
//! locks or atomics (banned outside `crates/engine`). Callers thread
//! `&mut SweepMemo` through strictly serial call boundaries: lookups
//! happen before an engine fan-out, inserts after it returns, so
//! memo-on and memo-off runs produce byte-identical outputs.

use crate::classify::Sustainability;
use crate::design::DesignPoint;
use crate::scenario::Scenario;
use crate::sensitivity::AlphaCrossover;
use crate::uncertainty::McSummary;
use crate::weight::{E2oRange, E2oWeight};

/// Hit/miss/occupancy counters of one memo table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl MemoStats {
    /// Fraction of lookups answered from the table, in `0.0..=1.0`.
    ///
    /// Defined as `0.0` when no lookups have happened, so callers can
    /// print it unconditionally.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters for every table of a [`SweepMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepMemoStats {
    /// Per-α classification cache.
    pub classify: MemoStats,
    /// α-crossover cache.
    pub crossover: MemoStats,
    /// Monte-Carlo summary cache.
    pub mc: MemoStats,
}

impl SweepMemoStats {
    /// Total hits across all tables.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.classify.hits + self.crossover.hits + self.mc.hits
    }

    /// Total misses across all tables.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.classify.misses + self.crossover.misses + self.mc.misses
    }

    /// Total entries across all tables.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.classify.entries + self.crossover.entries + self.mc.entries
    }

    /// Fraction of all lookups answered from any table, in `0.0..=1.0`
    /// (`0.0` when no lookups have happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// An open-addressed, linear-probing map from fixed-width `[u64; N]`
/// keys to values, with hit/miss counters.
///
/// Capacity is a power of two and load is kept below 7/8, so probing
/// always terminates at a match or an empty slot. Every operation is
/// panic-free by construction (indices are masked, access goes through
/// `get`/`get_mut`).
#[derive(Debug, Clone)]
struct MemoTable<const N: usize, V> {
    /// `None` = empty slot; allocated lazily on first insert.
    slots: Vec<Option<([u64; N], V)>>,
    len: usize,
    hits: u64,
    misses: u64,
}

impl<const N: usize, V: Clone> MemoTable<N, V> {
    const fn new() -> Self {
        MemoTable {
            slots: Vec::new(),
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// FNV-1a over the key words, finished with a 64-bit avalanche so
    /// power-of-two masking sees well-mixed low bits.
    fn hash(key: &[u64; N]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &word in key {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    /// Index of the slot holding `key`, or of the first empty slot on
    /// its probe path. The load invariant guarantees an empty slot
    /// exists; the step bound is pure defense in depth.
    fn probe(&self, key: &[u64; N]) -> usize {
        let mask = self.slots.len().wrapping_sub(1);
        let mut i = (Self::hash(key) as usize) & mask;
        let mut steps = 0usize;
        while steps <= mask {
            match self.slots.get(i) {
                Some(Some((k, _))) if k != key => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
                _ => return i,
            }
        }
        i
    }

    fn lookup(&mut self, key: &[u64; N]) -> Option<V> {
        if self.slots.is_empty() {
            self.misses += 1;
            return None;
        }
        let i = self.probe(key);
        match self.slots.get(i) {
            Some(Some((_, v))) => {
                self.hits += 1;
                Some(v.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Writes `(key, value)` at its probe slot without growth checks.
    fn place(&mut self, key: [u64; N], value: V) {
        let i = self.probe(&key);
        if let Some(slot) = self.slots.get_mut(i) {
            if slot.is_none() {
                self.len += 1;
            }
            *slot = Some((key, value));
        }
    }

    fn insert(&mut self, key: [u64; N], value: V) {
        // Grow at 7/8 load (or on first use) so probing always finds an
        // empty slot.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            let new_cap = if self.slots.is_empty() {
                64
            } else {
                self.slots.len().saturating_mul(2)
            };
            let old = std::mem::take(&mut self.slots);
            self.slots.resize_with(new_cap, || None);
            self.len = 0;
            for (k, v) in old.into_iter().flatten() {
                self.place(k, v);
            }
        }
        self.place(key, value);
    }

    fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.len,
        }
    }
}

/// Canonical key words of one design point: the bit-patterns of its
/// four quantities.
fn design_words(p: &DesignPoint) -> [u64; 4] {
    [
        p.area().get().to_bits(),
        p.power().get().to_bits(),
        p.energy().get().to_bits(),
        p.performance().get().to_bits(),
    ]
}

/// One-word discriminant of a scenario.
fn scenario_word(s: Scenario) -> u64 {
    match s {
        Scenario::FixedWork => 0,
        Scenario::FixedTime => 1,
    }
}

/// The cross-sweep memo: per-α classifications, α-crossovers, and
/// Monte-Carlo summaries, each keyed on the canonical bit-patterns of
/// every input that determines the result (see the module docs).
///
/// # Examples
///
/// ```
/// use focal_core::{DesignPoint, E2oRange, MonteCarloNcf, Scenario, SweepMemo};
/// use focal_engine::Engine;
///
/// let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1)?;
/// let y = DesignPoint::reference();
/// let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 42)?;
/// let engine = Engine::serial();
/// let mut memo = SweepMemo::new();
/// let cold = mc.run_memo_on(&engine, &x, &y, Scenario::FixedWork, 4096, &mut memo)?;
/// let warm = mc.run_memo_on(&engine, &x, &y, Scenario::FixedWork, 4096, &mut memo)?;
/// assert_eq!(cold, warm);
/// assert_eq!(memo.stats().mc.hits, 1);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SweepMemo {
    classify: MemoTable<10, Sustainability>,
    crossover: MemoTable<9, AlphaCrossover>,
    mc: MemoTable<14, McSummary>,
}

impl Default for SweepMemo {
    fn default() -> SweepMemo {
        SweepMemo::new()
    }
}

impl SweepMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> SweepMemo {
        SweepMemo {
            classify: MemoTable::new(),
            crossover: MemoTable::new(),
            mc: MemoTable::new(),
        }
    }

    /// Current hit/miss/occupancy counters of every table.
    #[must_use]
    pub fn stats(&self) -> SweepMemoStats {
        SweepMemoStats {
            classify: self.classify.stats(),
            crossover: self.crossover.stats(),
            mc: self.mc.stats(),
        }
    }

    fn classify_key(
        x: &DesignPoint,
        y: &DesignPoint,
        alpha: E2oWeight,
        tolerance: f64,
    ) -> [u64; 10] {
        let [xa, xp, xe, xs] = design_words(x);
        let [ya, yp, ye, ys] = design_words(y);
        [
            xa,
            xp,
            xe,
            xs,
            ya,
            yp,
            ye,
            ys,
            alpha.get().to_bits(),
            tolerance.to_bits(),
        ]
    }

    pub(crate) fn classify_lookup(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        alpha: E2oWeight,
        tolerance: f64,
    ) -> Option<Sustainability> {
        self.classify
            .lookup(&Self::classify_key(x, y, alpha, tolerance))
    }

    pub(crate) fn classify_insert(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        alpha: E2oWeight,
        tolerance: f64,
        class: Sustainability,
    ) {
        self.classify
            .insert(Self::classify_key(x, y, alpha, tolerance), class);
    }

    fn crossover_key(x: &DesignPoint, y: &DesignPoint, scenario: Scenario) -> [u64; 9] {
        let [xa, xp, xe, xs] = design_words(x);
        let [ya, yp, ye, ys] = design_words(y);
        [xa, xp, xe, xs, ya, yp, ye, ys, scenario_word(scenario)]
    }

    pub(crate) fn crossover_lookup(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
    ) -> Option<AlphaCrossover> {
        self.crossover.lookup(&Self::crossover_key(x, y, scenario))
    }

    pub(crate) fn crossover_insert(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        result: AlphaCrossover,
    ) {
        self.crossover
            .insert(Self::crossover_key(x, y, scenario), result);
    }

    #[allow(clippy::too_many_arguments)]
    fn mc_key(
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        range: E2oRange,
        ratio_uncertainty: f64,
        seed: u64,
        samples: usize,
    ) -> [u64; 14] {
        let [xa, xp, xe, xs] = design_words(x);
        let [ya, yp, ye, ys] = design_words(y);
        [
            xa,
            xp,
            xe,
            xs,
            ya,
            yp,
            ye,
            ys,
            scenario_word(scenario),
            range.low().get().to_bits(),
            range.high().get().to_bits(),
            ratio_uncertainty.to_bits(),
            seed,
            samples as u64,
        ]
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn mc_lookup(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        range: E2oRange,
        ratio_uncertainty: f64,
        seed: u64,
        samples: usize,
    ) -> Option<McSummary> {
        self.mc.lookup(&Self::mc_key(
            x,
            y,
            scenario,
            range,
            ratio_uncertainty,
            seed,
            samples,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn mc_insert(
        &mut self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        range: E2oRange,
        ratio_uncertainty: f64,
        seed: u64,
        samples: usize,
        summary: McSummary,
    ) {
        self.mc.insert(
            Self::mc_key(x, y, scenario, range, ratio_uncertainty, seed, samples),
            summary,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_and_counts() {
        let mut t: MemoTable<2, u64> = MemoTable::new();
        assert_eq!(t.lookup(&[1, 2]), None);
        t.insert([1, 2], 10);
        t.insert([3, 4], 30);
        assert_eq!(t.lookup(&[1, 2]), Some(10));
        assert_eq!(t.lookup(&[3, 4]), Some(30));
        assert_eq!(t.lookup(&[1, 3]), None);
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 2, 2));
    }

    #[test]
    fn insert_overwrites_existing_key() {
        let mut t: MemoTable<1, &str> = MemoTable::new();
        t.insert([7], "a");
        t.insert([7], "b");
        assert_eq!(t.lookup(&[7]), Some("b"));
        assert_eq!(t.stats().entries, 1);
    }

    #[test]
    fn table_survives_growth_past_initial_capacity() {
        let mut t: MemoTable<1, usize> = MemoTable::new();
        for i in 0..1000u64 {
            t.insert([i.wrapping_mul(0x9E37_79B9_7F4A_7C15)], i as usize);
        }
        assert_eq!(t.stats().entries, 1000);
        for i in 0..1000u64 {
            assert_eq!(
                t.lookup(&[i.wrapping_mul(0x9E37_79B9_7F4A_7C15)]),
                Some(i as usize),
                "key {i} lost in growth"
            );
        }
    }

    #[test]
    fn colliding_probe_paths_stay_distinct() {
        // Keys engineered to share low hash bits still resolve by full
        // key comparison.
        let mut t: MemoTable<1, u64> = MemoTable::new();
        for i in 0..128u64 {
            t.insert([i], i * 2);
        }
        for i in 0..128u64 {
            assert_eq!(t.lookup(&[i]), Some(i * 2));
        }
    }

    #[test]
    fn design_point_keys_separate_x_from_y() {
        let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
        let y = DesignPoint::reference();
        let kxy = SweepMemo::crossover_key(&x, &y, Scenario::FixedWork);
        let kyx = SweepMemo::crossover_key(&y, &x, Scenario::FixedWork);
        let kxy_ft = SweepMemo::crossover_key(&x, &y, Scenario::FixedTime);
        assert_ne!(kxy, kyx);
        assert_ne!(kxy, kxy_ft);
    }

    #[test]
    fn stats_totals_sum_tables() {
        let mut memo = SweepMemo::new();
        let x = DesignPoint::reference();
        assert!(memo.crossover_lookup(&x, &x, Scenario::FixedWork).is_none());
        memo.crossover_insert(&x, &x, Scenario::FixedWork, AlphaCrossover::AlwaysOne);
        assert_eq!(
            memo.crossover_lookup(&x, &x, Scenario::FixedWork),
            Some(AlphaCrossover::AlwaysOne)
        );
        let s = memo.stats();
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.entries(), 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
        assert_eq!(SweepMemoStats::default().hit_rate(), 0.0);
        let one_sided = MemoStats {
            hits: 3,
            misses: 0,
            entries: 3,
        };
        assert_eq!(one_sided.hit_rate(), 1.0);
    }
}
