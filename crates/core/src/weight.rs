//! The embodied-to-operational (E2O) weight `α_E2O` and the uncertainty
//! ranges the paper recommends sweeping (§3.3).

use crate::error::{ensure_unit_interval, ModelError, Result};
use std::fmt;

/// The embodied-to-operational weight `α_E2O` ∈ \[0, 1\] (§3.3).
///
/// `α = 1` means the total footprint is entirely embodied; `α = 0` means it
/// is entirely operational. Because the true ratio is uncertain (device
/// class, lifetime, rebound effects, energy mix), analyses should sweep a
/// range — see [`E2oRange`].
///
/// # Examples
///
/// ```
/// use focal_core::E2oWeight;
///
/// let alpha = E2oWeight::new(0.8)?;
/// assert_eq!(alpha.embodied(), 0.8);
/// assert!((alpha.operational() - 0.2).abs() < 1e-12);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct E2oWeight(f64);

impl E2oWeight {
    /// The scenario where the embodied footprint dominates (α = 0.8), which
    /// Gupta et al. \[20\] report for battery-operated mobile devices and
    /// hyperscale-datacenter servers.
    pub const EMBODIED_DOMINATED: E2oWeight = E2oWeight(0.8);

    /// The scenario where the operational footprint dominates (α = 0.2),
    /// reported for always-connected devices.
    pub const OPERATIONAL_DOMINATED: E2oWeight = E2oWeight(0.2);

    /// Equal weighting of embodied and operational footprints (α = 0.5).
    pub const BALANCED: E2oWeight = E2oWeight(0.5);

    /// Creates a weight, validating `alpha ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if `alpha` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(alpha: f64) -> Result<Self> {
        Ok(E2oWeight(ensure_unit_interval("alpha_e2o", alpha)?))
    }

    /// The weight given to the embodied (area) ratio.
    #[inline]
    pub fn embodied(self) -> f64 {
        self.0
    }

    /// The weight given to the operational (energy or power) ratio,
    /// `1 − α`.
    #[inline]
    pub fn operational(self) -> f64 {
        1.0 - self.0
    }

    /// Returns the raw α value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for E2oWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α_E2O={}", self.0)
    }
}

impl Default for E2oWeight {
    /// Defaults to [`E2oWeight::BALANCED`].
    fn default() -> Self {
        E2oWeight::BALANCED
    }
}

impl TryFrom<f64> for E2oWeight {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self> {
        E2oWeight::new(value)
    }
}

/// A symmetric uncertainty band `center ± half_width` for α_E2O, used to
/// draw the paper's error bars and to test classification robustness.
///
/// The paper uses `0.8 ± 0.1` (embodied-dominated) and `0.2 ± 0.1`
/// (operational-dominated).
///
/// # Examples
///
/// ```
/// use focal_core::E2oRange;
///
/// let range = E2oRange::EMBODIED_DOMINATED;
/// assert!((range.low().get() - 0.7).abs() < 1e-12);
/// assert_eq!(range.center().get(), 0.8);
/// assert!((range.high().get() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2oRange {
    center: E2oWeight,
    half_width: f64,
}

impl E2oRange {
    /// `α_E2O ∈ [0.7, 0.9]`, the paper's embodied-dominated band.
    pub const EMBODIED_DOMINATED: E2oRange = E2oRange {
        center: E2oWeight::EMBODIED_DOMINATED,
        half_width: 0.1,
    };

    /// `α_E2O ∈ [0.1, 0.3]`, the paper's operational-dominated band.
    pub const OPERATIONAL_DOMINATED: E2oRange = E2oRange {
        center: E2oWeight::OPERATIONAL_DOMINATED,
        half_width: 0.1,
    };

    /// The full `[0, 1]` band, centered at 0.5 — useful for worst-case
    /// robustness checks.
    pub const FULL: E2oRange = E2oRange {
        center: E2oWeight::BALANCED,
        half_width: 0.5,
    };

    /// Creates a band `center ± half_width`, clamped to remain within
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `center ± half_width` would leave `[0, 1]`, if
    /// `half_width` is negative, or if either value is not finite.
    pub fn new(center: f64, half_width: f64) -> Result<Self> {
        let center_w = E2oWeight::new(center)?;
        if !half_width.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "half_width",
                value: half_width,
            });
        }
        if half_width < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "half_width",
                value: half_width,
                expected: "[0, +inf)",
            });
        }
        if center - half_width < 0.0 || center + half_width > 1.0 {
            return Err(ModelError::Inconsistent {
                constraint: "alpha band center ± half_width must stay within [0, 1]",
            });
        }
        Ok(E2oRange {
            center: center_w,
            half_width,
        })
    }

    /// Creates a band from its inclusive `[low, high]` bounds — the form
    /// scenario files use (`alpha_low`/`alpha_high`).
    ///
    /// # Errors
    ///
    /// Returns an error if the bounds are inverted, leave `[0, 1]`, or
    /// are not finite.
    pub fn from_bounds(low: f64, high: f64) -> Result<Self> {
        for (name, v) in [("alpha low bound", low), ("alpha high bound", high)] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite {
                    parameter: name,
                    value: v,
                });
            }
        }
        if high < low {
            return Err(ModelError::Inconsistent {
                constraint: "alpha band bounds must satisfy low <= high",
            });
        }
        E2oRange::new((low + high) / 2.0, (high - low) / 2.0)
    }

    /// The band's lower bound.
    pub fn low(&self) -> E2oWeight {
        E2oWeight(self.center.0 - self.half_width)
    }

    /// The band's center.
    pub fn center(&self) -> E2oWeight {
        self.center
    }

    /// The band's upper bound.
    pub fn high(&self) -> E2oWeight {
        E2oWeight(self.center.0 + self.half_width)
    }

    /// The band's half-width.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Returns `true` if `alpha` lies inside the band (inclusive).
    pub fn contains(&self, alpha: E2oWeight) -> bool {
        alpha >= self.low() && alpha <= self.high()
    }

    /// Returns `n` evenly spaced weights spanning the band (inclusive of
    /// both endpoints), for grid sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::OutOfRange`] if `n < 2` (a grid needs at
    /// least both endpoints).
    pub fn grid(&self, n: usize) -> Result<Vec<E2oWeight>> {
        if n < 2 {
            return Err(ModelError::OutOfRange {
                parameter: "grid_points",
                value: n as f64,
                expected: "[2, +inf) (a grid needs both endpoints)",
            });
        }
        let lo = self.low().0;
        let hi = self.high().0;
        Ok((0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                E2oWeight(lo + t * (hi - lo))
            })
            .collect())
    }
}

impl fmt::Display for E2oRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α_E2O={}±{}", self.center.0, self.half_width)
    }
}

impl From<E2oWeight> for E2oRange {
    /// A single weight is a zero-width band.
    fn from(w: E2oWeight) -> Self {
        E2oRange {
            center: w,
            half_width: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_validate_domain() {
        assert!(E2oWeight::new(0.0).is_ok());
        assert!(E2oWeight::new(1.0).is_ok());
        assert!(E2oWeight::new(-0.1).is_err());
        assert!(E2oWeight::new(1.1).is_err());
        assert!(E2oWeight::new(f64::NAN).is_err());
    }

    #[test]
    fn embodied_and_operational_sum_to_one() {
        let a = E2oWeight::new(0.35).unwrap();
        assert!((a.embodied() + a.operational() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn paper_scenarios_match() {
        assert_eq!(E2oWeight::EMBODIED_DOMINATED.get(), 0.8);
        assert_eq!(E2oWeight::OPERATIONAL_DOMINATED.get(), 0.2);
        assert!((E2oRange::EMBODIED_DOMINATED.low().get() - 0.7).abs() < 1e-12);
        assert!((E2oRange::EMBODIED_DOMINATED.high().get() - 0.9).abs() < 1e-12);
        assert!((E2oRange::OPERATIONAL_DOMINATED.low().get() - 0.1).abs() < 1e-12);
        assert!((E2oRange::OPERATIONAL_DOMINATED.high().get() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn range_rejects_bands_leaving_unit_interval() {
        assert!(E2oRange::new(0.05, 0.1).is_err());
        assert!(E2oRange::new(0.95, 0.1).is_err());
        assert!(E2oRange::new(0.5, -0.1).is_err());
        assert!(E2oRange::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn grid_spans_band_inclusively() {
        let g = E2oRange::EMBODIED_DOMINATED.grid(5).unwrap();
        assert_eq!(g.len(), 5);
        assert!((g[0].get() - 0.7).abs() < 1e-12);
        assert!((g[4].get() - 0.9).abs() < 1e-12);
        assert!((g[2].get() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn grid_rejects_degenerate_point_counts() {
        for n in [0, 1] {
            let err = E2oRange::FULL.grid(n).unwrap_err();
            assert!(
                matches!(err, ModelError::OutOfRange { parameter, .. } if parameter == "grid_points"),
                "n={n}: {err}"
            );
        }
    }

    #[test]
    fn contains_is_inclusive() {
        let r = E2oRange::OPERATIONAL_DOMINATED;
        assert!(r.contains(E2oWeight::new(0.1).unwrap()));
        assert!(r.contains(E2oWeight::new(0.3).unwrap()));
        assert!(!r.contains(E2oWeight::new(0.31).unwrap()));
    }

    #[test]
    fn zero_width_band_from_weight() {
        let r: E2oRange = E2oWeight::EMBODIED_DOMINATED.into();
        assert_eq!(r.low(), r.high());
        assert_eq!(r.center(), E2oWeight::EMBODIED_DOMINATED);
    }

    #[test]
    fn default_is_balanced() {
        assert_eq!(E2oWeight::default(), E2oWeight::BALANCED);
    }

    #[test]
    fn try_from_roundtrip() {
        let w = E2oWeight::try_from(0.25).unwrap();
        assert_eq!(w.get(), 0.25);
        assert!(E2oWeight::try_from(2.0).is_err());
    }
}
