//! Strong / weak / less sustainability classification (§4 of the paper).

use crate::design::DesignPoint;
use crate::ncf::NcfPair;
use crate::weight::{E2oRange, E2oWeight};
use std::fmt;

/// Default tolerance used when comparing an NCF value against 1.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// The paper's sustainability taxonomy for a design `X` compared to `Y`.
///
/// * [`Strongly`](Sustainability::Strongly) — lower footprint under **both**
///   scenarios (`NCF_fw < 1` and `NCF_ft < 1`): sustainable under all
///   circumstances, even with usage rebound.
/// * [`Weakly`](Sustainability::Weakly) — lower footprint under exactly one
///   scenario: sustainable only under specific circumstances.
/// * [`Less`](Sustainability::Less) — higher footprint under both scenarios.
/// * [`Indifferent`](Sustainability::Indifferent) — at least one NCF is 1
///   within tolerance and the other does not make the comparison strictly
///   worse under both scenarios; the paper's strict inequalities do not
///   apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sustainability {
    /// `NCF_fw < 1` and `NCF_ft < 1`.
    Strongly,
    /// Exactly one of `NCF_fw`, `NCF_ft` is `< 1`.
    Weakly,
    /// `NCF_fw > 1` and `NCF_ft > 1`.
    Less,
    /// A tie (NCF = 1) in at least one scenario, without both scenarios
    /// strictly increasing the footprint.
    Indifferent,
}

impl Sustainability {
    /// Classifies from the two NCF values using strict comparisons with
    /// `tolerance` (see [`DEFAULT_TOLERANCE`]).
    pub fn from_values(ncf_fw: f64, ncf_ft: f64, tolerance: f64) -> Sustainability {
        let below = |v: f64| v < 1.0 - tolerance;
        let above = |v: f64| v > 1.0 + tolerance;
        match (below(ncf_fw), above(ncf_fw), below(ncf_ft), above(ncf_ft)) {
            (true, _, true, _) => Sustainability::Strongly,
            (_, true, _, true) => Sustainability::Less,
            (true, _, _, true) | (_, true, true, _) => Sustainability::Weakly,
            _ => Sustainability::Indifferent,
        }
    }

    /// `true` if the design reduces the footprint under at least one
    /// scenario.
    pub fn is_sustainable_somewhere(self) -> bool {
        matches!(self, Sustainability::Strongly | Sustainability::Weakly)
    }

    /// A short human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Sustainability::Strongly => "strongly sustainable",
            Sustainability::Weakly => "weakly sustainable",
            Sustainability::Less => "less sustainable",
            Sustainability::Indifferent => "indifferent",
        }
    }
}

impl fmt::Display for Sustainability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A full classification outcome: the class plus the NCF pair that produced
/// it, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// The sustainability class.
    pub class: Sustainability,
    /// The NCF values that produced it.
    pub ncf: NcfPair,
}

/// Classifies design `x` against baseline `y` at a single weight `alpha`,
/// using [`DEFAULT_TOLERANCE`].
///
/// # Examples
///
/// ```
/// use focal_core::{classify, DesignPoint, E2oWeight, Sustainability};
///
/// // A die-shrunk design: smaller, lower power, same performance.
/// let x = DesignPoint::from_power_perf(0.5, 0.5, 1.0)?;
/// let y = DesignPoint::reference();
/// let c = classify(&x, &y, E2oWeight::BALANCED);
/// assert_eq!(c.class, Sustainability::Strongly);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn classify(x: &DesignPoint, y: &DesignPoint, alpha: E2oWeight) -> Classification {
    classify_with_tolerance(x, y, alpha, DEFAULT_TOLERANCE)
}

/// Like [`classify`] but with an explicit tolerance for the `NCF = 1` tie
/// band.
pub fn classify_with_tolerance(
    x: &DesignPoint,
    y: &DesignPoint,
    alpha: E2oWeight,
    tolerance: f64,
) -> Classification {
    let ncf = NcfPair::evaluate(x, y, alpha);
    Classification {
        class: Sustainability::from_values(
            ncf.fixed_work.value(),
            ncf.fixed_time.value(),
            tolerance,
        ),
        ncf,
    }
}

/// The outcome of classifying over a grid of α values: is the verdict stable
/// across the whole band, or does it flip?
///
/// §3.5 of the paper: *"if we are reaching similar conclusions across a range
/// of scenarios and embodied-to-operational footprint weights, we can be
/// confident that the conclusions hold true despite the unknowns."*
#[derive(Debug, Clone, PartialEq)]
pub struct RobustClassification {
    /// The classification at the band's center α.
    pub at_center: Sustainability,
    /// Every distinct class observed over the α grid, in first-seen order.
    pub observed: Vec<Sustainability>,
    /// The α grid points and the class at each.
    pub per_alpha: Vec<(E2oWeight, Sustainability)>,
}

impl RobustClassification {
    /// `true` if the same class was observed at every grid point.
    pub fn is_stable(&self) -> bool {
        self.observed.len() == 1
    }

    /// The single stable class, if [`Self::is_stable`].
    pub fn stable_class(&self) -> Option<Sustainability> {
        if self.is_stable() {
            self.observed.first().copied()
        } else {
            None
        }
    }
}

impl fmt::Display for RobustClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_stable() {
            write!(f, "{} (stable across α band)", self.at_center)
        } else {
            write!(
                f,
                "{} at center, but flips across α band ({} classes observed)",
                self.at_center,
                self.observed.len()
            )
        }
    }
}

/// Classifies `x` vs `y` over `grid_points` evenly spaced α values spanning
/// `range`, reporting whether the verdict is robust to the α uncertainty.
///
/// # Errors
///
/// Returns [`crate::ModelError::OutOfRange`] if `grid_points < 2`
/// (propagated from [`E2oRange::grid`]), or
/// [`crate::ModelError::ChunkPoisoned`] if a grid chunk panics.
///
/// # Examples
///
/// ```
/// use focal_core::{classify_over_range, DesignPoint, E2oRange, Sustainability};
///
/// let x = DesignPoint::from_power_perf(0.5, 0.5, 1.0)?;
/// let y = DesignPoint::reference();
/// let robust = classify_over_range(&x, &y, E2oRange::FULL, 11)?;
/// assert_eq!(robust.stable_class(), Some(Sustainability::Strongly));
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn classify_over_range(
    x: &DesignPoint,
    y: &DesignPoint,
    range: E2oRange,
    grid_points: usize,
) -> crate::Result<RobustClassification> {
    classify_over_range_on(&focal_engine::Engine::from_env(), x, y, range, grid_points)
}

/// [`classify_over_range`] on an explicit engine: the α grid is evaluated
/// in parallel with [`focal_engine::Engine::try_par_map`], which preserves
/// grid order, so the result is identical at every thread count.
///
/// # Errors
///
/// See [`classify_over_range`].
pub fn classify_over_range_on(
    engine: &focal_engine::Engine,
    x: &DesignPoint,
    y: &DesignPoint,
    range: E2oRange,
    grid_points: usize,
) -> crate::Result<RobustClassification> {
    let grid = range.grid(grid_points)?;
    let per_alpha: Vec<(E2oWeight, Sustainability)> =
        engine.try_par_map(0, &grid, |&alpha| (alpha, classify(x, y, alpha).class))?;
    let mut observed = Vec::new();
    for (_, class) in &per_alpha {
        if !observed.contains(class) {
            observed.push(*class);
        }
    }
    Ok(RobustClassification {
        at_center: classify(x, y, range.center()).class,
        observed,
        per_alpha,
    })
}

/// [`classify_over_range_on`] with a [`crate::SweepMemo`]: grid points whose
/// `(x, y, α)` classification is already cached are answered from the memo,
/// and only the missing points are fanned out to the engine. The result is
/// byte-identical to the unmemoized call — the per-point classification is a
/// pure function of the cache key.
///
/// While a fault plan is armed (see [`focal_engine::fault::armed`]) the memo
/// is bypassed entirely so injected faults reach the real evaluation path.
///
/// # Errors
///
/// See [`classify_over_range`].
pub fn classify_over_range_memo_on(
    engine: &focal_engine::Engine,
    x: &DesignPoint,
    y: &DesignPoint,
    range: E2oRange,
    grid_points: usize,
    memo: &mut crate::SweepMemo,
) -> crate::Result<RobustClassification> {
    if focal_engine::fault::armed() {
        return classify_over_range_on(engine, x, y, range, grid_points);
    }
    let grid = range.grid(grid_points)?;
    let mut cached: Vec<Option<Sustainability>> = grid
        .iter()
        .map(|&alpha| memo.classify_lookup(x, y, alpha, DEFAULT_TOLERANCE))
        .collect();
    let missing: Vec<E2oWeight> = grid
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(&alpha, _)| alpha)
        .collect();
    let fresh: Vec<(E2oWeight, Sustainability)> = if missing.is_empty() {
        Vec::new()
    } else {
        engine.try_par_map(0, &missing, |&alpha| (alpha, classify(x, y, alpha).class))?
    };
    for &(alpha, class) in &fresh {
        memo.classify_insert(x, y, alpha, DEFAULT_TOLERANCE, class);
    }
    let mut fresh = fresh.into_iter();
    let mut per_alpha = Vec::with_capacity(grid.len());
    for (&alpha, hit) in grid.iter().zip(cached.iter_mut()) {
        let class = match hit.take() {
            Some(class) => class,
            None => {
                fresh
                    .next()
                    .ok_or(crate::ModelError::Inconsistent {
                        constraint: "memoized α grid produced fewer fresh results than misses",
                    })?
                    .1
            }
        };
        per_alpha.push((alpha, class));
    }
    let mut observed = Vec::new();
    for (_, class) in &per_alpha {
        if !observed.contains(class) {
            observed.push(*class);
        }
    }
    let center = range.center();
    let at_center = match memo.classify_lookup(x, y, center, DEFAULT_TOLERANCE) {
        Some(class) => class,
        None => {
            let class = classify(x, y, center).class;
            memo.classify_insert(x, y, center, DEFAULT_TOLERANCE, class);
            class
        }
    };
    Ok(RobustClassification {
        at_center,
        observed,
        per_alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> DesignPoint {
        DesignPoint::reference()
    }

    #[test]
    fn strictly_better_is_strong() {
        // Lower area, lower power, higher perf => lower energy too.
        let x = DesignPoint::from_power_perf(0.8, 0.9, 1.2).unwrap();
        let c = classify(&x, &reference(), E2oWeight::BALANCED);
        assert_eq!(c.class, Sustainability::Strongly);
    }

    #[test]
    fn strictly_worse_is_less() {
        let x = DesignPoint::from_power_perf(1.2, 1.5, 1.0).unwrap();
        let c = classify(&x, &reference(), E2oWeight::BALANCED);
        assert_eq!(c.class, Sustainability::Less);
    }

    #[test]
    fn energy_down_power_up_is_weak() {
        // The classic speculation shape: energy −7 %, power +7 %, tiny area.
        // At α = 0.2: NCF_fw = 0.2·1 + 0.8·0.93 < 1; NCF_ft = 0.2 + 0.8·1.07 > 1.
        let x = DesignPoint::from_raw(1.0, 1.07, 0.93, 1.15).unwrap();
        let c = classify(&x, &reference(), E2oWeight::OPERATIONAL_DOMINATED);
        assert_eq!(c.class, Sustainability::Weakly);
    }

    #[test]
    fn identical_designs_are_indifferent() {
        let y = reference();
        let c = classify(&y, &y, E2oWeight::EMBODIED_DOMINATED);
        assert_eq!(c.class, Sustainability::Indifferent);
    }

    #[test]
    fn tie_in_one_scenario_worse_in_other_is_indifferent_not_weak() {
        // Same energy (tie under fixed-work at α=0), higher power.
        let x = DesignPoint::from_raw(1.0, 2.0, 1.0, 1.0).unwrap();
        let c = classify_with_tolerance(&x, &reference(), E2oWeight::new(0.0).unwrap(), 1e-9);
        // NCF_fw = 1.0 exactly, NCF_ft = 2.0 > 1.
        assert_eq!(c.class, Sustainability::Indifferent);
    }

    #[test]
    fn from_values_truth_table() {
        let t = DEFAULT_TOLERANCE;
        assert_eq!(
            Sustainability::from_values(0.9, 0.9, t),
            Sustainability::Strongly
        );
        assert_eq!(
            Sustainability::from_values(0.9, 1.1, t),
            Sustainability::Weakly
        );
        assert_eq!(
            Sustainability::from_values(1.1, 0.9, t),
            Sustainability::Weakly
        );
        assert_eq!(
            Sustainability::from_values(1.1, 1.1, t),
            Sustainability::Less
        );
        assert_eq!(
            Sustainability::from_values(1.0, 1.0, t),
            Sustainability::Indifferent
        );
        assert_eq!(
            Sustainability::from_values(1.0, 0.9, t),
            Sustainability::Indifferent
        );
        assert_eq!(
            Sustainability::from_values(1.0, 1.1, t),
            Sustainability::Indifferent
        );
    }

    #[test]
    fn tolerance_widens_the_tie_band() {
        assert_eq!(
            Sustainability::from_values(0.999, 0.999, 0.01),
            Sustainability::Indifferent
        );
        assert_eq!(
            Sustainability::from_values(0.999, 0.999, 1e-6),
            Sustainability::Strongly
        );
    }

    #[test]
    fn robust_classification_detects_flips() {
        // Area much smaller, power slightly higher, energy slightly higher:
        // at high α the area savings dominate (strong), at low α the
        // operational increase dominates (less).
        let x = DesignPoint::from_raw(0.3, 1.15, 1.15, 1.0).unwrap();
        let robust = classify_over_range(&x, &reference(), E2oRange::FULL, 21).unwrap();
        assert!(!robust.is_stable());
        assert!(robust.observed.len() >= 2);
        assert_eq!(robust.stable_class(), None);
    }

    #[test]
    fn robust_classification_stable_for_dominant_designs() {
        let x = DesignPoint::from_power_perf(0.5, 0.5, 1.5).unwrap();
        let robust = classify_over_range(&x, &reference(), E2oRange::FULL, 21).unwrap();
        assert!(robust.is_stable());
        assert_eq!(robust.stable_class(), Some(Sustainability::Strongly));
        assert_eq!(robust.per_alpha.len(), 21);
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(Sustainability::Strongly.to_string(), "strongly sustainable");
        assert_eq!(Sustainability::Weakly.label(), "weakly sustainable");
        assert_eq!(Sustainability::Less.label(), "less sustainable");
    }

    #[test]
    fn sustainable_somewhere() {
        assert!(Sustainability::Strongly.is_sustainable_somewhere());
        assert!(Sustainability::Weakly.is_sustainable_somewhere());
        assert!(!Sustainability::Less.is_sustainable_somewhere());
        assert!(!Sustainability::Indifferent.is_sustainable_somewhere());
    }

    #[test]
    fn classification_carries_ncf_pair() {
        let x = DesignPoint::from_power_perf(0.5, 1.5, 3.0).unwrap();
        let c = classify(&x, &reference(), E2oWeight::EMBODIED_DOMINATED);
        assert!((c.ncf.fixed_work.value() - 0.5).abs() < 1e-12);
        assert!((c.ncf.fixed_time.value() - 0.7).abs() < 1e-12);
    }
}
