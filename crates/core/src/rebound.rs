//! Rebound-effect (Jevons' paradox) modeling helpers (§2, §3.7).
//!
//! The paper captures two rebound channels:
//!
//! 1. **Usage rebound** — efficiency gains fill the freed-up time with more
//!    work. This is exactly the fixed-time scenario: no extra machinery is
//!    needed beyond evaluating `NCF_ft`.
//! 2. **Deployment rebound** — efficiency gains increase the number of
//!    devices produced, inflating the *embodied* share of the total
//!    footprint. The paper models this "by changing the embodied-to-
//!    operational weight"; [`deployment_adjusted_weight`] implements that
//!    adjustment.

use crate::error::{ensure_positive, Result};
use crate::weight::E2oWeight;

/// Adjusts an E2O weight for a deployment rebound: if efficiency gains cause
/// `deployment_factor`× as many devices to be manufactured (for the same
/// total operational footprint per device), the embodied share of the total
/// footprint grows accordingly.
///
/// With original embodied share `α` and operational share `1 − α`, scaling
/// the embodied side by `k` gives the adjusted share
///
/// ```text
/// α' = k·α / (k·α + (1 − α))
/// ```
///
/// `deployment_factor = 1` leaves the weight unchanged; factors `> 1` push
/// the weight toward embodied-dominated, which is the direction the paper
/// warns about.
///
/// # Errors
///
/// Returns an error if `deployment_factor` is not strictly positive and
/// finite.
///
/// # Examples
///
/// ```
/// use focal_core::{deployment_adjusted_weight, E2oWeight};
///
/// let base = E2oWeight::OPERATIONAL_DOMINATED; // α = 0.2
/// let adjusted = deployment_adjusted_weight(base, 4.0)?;
/// assert!((adjusted.get() - 0.5).abs() < 1e-12); // 4·0.2 / (4·0.2 + 0.8)
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn deployment_adjusted_weight(alpha: E2oWeight, deployment_factor: f64) -> Result<E2oWeight> {
    let k = ensure_positive("deployment_factor", deployment_factor)?;
    let embodied = k * alpha.embodied();
    let operational = alpha.operational();
    E2oWeight::new(embodied / (embodied + operational))
}

/// Adjusts an E2O weight for a change in device lifetime: a device kept in
/// service `lifetime_factor`× longer accumulates proportionally more
/// operational footprint against the same embodied footprint.
///
/// ```text
/// α' = α / (α + k·(1 − α))
/// ```
///
/// # Errors
///
/// Returns an error if `lifetime_factor` is not strictly positive and
/// finite.
///
/// # Examples
///
/// ```
/// use focal_core::{lifetime_adjusted_weight, E2oWeight};
///
/// // Doubling the lifetime of an embodied-dominated device (α = 0.8)
/// // shifts weight toward operational: α' = 0.8 / (0.8 + 2·0.2) = 2/3.
/// let adjusted = lifetime_adjusted_weight(E2oWeight::EMBODIED_DOMINATED, 2.0)?;
/// assert!((adjusted.get() - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn lifetime_adjusted_weight(alpha: E2oWeight, lifetime_factor: f64) -> Result<E2oWeight> {
    let k = ensure_positive("lifetime_factor", lifetime_factor)?;
    let embodied = alpha.embodied();
    let operational = k * alpha.operational();
    E2oWeight::new(embodied / (embodied + operational))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_factor_is_identity() {
        for a in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let w = E2oWeight::new(a).unwrap();
            assert!((deployment_adjusted_weight(w, 1.0).unwrap().get() - a).abs() < 1e-12);
            assert!((lifetime_adjusted_weight(w, 1.0).unwrap().get() - a).abs() < 1e-12);
        }
    }

    #[test]
    fn deployment_rebound_pushes_toward_embodied() {
        let w = E2oWeight::new(0.3).unwrap();
        let adj = deployment_adjusted_weight(w, 3.0).unwrap();
        assert!(adj.get() > w.get());
    }

    #[test]
    fn longer_lifetime_pushes_toward_operational() {
        let w = E2oWeight::new(0.8).unwrap();
        let adj = lifetime_adjusted_weight(w, 3.0).unwrap();
        assert!(adj.get() < w.get());
    }

    #[test]
    fn extreme_weights_are_fixed_points() {
        // Pure embodied (α = 1) or pure operational (α = 0) cannot shift.
        let one = E2oWeight::new(1.0).unwrap();
        let zero = E2oWeight::new(0.0).unwrap();
        assert_eq!(deployment_adjusted_weight(one, 5.0).unwrap().get(), 1.0);
        assert_eq!(deployment_adjusted_weight(zero, 5.0).unwrap().get(), 0.0);
        assert_eq!(lifetime_adjusted_weight(one, 5.0).unwrap().get(), 1.0);
        assert_eq!(lifetime_adjusted_weight(zero, 5.0).unwrap().get(), 0.0);
    }

    #[test]
    fn deployment_and_lifetime_are_inverse_adjustments() {
        // Scaling embodied by k is the same as scaling operational by 1/k.
        let w = E2oWeight::new(0.4).unwrap();
        let a = deployment_adjusted_weight(w, 2.5).unwrap();
        let b = lifetime_adjusted_weight(w, 1.0 / 2.5).unwrap();
        assert!((a.get() - b.get()).abs() < 1e-12);
    }

    #[test]
    fn invalid_factors_are_rejected() {
        let w = E2oWeight::BALANCED;
        assert!(deployment_adjusted_weight(w, 0.0).is_err());
        assert!(deployment_adjusted_weight(w, -1.0).is_err());
        assert!(lifetime_adjusted_weight(w, f64::NAN).is_err());
    }
}
