//! Use-case scenarios and the operational-footprint proxies they induce
//! (§3.2 and Figure 2 of the paper).

use crate::design::DesignPoint;
use std::fmt;

/// The anticipated use-case scenario, which determines the first-order proxy
/// for the operational footprint.
///
/// * **Fixed-work** — the device performs a fixed amount of work over its
///   lifetime (strong-scaling HPC, a video decoder handling a fixed frame
///   rate). Operational footprint ∝ **energy** per unit of work.
/// * **Fixed-time** — a more efficient device performs *more* work in the
///   same deployed lifetime (weak-scaling HPC, always-on NICs, datacenter
///   machines whose freed-up time is refilled — i.e. the rebound effect of
///   increased usage). Operational footprint ∝ **power**.
///
/// When the use case is unknown at design time both scenarios should be
/// evaluated; the paper's strong/weak/less sustainability taxonomy (§4,
/// implemented in [`crate::classify`]) is built on exactly that comparison.
///
/// # Examples
///
/// ```
/// use focal_core::{DesignPoint, Scenario};
///
/// let x = DesignPoint::from_power_perf(1.0, 2.0, 4.0)?; // E = 0.5
/// assert_eq!(Scenario::FixedWork.operational_proxy(&x), 0.5);
/// assert_eq!(Scenario::FixedTime.operational_proxy(&x), 2.0);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Fixed amount of work over the lifetime; proxy = energy.
    FixedWork,
    /// Fixed deployed time (work expands to fill it); proxy = power.
    FixedTime,
}

impl Scenario {
    /// Both scenarios, in the order the paper presents them.
    pub const ALL: [Scenario; 2] = [Scenario::FixedWork, Scenario::FixedTime];

    /// Extracts the operational-footprint proxy of `design` under this
    /// scenario: energy for fixed-work, power for fixed-time.
    #[inline]
    pub fn operational_proxy(self, design: &DesignPoint) -> f64 {
        match self {
            Scenario::FixedWork => design.energy().get(),
            Scenario::FixedTime => design.power().get(),
        }
    }

    /// The dimensionless ratio of operational proxies `x / y` under this
    /// scenario — the second term of the NCF definition.
    #[inline]
    pub fn operational_ratio(self, x: &DesignPoint, y: &DesignPoint) -> f64 {
        match self {
            Scenario::FixedWork => x.energy() / y.energy(),
            Scenario::FixedTime => x.power() / y.power(),
        }
    }

    /// A short lowercase label (`"fixed-work"` / `"fixed-time"`) used in
    /// reports and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::FixedWork => "fixed-work",
            Scenario::FixedTime => "fixed-time",
        }
    }

    /// The abbreviated subscript the paper uses (`fw` / `ft`).
    pub fn subscript(self) -> &'static str {
        match self {
            Scenario::FixedWork => "fw",
            Scenario::FixedTime => "ft",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(power: f64, perf: f64) -> DesignPoint {
        DesignPoint::from_power_perf(1.0, power, perf).unwrap()
    }

    #[test]
    fn fixed_work_proxy_is_energy() {
        let d = design(3.0, 2.0);
        assert_eq!(Scenario::FixedWork.operational_proxy(&d), 1.5);
    }

    #[test]
    fn fixed_time_proxy_is_power() {
        let d = design(3.0, 2.0);
        assert_eq!(Scenario::FixedTime.operational_proxy(&d), 3.0);
    }

    #[test]
    fn operational_ratio_matches_proxies() {
        let x = design(2.0, 4.0); // E = 0.5
        let y = design(1.0, 1.0); // E = 1.0
        assert_eq!(Scenario::FixedWork.operational_ratio(&x, &y), 0.5);
        assert_eq!(Scenario::FixedTime.operational_ratio(&x, &y), 2.0);
    }

    /// Figure 2 of the paper: design Y is faster but hungrier than design X.
    /// Under fixed-work the winner is decided by energy; under fixed-time by
    /// power.
    #[test]
    fn figure2_semantics() {
        let x = design(1.0, 1.0); // slow, frugal: E = 1.0
        let y = design(1.8, 2.0); // fast, hungry:  E = 0.9

        // Fixed-work: Y finishes the same work with less energy -> Y wins.
        assert!(Scenario::FixedWork.operational_ratio(&y, &x) < 1.0);
        // Fixed-time: Y fills the freed time with extra work, so its higher
        // power dominates -> X wins.
        assert!(Scenario::FixedTime.operational_ratio(&y, &x) > 1.0);
    }

    #[test]
    fn labels_and_subscripts() {
        assert_eq!(Scenario::FixedWork.label(), "fixed-work");
        assert_eq!(Scenario::FixedTime.subscript(), "ft");
        assert_eq!(Scenario::FixedWork.to_string(), "fixed-work");
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(Scenario::ALL.len(), 2);
        assert_ne!(Scenario::ALL[0], Scenario::ALL[1]);
    }
}
