//! Fleet-level NCF aggregation.
//!
//! A design change rarely ships into a single use case: a processor lands
//! in laptops (embodied-dominated, fixed-work-ish), datacenters
//! (operational-leaning, rebound-prone) and embedded roles at once. A
//! [`Fleet`] aggregates NCF over such a mix — each segment carrying its
//! own α weight, scenario blend and share of the fleet's total footprint
//! — answering the question the paper's per-scenario analysis builds
//! toward: *does this design reduce the footprint of everything we will
//! actually ship?*

use crate::design::DesignPoint;
use crate::error::{ensure_unit_interval, ModelError, Result};
use crate::ncf::Ncf;
use crate::scenario::Scenario;
use crate::weight::E2oWeight;
use std::fmt;

/// One deployment segment of a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment name for reports.
    pub name: String,
    /// This segment's share of the fleet's total footprint, in `[0, 1]`.
    pub share: f64,
    /// The segment's embodied-to-operational weight.
    pub alpha: E2oWeight,
    /// Fraction of this segment's usage that behaves fixed-time
    /// (rebound-prone); the rest is fixed-work.
    pub fixed_time_share: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Errors
    ///
    /// Returns an error if `share` or `fixed_time_share` leaves `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        share: f64,
        alpha: E2oWeight,
        fixed_time_share: f64,
    ) -> Result<Self> {
        Ok(Segment {
            name: name.into(),
            share: ensure_unit_interval("segment share", share)?,
            alpha,
            fixed_time_share: ensure_unit_interval("fixed-time share", fixed_time_share)?,
        })
    }

    /// This segment's NCF for `x` vs `y`: the scenario-blended value at
    /// the segment's α.
    pub fn ncf(&self, x: &DesignPoint, y: &DesignPoint) -> f64 {
        let fw = Ncf::evaluate(x, y, Scenario::FixedWork, self.alpha).value();
        let ft = Ncf::evaluate(x, y, Scenario::FixedTime, self.alpha).value();
        (1.0 - self.fixed_time_share) * fw + self.fixed_time_share * ft
    }
}

/// A fleet: a set of segments whose shares sum to 1.
///
/// # Examples
///
/// ```
/// use focal_core::{DesignPoint, E2oWeight, Fleet, Segment};
///
/// let fleet = Fleet::new(vec![
///     Segment::new("laptops", 0.5, E2oWeight::EMBODIED_DOMINATED, 0.2)?,
///     Segment::new("servers", 0.3, E2oWeight::OPERATIONAL_DOMINATED, 0.9)?,
///     Segment::new("embedded", 0.2, E2oWeight::BALANCED, 0.0)?,
/// ])?;
/// let x = DesignPoint::from_power_perf(0.9, 0.9, 1.1)?;
/// let y = DesignPoint::reference();
/// assert!(fleet.ncf(&x, &y) < 1.0); // wins across the whole fleet
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    segments: Vec<Segment>,
}

impl Fleet {
    /// Creates a fleet, validating that the shares sum to 1 (±1e-6).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty segment list or shares that do not
    /// sum to 1.
    pub fn new(segments: Vec<Segment>) -> Result<Self> {
        if segments.is_empty() {
            return Err(ModelError::Inconsistent {
                constraint: "a fleet needs at least one segment",
            });
        }
        let total: f64 = segments.iter().map(|s| s.share).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(ModelError::Inconsistent {
                constraint: "fleet segment shares must sum to 1",
            });
        }
        Ok(Fleet { segments })
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The fleet-aggregate NCF: the share-weighted sum of segment NCFs.
    pub fn ncf(&self, x: &DesignPoint, y: &DesignPoint) -> f64 {
        self.segments.iter().map(|s| s.share * s.ncf(x, y)).sum()
    }

    /// Per-segment NCFs, for reports.
    pub fn per_segment_ncf(&self, x: &DesignPoint, y: &DesignPoint) -> Vec<(&str, f64)> {
        self.segments
            .iter()
            .map(|s| (s.name.as_str(), s.ncf(x, y)))
            .collect()
    }

    /// The NCF of the named segment alone (dimensionless, normalized to
    /// the reference design `y`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Inconsistent`] if no segment has that name,
    /// so callers never need a panicking `find(…).unwrap()` lookup.
    pub fn segment_ncf(&self, name: &str, x: &DesignPoint, y: &DesignPoint) -> Result<f64> {
        self.segments
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ncf(x, y))
            .ok_or(ModelError::Inconsistent {
                constraint: "fleet has no segment with the requested name",
            })
    }

    /// `true` if the design reduces the footprint in *every* segment —
    /// the fleet-level analogue of strong sustainability.
    pub fn wins_every_segment(&self, x: &DesignPoint, y: &DesignPoint, tolerance: f64) -> bool {
        self.segments.iter().all(|s| s.ncf(x, y) < 1.0 - tolerance)
    }
}

impl fmt::Display for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet of {} segments (", self.segments.len())?;
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {:.0}%", s.name, s.share * 100.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        Fleet::new(vec![
            Segment::new("laptops", 0.5, E2oWeight::EMBODIED_DOMINATED, 0.2).unwrap(),
            Segment::new("servers", 0.3, E2oWeight::OPERATIONAL_DOMINATED, 0.9).unwrap(),
            Segment::new("embedded", 0.2, E2oWeight::BALANCED, 0.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_shares() {
        assert!(Fleet::new(vec![]).is_err());
        assert!(Fleet::new(vec![
            Segment::new("a", 0.5, E2oWeight::BALANCED, 0.0).unwrap(),
            Segment::new("b", 0.4, E2oWeight::BALANCED, 0.0).unwrap(),
        ])
        .is_err());
        assert!(Segment::new("a", 1.5, E2oWeight::BALANCED, 0.0).is_err());
        assert!(Segment::new("a", 0.5, E2oWeight::BALANCED, -0.1).is_err());
    }

    #[test]
    fn identical_designs_have_unit_fleet_ncf() {
        let y = DesignPoint::reference();
        assert!((fleet().ncf(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fleet_ncf_is_share_weighted_sum() {
        let x = DesignPoint::from_power_perf(1.2, 0.8, 1.1).unwrap();
        let y = DesignPoint::reference();
        let f = fleet();
        let manual: f64 = f
            .per_segment_ncf(&x, &y)
            .iter()
            .zip(f.segments())
            .map(|((_, ncf), s)| s.share * ncf)
            .sum();
        assert!((f.ncf(&x, &y) - manual).abs() < 1e-12);
    }

    #[test]
    fn dominant_design_wins_every_segment() {
        let x = DesignPoint::from_power_perf(0.8, 0.8, 1.1).unwrap();
        let y = DesignPoint::reference();
        assert!(fleet().wins_every_segment(&x, &y, 1e-9));
    }

    #[test]
    fn rebound_prone_design_loses_the_server_segment() {
        // PRE-like: saves energy, burns power. The server segment (90%
        // fixed-time) punishes it even though laptops like it.
        let x = DesignPoint::from_raw(1.005, 1.29, 0.93, 1.38).unwrap();
        let y = DesignPoint::reference();
        let f = fleet();
        let servers = f.segment_ncf("servers", &x, &y).expect("segment exists");
        let laptops = f.segment_ncf("laptops", &x, &y).expect("segment exists");
        assert!(servers > 1.0, "servers {servers}");
        assert!(laptops < 1.005, "laptops {laptops}");
        assert!(!f.wins_every_segment(&x, &y, 1e-9));
    }

    #[test]
    fn segment_ncf_matches_per_segment_and_rejects_unknown_names() {
        let x = DesignPoint::from_power_perf(1.2, 0.8, 1.1).unwrap();
        let y = DesignPoint::reference();
        let f = fleet();
        for (name, ncf) in f.per_segment_ncf(&x, &y) {
            let looked_up = f.segment_ncf(name, &x, &y).expect("segment exists");
            assert!((looked_up - ncf).abs() < 1e-15, "{name}");
        }
        assert!(f.segment_ncf("mainframes", &x, &y).is_err());
    }

    #[test]
    fn single_segment_fleet_matches_blended_ncf() {
        let seg = Segment::new("only", 1.0, E2oWeight::OPERATIONAL_DOMINATED, 0.3).unwrap();
        let f = Fleet::new(vec![seg]).unwrap();
        let x = DesignPoint::from_power_perf(1.1, 0.9, 1.2).unwrap();
        let y = DesignPoint::reference();
        let blended =
            crate::sensitivity::blended_ncf(&x, &y, E2oWeight::OPERATIONAL_DOMINATED, 0.3).unwrap();
        assert!((f.ncf(&x, &y) - blended).abs() < 1e-12);
    }

    #[test]
    fn display_lists_segments() {
        let s = fleet().to_string();
        assert!(s.contains("laptops 50%"));
        assert!(s.contains("servers 30%"));
    }
}
