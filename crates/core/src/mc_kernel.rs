//! The SoA-vectorized Monte-Carlo sampling kernel behind
//! [`MonteCarloNcf`](crate::MonteCarloNcf).
//!
//! The sampling semantics are fixed by `uncertainty.rs`: chunk `c` draws
//! from `StdRng::seed_from_u64(seed + c)` in the per-sample order
//! *alpha, a-jitter, o-jitter*, and the summary is computed from the
//! sorted multiset of fused values. This module exploits the second
//! fact: because [`MonteCarloNcf::run_on`](crate::MonteCarloNcf::run_on)
//! sorts before any statistic is taken, the kernel is free to emit
//! samples in a *permuted buffer layout* as long as the multiset of
//! values — and the logical index attributed to any non-finite value —
//! is exactly the scalar kernel's.
//!
//! Layout: work units of [`MC_GROUP_CHUNKS`] = 8 consecutive chunks
//! advance their eight RNG streams in lockstep
//! ([`rand::rngs::Lockstep8`]), in register blocks of [`BLOCK`] samples
//! per lane. Each block fills one raw `[step][lane]` word buffer and
//! then fuses it in a single merged convert+combine pass writing
//! `out[i * 8 + l]` = sample `i` of the unit's chunk `l` — a
//! lane-interleaved layout with no transpose step. Both passes are
//! 8-wide data-parallel loops that LLVM autovectorizes when compiled
//! with AVX2/AVX-512 `#[target_feature]` wrappers; the ISA is picked at
//! runtime per process. Below AVX2 the interleaved layout loses to the
//! scalar loop (measured ~0.66× at baseline SSE2), so the kernel then
//! keeps the scalar per-chunk path for every unit.
//!
//! Bit-identity is pinned three ways: `rand`'s own lockstep-vs-serial
//! stream test, this module's unit tests (per-logical-index equality of
//! the lockstep and scalar unit fills), and `focal-core`'s differential
//! proptests (whole-summary equality across seeds, sample counts and
//! thread counts).

use focal_engine::chunk_seed;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::{Lockstep8, StdRng};
use rand::SeedableRng;

use crate::uncertainty::MC_CHUNK_SAMPLES;

/// Monte-Carlo chunks advanced in lockstep per engine work unit.
///
/// Eight chunk streams fill one unit so the lockstep RNG update maps
/// onto one 8×64-bit vector register at AVX-512 (two at AVX2). Like
/// [`MC_CHUNK_SAMPLES`], this is a layout constant only: the sampled
/// values, and every summary derived from them, are independent of it.
pub const MC_GROUP_CHUNKS: usize = 8;

/// Lane count of the lockstep kernel (alias of [`MC_GROUP_CHUNKS`]).
const LANES: usize = MC_GROUP_CHUNKS;

/// Samples per lane per register block. Divides [`MC_CHUNK_SAMPLES`];
/// 256 keeps the raw word buffer (3 × 256 × 8 × 8 B = 48 KiB) and the
/// output block L1/L2-resident while amortizing loop overhead.
const BLOCK: usize = 256;

/// Hoisted per-run sampling parameters shared by every chunk: the two
/// sampling distributions and the deterministic NCF ratios.
#[derive(Debug, Clone, Copy)]
pub(crate) struct McParams {
    /// α distribution over the run's [`E2oRange`](crate::E2oRange).
    pub alpha: Uniform<f64>,
    /// Multiplicative ratio jitter, `[1 − u, 1 + u]`.
    pub jitter: Uniform<f64>,
    /// Embodied proxy ratio `area(x) / area(y)`.
    pub a_ratio: f64,
    /// Operational proxy ratio under the run's scenario.
    pub o_ratio: f64,
}

impl McParams {
    /// Draws one fused NCF sample in the canonical order: alpha,
    /// a-jitter, o-jitter. This *is* the sampling semantics — every
    /// other path in this module must reproduce its stream and its
    /// float evaluation order bit-exactly.
    #[inline(always)]
    pub(crate) fn sample(&self, rng: &mut StdRng) -> f64 {
        let alpha = self.alpha.sample(rng);
        let a = self.a_ratio * self.jitter.sample(rng);
        let o = self.o_ratio * self.jitter.sample(rng);
        alpha * a + (1.0 - alpha) * o
    }

    /// The identical fuse applied to three pre-drawn raw words (same
    /// word-to-value transform via [`Uniform::from_u64`], same
    /// operation order, hence bit-identical results).
    #[inline(always)]
    fn fuse(&self, word_alpha: u64, word_a: u64, word_o: u64) -> f64 {
        let alpha = self.alpha.from_u64(word_alpha);
        let a = self.a_ratio * self.jitter.from_u64(word_a);
        let o = self.o_ratio * self.jitter.from_u64(word_o);
        alpha * a + (1.0 - alpha) * o
    }
}

/// Whether full units take the lane-interleaved lockstep path on this
/// machine. `false` means every unit is filled in logical order by the
/// scalar path (the layout helpers below degenerate to identity).
#[inline]
pub(crate) fn lockstep_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The instruction set the kernel dispatches to on this machine:
/// `"avx512"`, `"avx2"`, or `"scalar"`. Benchmarks use this to pick the
/// speedup threshold the SoA kernel is held to (the interleaved layout
/// only pays off from AVX2 up).
#[must_use]
pub fn mc_kernel_isa() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "scalar"
}

/// Number of *lockstep-eligible* units: units whose output slice spans
/// exactly [`MC_GROUP_CHUNKS`] full chunks. The trailing unit (short
/// chunk count and/or short last chunk) always takes the scalar path.
#[inline]
fn full_units(samples: usize) -> usize {
    samples / (LANES * MC_CHUNK_SAMPLES)
}

/// Logical (draw-order) sample index of buffer position `pos`, given
/// whether full units were filled lane-interleaved. Position `p` inside
/// full unit `u` holds sample `i = (p mod 32768) / 8` of the unit's
/// lane `l = p mod 8`, i.e. logical index `(u·8 + l)·4096 + i`.
#[inline]
pub(crate) fn logical_index(pos: usize, samples: usize, interleaved: bool) -> usize {
    let unit_items = LANES * MC_CHUNK_SAMPLES;
    let unit = pos / unit_items;
    if !interleaved || unit >= full_units(samples) {
        return pos;
    }
    let rem = pos % unit_items;
    let i = rem / LANES;
    let l = rem % LANES;
    unit * unit_items + l * MC_CHUNK_SAMPLES + i
}

/// Inverse of [`logical_index`]: the buffer position holding logical
/// sample `index`.
#[inline]
pub(crate) fn buffer_index(index: usize, samples: usize, interleaved: bool) -> usize {
    let unit_items = LANES * MC_CHUNK_SAMPLES;
    let unit = index / unit_items;
    if !interleaved || unit >= full_units(samples) {
        return index;
    }
    let rem = index % unit_items;
    let l = rem / MC_CHUNK_SAMPLES;
    let i = rem % MC_CHUNK_SAMPLES;
    unit * unit_items + i * LANES + l
}

/// Fills one engine work unit's output slice with the fused samples of
/// chunks `c0 .. c0 + out.len().div_ceil(MC_CHUNK_SAMPLES)`.
///
/// Full units go through the lockstep SoA path when
/// [`lockstep_enabled`] (lane-interleaved layout); every other case —
/// partial units, non-x86 targets, pre-AVX2 machines — is filled by the
/// scalar per-chunk loop in logical order.
pub(crate) fn fill_unit(seed: u64, c0: usize, params: &McParams, out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if out.len() == LANES * MC_CHUNK_SAMPLES {
        let mut seeds = [0u64; LANES];
        for (l, s) in seeds.iter_mut().enumerate() {
            *s = chunk_seed(seed, c0 + l);
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            // SAFETY: the required features were just verified at runtime.
            unsafe { fill_lockstep_avx512(&seeds, params, out) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just verified at runtime.
            unsafe { fill_lockstep_avx2(&seeds, params, out) };
            return;
        }
    }
    fill_scalar_unit(seed, c0, params, out);
}

/// Scalar reference fill for one unit: each chunk's stream is drawn by
/// its own serial `StdRng`, samples land in logical order. This is the
/// exact per-sample loop the pre-SoA implementation ran.
pub(crate) fn fill_scalar_unit(seed: u64, c0: usize, params: &McParams, out: &mut [f64]) {
    for (k, chunk_out) in out.chunks_mut(MC_CHUNK_SAMPLES).enumerate() {
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, c0 + k));
        for v in chunk_out.iter_mut() {
            *v = params.sample(&mut rng);
        }
    }
}

/// AVX-512 instantiation of the lockstep fill. The `#[target_feature]`
/// wrapper lets LLVM vectorize the `#[inline(always)]` body (including
/// the cross-crate-inlined [`Lockstep8::fill_interleaved`]) with
/// 8×64-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(
    enable = "avx512f",
    enable = "avx512dq",
    enable = "avx512vl",
    enable = "avx2"
)]
unsafe fn fill_lockstep_avx512(seeds: &[u64; LANES], params: &McParams, out: &mut [f64]) {
    fill_lockstep_body(seeds, params, out);
}

/// AVX2 instantiation of the lockstep fill (4×64-bit vectors).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_lockstep_avx2(seeds: &[u64; LANES], params: &McParams, out: &mut [f64]) {
    fill_lockstep_body(seeds, params, out);
}

/// The lockstep SoA kernel body, shared by every ISA instantiation.
///
/// Per block: one interleaved `[step][lane]` RNG fill of `3 · BLOCK`
/// lockstep steps, then one merged convert+fuse pass reading the three
/// words of sample `i`, lane `l` at strides `(3i + k)·8 + l` and
/// writing `out[i·8 + l]` directly — the draw *stream* per lane is
/// exactly the serial chunk's (alpha, a-jitter, o-jitter per sample),
/// only the destination layout is permuted.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn fill_lockstep_body(seeds: &[u64; LANES], params: &McParams, out: &mut [f64]) {
    let mut rng = Lockstep8::from_seeds(seeds);
    let mut raw = [0u64; 3 * BLOCK * LANES];
    for block_out in out.chunks_exact_mut(BLOCK * LANES) {
        rng.fill_interleaved(&mut raw);
        for (i, sample_out) in block_out.chunks_exact_mut(LANES).enumerate() {
            for (l, slot) in sample_out.iter_mut().enumerate() {
                *slot = params.fuse(
                    raw[(3 * i) * LANES + l],
                    raw[(3 * i + 1) * LANES + l],
                    raw[(3 * i + 2) * LANES + l],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> McParams {
        McParams {
            alpha: Uniform::new_inclusive(0.2, 0.8),
            jitter: Uniform::new_inclusive(0.9, 1.1),
            a_ratio: 0.7777,
            o_ratio: 0.8182,
        }
    }

    #[test]
    fn lockstep_unit_matches_scalar_unit_per_logical_index() {
        let p = params();
        let unit = LANES * MC_CHUNK_SAMPLES;
        let mut soa = vec![0.0f64; unit];
        let mut scalar = vec![0.0f64; unit];
        fill_unit(42, 8, &p, &mut soa);
        fill_scalar_unit(42, 8, &p, &mut scalar);
        let interleaved = lockstep_enabled();
        let samples = 2 * unit; // this unit is "full" either way
        for (pos, v) in soa.iter().enumerate() {
            // fill_unit writes one unit, so its positions map as unit 0
            // of a larger run would.
            let logical = logical_index(pos, samples, interleaved);
            assert_eq!(
                v.to_bits(),
                scalar[logical].to_bits(),
                "pos {pos} -> logical {logical}"
            );
        }
    }

    #[test]
    fn partial_units_are_always_logical_order() {
        let p = params();
        let len = 3 * MC_CHUNK_SAMPLES + 17;
        let mut a = vec![0.0f64; len];
        let mut b = vec![0.0f64; len];
        fill_unit(7, 0, &p, &mut a);
        fill_scalar_unit(7, 0, &p, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn index_maps_are_inverse_bijections() {
        let samples = 2 * LANES * MC_CHUNK_SAMPLES + 3 * MC_CHUNK_SAMPLES + 123;
        for interleaved in [false, true] {
            let mut seen = vec![false; samples];
            for pos in 0..samples {
                let g = logical_index(pos, samples, interleaved);
                assert!(g < samples, "pos {pos} -> {g} out of range");
                assert_eq!(buffer_index(g, samples, interleaved), pos, "pos {pos}");
                assert!(!seen[g], "logical index {g} hit twice");
                seen[g] = true;
            }
            if !interleaved {
                // Without interleaving the map is the identity.
                assert_eq!(logical_index(1234, samples, false), 1234);
            }
        }
    }

    #[test]
    fn tail_positions_map_to_themselves_even_when_interleaved() {
        let samples = LANES * MC_CHUNK_SAMPLES + 5 * MC_CHUNK_SAMPLES + 99;
        for pos in LANES * MC_CHUNK_SAMPLES..samples {
            assert_eq!(logical_index(pos, samples, true), pos);
            assert_eq!(buffer_index(pos, samples, true), pos);
        }
    }

    #[test]
    fn isa_report_is_consistent_with_lockstep_gate() {
        let isa = mc_kernel_isa();
        assert!(["avx512", "avx2", "scalar"].contains(&isa));
        assert_eq!(lockstep_enabled(), isa != "scalar");
    }
}
