//! Uncertainty quantification for NCF analyses.
//!
//! FOCAL's raison d'être is *inherent data uncertainty* (§2): the model is
//! deliberately parameterized so that conclusions can be tested against
//! ranges of unknowns. This module provides two tools:
//!
//! * [`Interval`] — conservative interval arithmetic, used to propagate
//!   worst-case bounds through NCF expressions analytically.
//! * [`MonteCarloNcf`] — Monte-Carlo sampling of the α weight (and,
//!   optionally, jitter on the proxy ratios) yielding distributional
//!   summaries such as "probability that the design reduces the footprint".

use crate::design::DesignPoint;
use crate::error::{ensure_finite, ensure_positive, ModelError, Result};
use crate::mc_kernel::{self, McParams, MC_GROUP_CHUNKS};
use crate::ncf::Ncf;
use crate::scenario::Scenario;
use crate::weight::E2oRange;
use focal_engine::{chunk_count, chunk_seed, Engine};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Samples drawn per Monte-Carlo chunk.
///
/// The chunk geometry is part of the *sampling semantics*, not a tuning
/// knob: chunk `c` draws its `StdRng` from `seed + c` (see
/// [`focal_engine::chunk_seed`]) and chunks concatenate in index order,
/// which is what makes [`MonteCarloNcf`] results bit-identical at every
/// thread count. Changing this constant changes the sampled values the
/// same way changing the seed would.
pub const MC_CHUNK_SAMPLES: usize = 4096;

/// A closed interval `[lo, hi]` with conservative (outward-rounding-free)
/// arithmetic for the operations NCF needs: addition, scaling by a
/// non-negative constant, multiplication and division of positive
/// intervals.
///
/// # Examples
///
/// ```
/// use focal_core::Interval;
///
/// let a = Interval::new(2.0, 3.0)?;
/// let b = Interval::new(1.0, 2.0)?;
/// let q = a.div(b)?;
/// assert_eq!(q.lo(), 1.0);
/// assert_eq!(q.hi(), 3.0);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either bound is not finite or if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        let lo = ensure_finite("interval lo", lo)?;
        let hi = ensure_finite("interval hi", hi)?;
        if lo > hi {
            return Err(ModelError::Inconsistent {
                constraint: "interval lower bound must not exceed upper bound",
            });
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[v, v]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `v` is not finite.
    pub fn point(v: f64) -> Result<Self> {
        Interval::new(v, v)
    }

    /// Lower bound.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi − lo`.
    #[inline]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// `true` if `v` lies inside the interval (inclusive).
    #[inline]
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval sum.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Scales by a non-negative constant.
    ///
    /// # Errors
    ///
    /// Returns an error if `k` is negative or not finite.
    pub fn scale(self, k: f64) -> Result<Interval> {
        let k = ensure_finite("scale factor", k)?;
        if k < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "scale factor",
                value: k,
                expected: "[0, +inf)",
            });
        }
        Ok(Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        })
    }

    /// Product of two positive intervals.
    ///
    /// (Named `mul` rather than implementing `std::ops::Mul` because the
    /// operation is fallible.)
    ///
    /// # Errors
    ///
    /// Returns an error if either interval extends to non-positive values
    /// (the general sign-case product is not needed by the NCF model and is
    /// deliberately not implemented).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Interval) -> Result<Interval> {
        ensure_positive("interval lo (mul)", self.lo.min(other.lo))?;
        Ok(Interval {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
        })
    }

    /// Quotient of two positive intervals.
    ///
    /// # Errors
    ///
    /// Returns an error if either interval extends to non-positive values.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Interval) -> Result<Interval> {
        ensure_positive("interval lo (div)", self.lo.min(other.lo))?;
        Ok(Interval {
            lo: self.lo / other.hi,
            hi: self.hi / other.lo,
        })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Computes the exact NCF interval over an α band with optional
/// multiplicative uncertainty on the two proxy ratios.
///
/// NCF is affine in α and monotone in each ratio, so the interval is exact:
/// the extrema occur at corner combinations of `(α, embodied, operational)`.
///
/// # Errors
///
/// Returns an error if `ratio_uncertainty` is negative, not finite, or ≥ 1
/// (a ±100 % ratio error would make the lower ratio non-positive).
///
/// # Examples
///
/// ```
/// use focal_core::{ncf_interval, DesignPoint, E2oRange, Scenario};
///
/// let x = DesignPoint::from_power_perf(0.5, 0.5, 1.0)?;
/// let y = DesignPoint::reference();
/// let iv = ncf_interval(&x, &y, Scenario::FixedWork, E2oRange::EMBODIED_DOMINATED, 0.05)?;
/// assert!(iv.hi() < 1.0); // robustly sustainable even with 5% ratio error
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn ncf_interval(
    x: &DesignPoint,
    y: &DesignPoint,
    scenario: Scenario,
    range: E2oRange,
    ratio_uncertainty: f64,
) -> Result<Interval> {
    let u = ensure_finite("ratio_uncertainty", ratio_uncertainty)?;
    if !(0.0..1.0).contains(&u) {
        return Err(ModelError::OutOfRange {
            parameter: "ratio_uncertainty",
            value: u,
            expected: "[0, 1)",
        });
    }
    let a_ratio = x.area() / y.area();
    let o_ratio = scenario.operational_ratio(x, y);
    let a_iv = Interval::new(a_ratio * (1.0 - u), a_ratio * (1.0 + u))?;
    let o_iv = Interval::new(o_ratio * (1.0 - u), o_ratio * (1.0 + u))?;

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for alpha in [range.low(), range.high()] {
        for a in [a_iv.lo, a_iv.hi] {
            for o in [o_iv.lo, o_iv.hi] {
                let v = alpha.embodied() * a + alpha.operational() * o;
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    Interval::new(lo, hi)
}

/// Summary statistics of a Monte-Carlo NCF experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Sample mean of the NCF values.
    pub mean: f64,
    /// Sample standard deviation (unbiased, n−1).
    pub std_dev: f64,
    /// Minimum sampled NCF.
    pub min: f64,
    /// Maximum sampled NCF.
    pub max: f64,
    /// 5th percentile.
    pub p05: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Fraction of samples with NCF < 1 — the estimated probability that
    /// design X reduces the footprint given the sampled uncertainty.
    pub prob_reduction: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl fmt::Display for McSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NCF ~ {:.4} ± {:.4} (p5={:.4}, p95={:.4}), P[reduction]={:.1}% over {} samples",
            self.mean,
            self.std_dev,
            self.p05,
            self.p95,
            self.prob_reduction * 100.0,
            self.samples
        )
    }
}

/// A Monte-Carlo NCF experiment: α is drawn uniformly from an [`E2oRange`]
/// and the embodied/operational ratios receive independent uniform
/// multiplicative jitter of ±`ratio_uncertainty`.
///
/// The sampler is deterministic given the seed, so experiments are
/// reproducible.
///
/// # Examples
///
/// ```
/// use focal_core::{DesignPoint, E2oRange, MonteCarloNcf, Scenario};
///
/// let x = DesignPoint::from_power_perf(0.6, 0.7, 1.0)?;
/// let y = DesignPoint::reference();
/// let mc = MonteCarloNcf::new(E2oRange::OPERATIONAL_DOMINATED, 0.1, 42)?;
/// let summary = mc.run(&x, &y, Scenario::FixedWork, 10_000)?;
/// assert!(summary.prob_reduction > 0.99);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarloNcf {
    range: E2oRange,
    ratio_uncertainty: f64,
    seed: u64,
}

impl MonteCarloNcf {
    /// Creates a sampler drawing α from `range` with ±`ratio_uncertainty`
    /// multiplicative jitter on both proxy ratios.
    ///
    /// # Errors
    ///
    /// Returns an error if `ratio_uncertainty` is not in `[0, 1)`.
    pub fn new(range: E2oRange, ratio_uncertainty: f64, seed: u64) -> Result<Self> {
        let u = ensure_finite("ratio_uncertainty", ratio_uncertainty)?;
        if !(0.0..1.0).contains(&u) {
            return Err(ModelError::OutOfRange {
                parameter: "ratio_uncertainty",
                value: u,
                expected: "[0, 1)",
            });
        }
        Ok(MonteCarloNcf {
            range,
            ratio_uncertainty: u,
            seed,
        })
    }

    /// Draws `samples` NCF values for `x` vs `y` under `scenario` and
    /// summarizes them, parallelizing across the engine selected by
    /// `FOCAL_THREADS` (see [`MonteCarloNcf::run_on`]).
    ///
    /// # Errors
    ///
    /// See [`MonteCarloNcf::run_on`].
    pub fn run(
        &self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<McSummary> {
        self.run_on(&Engine::from_env(), x, y, scenario, samples)
    }

    /// [`MonteCarloNcf::run`] on an explicit [`Engine`].
    ///
    /// Sampling is chunked in blocks of [`MC_CHUNK_SAMPLES`]: chunk `c`
    /// seeds its own `StdRng` from `seed + c` and chunk streams occupy
    /// consecutive logical index ranges, so the summary is
    /// **bit-identical for every thread count** (the differential tests
    /// in `tests/engine_determinism.rs` pin this). With a single-threaded
    /// engine the chunk loop runs inline on the calling thread.
    ///
    /// Since the SoA rework, groups of [`MC_GROUP_CHUNKS`] chunks are
    /// drawn by the lockstep vector kernel (`mc_kernel`) where the CPU
    /// supports it. This is invisible in the result: each chunk's draw
    /// stream is bit-identical to its serial form, and the summary
    /// depends only on the sorted multiset of samples.
    /// [`MonteCarloNcf::run_scalar_on`] is the pinned pre-SoA reference.
    ///
    /// # Errors
    ///
    /// * [`ModelError::OutOfRange`] if `samples == 0`.
    /// * [`ModelError::ChunkPoisoned`] if a sampling chunk panics (or an
    ///   armed fault plan targets one); the error names the lowest failing
    ///   chunk and its derived seed, identically at every thread count.
    /// * [`ModelError::NonFiniteOutput`] if any drawn NCF value is NaN or
    ///   infinite (including values poisoned by an armed `nan@mc:<index>`
    ///   fault plan) — the tripwire fires before any summary statistic is
    ///   computed, naming the lowest offending sample index.
    pub fn run_on(
        &self,
        engine: &Engine,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<McSummary> {
        let mut values = self.sample_values_on(engine, x, y, scenario, samples)?;
        values.sort_by(|a, b| a.total_cmp(b));
        Ok(Self::summarize(&values))
    }

    /// Pinned scalar reference implementation of [`MonteCarloNcf::run_on`]:
    /// the exact pre-SoA per-sample loop (one serial `StdRng` per chunk,
    /// per-chunk `Vec`s concatenated in index order). Kept as the oracle
    /// the vector kernel is differential-tested and benchmarked against;
    /// model code should call [`MonteCarloNcf::run_on`].
    ///
    /// # Errors
    ///
    /// Identical to [`MonteCarloNcf::run_on`] — including, by
    /// construction, every error *value*.
    pub fn run_scalar_on(
        &self,
        engine: &Engine,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<McSummary> {
        let mut values = self.sample_values_scalar_on(engine, x, y, scenario, samples)?;
        values.sort_by(|a, b| a.total_cmp(b));
        Ok(Self::summarize(&values))
    }

    /// [`MonteCarloNcf::run_on`] with a [`crate::SweepMemo`]: an experiment
    /// with an identical `(x, y, scenario, α range, jitter, seed, samples)`
    /// key is answered from the memo; a miss runs the real sampler and
    /// caches the summary. Repeated sweeps (e.g. the robustness study and
    /// its scenario-DSL twin) therefore pay for each distinct experiment
    /// once.
    ///
    /// While a fault plan is armed (see [`focal_engine::fault::armed`]) the
    /// memo is bypassed entirely so injected faults reach the real sampler.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloNcf::run`]; `samples == 0` is rejected before the
    /// memo is consulted.
    pub fn run_memo_on(
        &self,
        engine: &Engine,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
        memo: &mut crate::SweepMemo,
    ) -> Result<McSummary> {
        if samples == 0 || focal_engine::fault::armed() {
            return self.run_on(engine, x, y, scenario, samples);
        }
        if let Some(summary) = memo.mc_lookup(
            x,
            y,
            scenario,
            self.range,
            self.ratio_uncertainty,
            self.seed,
            samples,
        ) {
            return Ok(summary);
        }
        let summary = self.run_on(engine, x, y, scenario, samples)?;
        memo.mc_insert(
            x,
            y,
            scenario,
            self.range,
            self.ratio_uncertainty,
            self.seed,
            samples,
            summary.clone(),
        );
        Ok(summary)
    }

    /// Draws the raw sample buffer through the SoA lockstep kernel,
    /// applies any armed `nan@mc:<index>` fault poke, and runs the
    /// non-finite tripwire. Exposed (for benchmarks and differential
    /// tests) because it isolates generation cost from the sort and
    /// summary that [`MonteCarloNcf::run_on`] adds on top.
    ///
    /// The buffer's *order* is an internal layout detail: full groups of
    /// [`MC_GROUP_CHUNKS`] chunks may be lane-interleaved on machines
    /// where the vector kernel is active. The multiset of values — and
    /// therefore anything derived from the sorted buffer — is
    /// bit-identical to [`MonteCarloNcf::sample_values_scalar_on`] at
    /// every thread count; only elementwise comparisons against the
    /// scalar buffer are meaningless.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloNcf::run_on`].
    pub fn sample_values_on(
        &self,
        engine: &Engine,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<Vec<f64>> {
        if samples == 0 {
            return Err(ModelError::OutOfRange {
                parameter: "samples",
                value: 0.0,
                expected: "[1, +inf) (Monte-Carlo needs at least one sample)",
            });
        }
        let params = self.params(x, y, scenario);
        let seed = self.seed;
        // The kernel writes straight into one preallocated buffer — no
        // per-chunk Vecs, no concat. Work units of MC_GROUP_CHUNKS chunks
        // let full units take the lockstep vector path.
        let mut values = engine.try_par_chunk_map_into(
            seed,
            samples,
            MC_CHUNK_SAMPLES,
            MC_GROUP_CHUNKS,
            0.0f64,
            |c0, out| mc_kernel::fill_unit(seed, c0, &params, out),
        )?;
        let interleaved = mc_kernel::lockstep_enabled();
        // Armed `nan@mc:<sample>` fault plans poison exactly one global
        // sample index. The poke lands *after* the fill so the RNG draw
        // stream is untouched (the scalar loop drew all three words
        // before overwriting, too); `buffer_index` routes the logical
        // index through the kernel's layout.
        if let Some(target) = focal_engine::fault::nan_target("mc") {
            if let Ok(target) = usize::try_from(target) {
                let pos = mc_kernel::buffer_index(target, samples, interleaved);
                if let Some(v) = values.get_mut(pos) {
                    *v = f64::NAN;
                }
            }
        }
        // NaN/∞ tripwire *before* sorting: scan every lane position and
        // report the lowest *logical* (draw-order) sample index, so the
        // structured error names the same minimal reproduction
        // coordinates as the scalar kernel, at every thread count.
        let mut lowest: Option<(usize, f64)> = None;
        for (pos, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                let i = mc_kernel::logical_index(pos, samples, interleaved);
                if lowest.map_or(true, |(prev, _)| i < prev) {
                    lowest = Some((i, v));
                }
            }
        }
        if let Some((i, v)) = lowest {
            let c = i / MC_CHUNK_SAMPLES;
            return Err(ModelError::NonFiniteOutput {
                context: format!(
                    "monte-carlo sample {i} (chunk {c}, chunk_seed {})",
                    chunk_seed(seed, c)
                ),
                value: v,
            });
        }
        Ok(values)
    }

    /// Scalar twin of [`MonteCarloNcf::sample_values_on`]: the pre-SoA
    /// sampling loop, buffer in logical draw order.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloNcf::run_on`].
    pub fn sample_values_scalar_on(
        &self,
        engine: &Engine,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<Vec<f64>> {
        if samples == 0 {
            return Err(ModelError::OutOfRange {
                parameter: "samples",
                value: 0.0,
                expected: "[1, +inf) (Monte-Carlo needs at least one sample)",
            });
        }
        let params = self.params(x, y, scenario);
        let n_chunks = chunk_count(samples, MC_CHUNK_SAMPLES);
        let chunks: Vec<Vec<f64>> = engine.try_par_chunk_map(self.seed, n_chunks, |c| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(self.seed, c));
            // Armed `nan@mc:<sample>` fault plans poison exactly one
            // global sample index; disarmed runs pay one atomic load per
            // chunk. The index is global, so the poisoned sample is the
            // same at every thread count.
            let nan_at = focal_engine::fault::nan_target("mc");
            let lo = c * MC_CHUNK_SAMPLES;
            let hi = (lo + MC_CHUNK_SAMPLES).min(samples);
            (lo..hi)
                .map(|i| {
                    let v = params.sample(&mut rng);
                    if nan_at == Some(i as u64) {
                        return f64::NAN;
                    }
                    v
                })
                .collect()
        })?;
        let values: Vec<f64> = chunks.concat();
        if let Some((i, &v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            let c = i / MC_CHUNK_SAMPLES;
            return Err(ModelError::NonFiniteOutput {
                context: format!(
                    "monte-carlo sample {i} (chunk {c}, chunk_seed {})",
                    chunk_seed(self.seed, c)
                ),
                value: v,
            });
        }
        Ok(values)
    }

    /// Hoists everything that does not depend on the sampled α/jitter:
    /// the baseline NCF ratios and the two sampling distributions (all
    /// `Copy`, shared by every chunk). Only the RNG itself is per-chunk
    /// state, seeded by chunk index.
    fn params(&self, x: &DesignPoint, y: &DesignPoint, scenario: Scenario) -> McParams {
        McParams {
            alpha: Uniform::new_inclusive(self.range.low().get(), self.range.high().get()),
            jitter: Uniform::new_inclusive(
                1.0 - self.ratio_uncertainty,
                1.0 + self.ratio_uncertainty,
            ),
            a_ratio: x.area() / y.area(),
            o_ratio: scenario.operational_ratio(x, y),
        }
    }

    /// Summary statistics of a sorted, non-empty, all-finite sample
    /// buffer (the callers' tripwires established all three).
    fn summarize(values: &[f64]) -> McSummary {
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let pct = |p: f64| values[((p * (n - 1) as f64).round() as usize).min(n - 1)];
        let below = values.iter().filter(|&&v| v < 1.0).count();

        McSummary {
            mean,
            std_dev: var.sqrt(),
            // focal-lint: allow(panic-freedom) -- non-empty: `samples == 0` rejected at entry
            min: values[0],
            max: values[n - 1],
            p05: pct(0.05),
            p50: pct(0.50),
            p95: pct(0.95),
            prob_reduction: below as f64 / n as f64,
            samples: n,
        }
    }

    /// Convenience: evaluates the deterministic center-point NCF alongside
    /// the Monte-Carlo summary.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloNcf::run_on`].
    pub fn run_with_center(
        &self,
        x: &DesignPoint,
        y: &DesignPoint,
        scenario: Scenario,
        samples: usize,
    ) -> Result<(Ncf, McSummary)> {
        let center = Ncf::evaluate(x, y, scenario, self.range.center());
        Ok((center, self.run(x, y, scenario, samples)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::E2oWeight;

    #[test]
    fn interval_construction_validates() {
        assert!(Interval::new(1.0, 2.0).is_ok());
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        let p = Interval::point(3.0).unwrap();
        assert_eq!(p.lo(), p.hi());
        assert_eq!(p.width(), 0.0);
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1.0, 2.0).unwrap();
        let b = Interval::new(3.0, 4.0).unwrap();
        assert_eq!(a.add(b), Interval::new(4.0, 6.0).unwrap());
        assert_eq!(a.mul(b).unwrap(), Interval::new(3.0, 8.0).unwrap());
        let q = b.div(a).unwrap();
        assert_eq!(q, Interval::new(1.5, 4.0).unwrap());
        assert_eq!(a.scale(2.0).unwrap(), Interval::new(2.0, 4.0).unwrap());
        assert!(a.scale(-1.0).is_err());
    }

    #[test]
    fn interval_division_requires_positive() {
        let a = Interval::new(-1.0, 2.0).unwrap();
        let b = Interval::new(1.0, 2.0).unwrap();
        assert!(a.div(b).is_err());
        assert!(b.div(a).is_err());
    }

    #[test]
    fn interval_contains_and_mid() {
        let a = Interval::new(1.0, 3.0).unwrap();
        assert!(a.contains(1.0));
        assert!(a.contains(3.0));
        assert!(!a.contains(3.0001));
        assert_eq!(a.mid(), 2.0);
    }

    #[test]
    fn ncf_interval_brackets_point_estimates() {
        let x = DesignPoint::from_power_perf(0.5, 1.5, 3.0).unwrap();
        let y = DesignPoint::reference();
        let range = E2oRange::EMBODIED_DOMINATED;
        let iv = ncf_interval(&x, &y, Scenario::FixedTime, range, 0.0).unwrap();
        for alpha in range.grid(9).unwrap() {
            let v = Ncf::evaluate(&x, &y, Scenario::FixedTime, alpha).value();
            assert!(iv.contains(v), "{v} not in {iv}");
        }
    }

    #[test]
    fn ncf_interval_widens_with_uncertainty() {
        let x = DesignPoint::from_power_perf(0.5, 1.5, 3.0).unwrap();
        let y = DesignPoint::reference();
        let tight = ncf_interval(&x, &y, Scenario::FixedWork, E2oRange::FULL, 0.0).unwrap();
        let wide = ncf_interval(&x, &y, Scenario::FixedWork, E2oRange::FULL, 0.2).unwrap();
        assert!(wide.width() > tight.width());
        assert!(wide.lo() <= tight.lo() && wide.hi() >= tight.hi());
    }

    #[test]
    fn ncf_interval_rejects_invalid_uncertainty() {
        let x = DesignPoint::reference();
        assert!(ncf_interval(&x, &x, Scenario::FixedWork, E2oRange::FULL, 1.0).is_err());
        assert!(ncf_interval(&x, &x, Scenario::FixedWork, E2oRange::FULL, -0.1).is_err());
    }

    #[test]
    fn monte_carlo_is_reproducible() {
        let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
        let y = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 7).unwrap();
        let a = mc.run(&x, &y, Scenario::FixedWork, 1000).unwrap();
        let b = mc.run(&x, &y, Scenario::FixedWork, 1000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn monte_carlo_is_thread_count_invariant() {
        let x = DesignPoint::from_power_perf(0.7, 0.9, 1.1).unwrap();
        let y = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 7).unwrap();
        // 3 chunks (two full, one partial) exercises uneven chunk shapes.
        let samples = 2 * MC_CHUNK_SAMPLES + 123;
        let serial = mc
            .run_on(&Engine::serial(), &x, &y, Scenario::FixedWork, samples)
            .unwrap();
        for threads in [2, 3, 7] {
            let par = mc
                .run_on(
                    &Engine::with_threads(threads),
                    &x,
                    &y,
                    Scenario::FixedWork,
                    samples,
                )
                .unwrap();
            // PartialEq on McSummary compares every field with f64 `==`,
            // which only holds for bit-identical values.
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn monte_carlo_stays_inside_analytic_interval() {
        let x = DesignPoint::from_power_perf(0.7, 1.2, 1.1).unwrap();
        let y = DesignPoint::reference();
        let range = E2oRange::OPERATIONAL_DOMINATED;
        let iv = ncf_interval(&x, &y, Scenario::FixedTime, range, 0.05).unwrap();
        let mc = MonteCarloNcf::new(range, 0.05, 99).unwrap();
        let s = mc.run(&x, &y, Scenario::FixedTime, 5000).unwrap();
        assert!(s.min >= iv.lo() - 1e-12);
        assert!(s.max <= iv.hi() + 1e-12);
        assert!(iv.contains(s.mean));
    }

    #[test]
    fn monte_carlo_percentiles_are_ordered() {
        let x = DesignPoint::from_power_perf(1.1, 1.05, 1.0).unwrap();
        let y = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.2, 3).unwrap();
        let s = mc.run(&x, &y, Scenario::FixedWork, 2000).unwrap();
        assert!(s.min <= s.p05 && s.p05 <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.samples, 2000);
    }

    #[test]
    fn prob_reduction_tracks_dominance() {
        let y = DesignPoint::reference();
        let better = DesignPoint::from_power_perf(0.5, 0.5, 1.2).unwrap();
        let worse = DesignPoint::from_power_perf(2.0, 2.0, 1.0).unwrap();
        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.1, 11).unwrap();
        assert_eq!(
            mc.run(&better, &y, Scenario::FixedWork, 2000)
                .unwrap()
                .prob_reduction,
            1.0
        );
        assert_eq!(
            mc.run(&worse, &y, Scenario::FixedWork, 2000)
                .unwrap()
                .prob_reduction,
            0.0
        );
    }

    #[test]
    fn run_with_center_matches_plain_evaluate() {
        let x = DesignPoint::from_power_perf(0.9, 0.8, 1.0).unwrap();
        let y = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::EMBODIED_DOMINATED, 0.0, 5).unwrap();
        let (center, _) = mc.run_with_center(&x, &y, Scenario::FixedWork, 10).unwrap();
        let direct = Ncf::evaluate(&x, &y, Scenario::FixedWork, E2oWeight::EMBODIED_DOMINATED);
        assert_eq!(center.value(), direct.value());
    }

    #[test]
    fn zero_samples_is_a_structured_error() {
        let x = DesignPoint::reference();
        let mc = MonteCarloNcf::new(E2oRange::FULL, 0.0, 1).unwrap();
        let err = mc.run(&x, &x, Scenario::FixedWork, 0).unwrap_err();
        assert!(
            matches!(err, ModelError::OutOfRange { parameter, .. } if parameter == "samples"),
            "{err}"
        );
    }
}
