//! Hardware-acceleration model (§5.3, Figure 5a).
//!
//! The paper's running example is the H.264 accelerator of Hameed et al.
//! \[21\]: +6.5 % chip area, same performance as the OoO core, 500× less
//! energy for the accelerated work.

use focal_core::{DesignPoint, ModelError, Ncf, Result, Scenario};
use std::fmt;

/// A fixed-function accelerator attached to a core.
///
/// ## Model
///
/// Let `u` be the fraction of execution time spent on the accelerator.
/// The accelerator delivers the *same performance* as the core on the
/// offloaded work (Hameed et al.), so total execution time is unchanged
/// and energy and power scale identically:
///
/// ```text
/// A(u)     = 1 + area_overhead
/// E(u)     = P(u) = (1 − u) + u / energy_advantage
/// NCF(u)   = α·A + (1 − α)·E(u)        (identical for fw and ft)
/// ```
///
/// # Examples
///
/// ```
/// use focal_uarch::Accelerator;
/// use focal_core::E2oWeight;
///
/// let h264 = Accelerator::HAMEED_H264;
/// let ncf = h264.ncf(0.5, E2oWeight::OPERATIONAL_DOMINATED)?;
/// assert!(ncf < 0.65); // big savings at 50 % utilization
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// Extra chip area as a fraction of the baseline core (0.065 = +6.5 %).
    area_overhead: f64,
    /// How many times less energy the accelerator uses for the same work.
    energy_advantage: f64,
}

impl Accelerator {
    /// The H.264 accelerator of Hameed et al.: +6.5 % area, 500× less
    /// energy at equal performance.
    pub const HAMEED_H264: Accelerator = Accelerator {
        area_overhead: 0.065,
        energy_advantage: 500.0,
    };

    /// Creates an accelerator model.
    ///
    /// # Errors
    ///
    /// Returns an error if `area_overhead` is negative or
    /// `energy_advantage < 1` (an "accelerator" that wastes energy), or if
    /// either is not finite.
    pub fn new(area_overhead: f64, energy_advantage: f64) -> Result<Self> {
        if !area_overhead.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "area overhead",
                value: area_overhead,
            });
        }
        if area_overhead < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "area overhead",
                value: area_overhead,
                expected: "[0, +inf)",
            });
        }
        if !energy_advantage.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "energy advantage",
                value: energy_advantage,
            });
        }
        if energy_advantage < 1.0 {
            return Err(ModelError::OutOfRange {
                parameter: "energy advantage",
                value: energy_advantage,
                expected: "[1, +inf)",
            });
        }
        Ok(Accelerator {
            area_overhead,
            energy_advantage,
        })
    }

    /// The extra chip area fraction.
    #[inline]
    pub fn area_overhead(&self) -> f64 {
        self.area_overhead
    }

    /// The energy advantage factor, a dimensionless ratio (core energy ÷
    /// accelerator energy for the same work).
    #[inline]
    pub fn energy_advantage(&self) -> f64 {
        self.energy_advantage
    }

    fn check_utilization(utilization: f64) -> Result<f64> {
        if !utilization.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "accelerator utilization",
                value: utilization,
            });
        }
        if !(0.0..=1.0).contains(&utilization) {
            return Err(ModelError::OutOfRange {
                parameter: "accelerator utilization",
                value: utilization,
                expected: "[0, 1]",
            });
        }
        Ok(utilization)
    }

    /// Relative energy (= relative power, since time is unchanged) when a
    /// fraction `utilization` of execution time runs on the accelerator.
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn operational_ratio(&self, utilization: f64) -> Result<f64> {
        let u = Self::check_utilization(utilization)?;
        Ok((1.0 - u) + u / self.energy_advantage)
    }

    /// The core+accelerator design point, normalized to the core alone.
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn design_point(&self, utilization: f64) -> Result<DesignPoint> {
        let op = self.operational_ratio(utilization)?;
        DesignPoint::from_raw(1.0 + self.area_overhead, op, op, 1.0)
    }

    /// `NCF(u)` against the accelerator-less core. Because performance is
    /// unchanged, fixed-work and fixed-time give the same value.
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn ncf(&self, utilization: f64, alpha: focal_core::E2oWeight) -> Result<f64> {
        let x = self.design_point(utilization)?;
        let y = DesignPoint::reference();
        Ok(Ncf::evaluate(&x, &y, Scenario::FixedWork, alpha).value())
    }

    /// The utilization at which the accelerator's operational savings
    /// exactly offset its embodied overhead (`NCF = 1`), or `None` if the
    /// accelerator never breaks even for this α (break-even above 100 %
    /// utilization).
    ///
    /// Solving `α(1 + o) + (1 − α)(1 − u·(1 − 1/g)) = 1` for `u`:
    /// `u* = α·o / ((1 − α)(1 − 1/g))`.
    pub fn break_even_utilization(&self, alpha: focal_core::E2oWeight) -> Option<f64> {
        let saving_rate = (1.0 - alpha.get()) * (1.0 - 1.0 / self.energy_advantage);
        if saving_rate <= 0.0 {
            // α = 1 or no energy advantage: never breaks even unless free.
            // The overhead is validated non-negative, so `<=` is the
            // "exactly free" case without a float equality.
            return if self.area_overhead <= 0.0 {
                Some(0.0)
            } else {
                None
            };
        }
        let u = alpha.get() * self.area_overhead / saving_rate;
        (u <= 1.0).then_some(u)
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accelerator(+{:.1}% area, {}x energy)",
            self.area_overhead * 100.0,
            self.energy_advantage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::E2oWeight;

    #[test]
    fn construction_validates() {
        assert!(Accelerator::new(0.065, 500.0).is_ok());
        assert!(Accelerator::new(-0.1, 500.0).is_err());
        assert!(Accelerator::new(0.1, 0.5).is_err());
        assert!(Accelerator::new(f64::NAN, 500.0).is_err());
        assert!(Accelerator::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn unused_accelerator_is_pure_overhead() {
        let a = Accelerator::HAMEED_H264;
        assert_eq!(a.operational_ratio(0.0).unwrap(), 1.0);
        let ncf = a.ncf(0.0, E2oWeight::EMBODIED_DOMINATED).unwrap();
        assert!((ncf - (0.8 * 1.065 + 0.2)).abs() < 1e-12);
        assert!(ncf > 1.0);
    }

    #[test]
    fn full_offload_operational_floor() {
        let a = Accelerator::HAMEED_H264;
        assert!((a.operational_ratio(1.0).unwrap() - 1.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn operational_ratio_validates_utilization() {
        let a = Accelerator::HAMEED_H264;
        assert!(a.operational_ratio(-0.1).is_err());
        assert!(a.operational_ratio(1.1).is_err());
        assert!(a.operational_ratio(f64::NAN).is_err());
    }

    /// Finding #6 (operational dominated): savings appear at small
    /// utilization; at 50 % utilization NCF ≈ 0.61 (the paper phrases
    /// this as a reduction "by 60 %", i.e. NCF ≈ 0.6 — see EXPERIMENTS.md).
    #[test]
    fn finding6_operational_dominated() {
        let a = Accelerator::HAMEED_H264;
        let alpha = E2oWeight::OPERATIONAL_DOMINATED;
        // Breaks even below 7 % utilization.
        let be = a.break_even_utilization(alpha).unwrap();
        assert!(be < 0.07, "break-even {be}");
        let ncf50 = a.ncf(0.5, alpha).unwrap();
        assert!((ncf50 - 0.614).abs() < 0.005, "got {ncf50}");
    }

    /// Finding #6 (embodied dominated): break-even near 30 % utilization.
    #[test]
    fn finding6_embodied_dominated_break_even() {
        let a = Accelerator::HAMEED_H264;
        let be = a
            .break_even_utilization(E2oWeight::EMBODIED_DOMINATED)
            .unwrap();
        assert!(be > 0.2 && be < 0.35, "break-even {be}");
        // Below break-even the NCF is above 1, above it below 1.
        assert!(a.ncf(be - 0.05, E2oWeight::EMBODIED_DOMINATED).unwrap() > 1.0);
        assert!(a.ncf(be + 0.05, E2oWeight::EMBODIED_DOMINATED).unwrap() < 1.0);
    }

    #[test]
    fn break_even_analytic_matches_numeric_root() {
        let a = Accelerator::HAMEED_H264;
        for alpha in [0.2, 0.5, 0.8] {
            let w = E2oWeight::new(alpha).unwrap();
            if let Some(u) = a.break_even_utilization(w) {
                let ncf = a.ncf(u, w).unwrap();
                assert!(
                    (ncf - 1.0).abs() < 1e-9,
                    "α={alpha}: NCF at break-even {ncf}"
                );
            }
        }
    }

    #[test]
    fn break_even_unreachable_for_huge_overhead() {
        let bloated = Accelerator::new(5.0, 2.0).unwrap();
        assert_eq!(
            bloated.break_even_utilization(E2oWeight::EMBODIED_DOMINATED),
            None
        );
    }

    #[test]
    fn zero_overhead_breaks_even_immediately() {
        let free = Accelerator::new(0.0, 10.0).unwrap();
        let be = free.break_even_utilization(E2oWeight::new(1.0).unwrap());
        assert_eq!(be, Some(0.0));
    }

    #[test]
    fn ncf_monotone_decreasing_in_utilization() {
        let a = Accelerator::HAMEED_H264;
        let alpha = E2oWeight::BALANCED;
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let ncf = a.ncf(u, alpha).unwrap();
            assert!(ncf < prev);
            prev = ncf;
        }
    }

    #[test]
    fn design_point_has_unit_performance() {
        let dp = Accelerator::HAMEED_H264.design_point(0.3).unwrap();
        assert_eq!(dp.performance().get(), 1.0);
        assert!((dp.area().get() - 1.065).abs() < 1e-12);
        assert_eq!(dp.power().get(), dp.energy().get());
    }

    #[test]
    fn display_is_descriptive() {
        assert!(Accelerator::HAMEED_H264.to_string().contains("6.5%"));
    }
}
