//! # focal-uarch — microarchitecture mechanism models
//!
//! Data models for every archetypal processor mechanism the paper's §5
//! evaluates, each producing FOCAL [`focal_core::DesignPoint`]s relative to
//! its study's baseline:
//!
//! * [`CoreMicroarch`] — InO / FSC / OoO cores (§5.6, Figure 7).
//! * [`Accelerator`] — fixed-function acceleration (§5.3, Figure 5a).
//! * [`DarkSiliconSoc`] — dark-silicon SoCs (§5.4, Figure 5b).
//! * [`BranchPredictor`] / [`PreciseRunahead`] — speculation (§5.7,
//!   Figure 8 and Finding #13).
//! * [`PipelineGating`] — speculation control for power (§5.9,
//!   Finding #16).
//! * [`DvfsCore`] / [`TurboBoost`] — voltage/frequency scaling (§5.8,
//!   Findings #14–#15).
//!
//! Published data points (Hameed, Parikh, PRE, FSC) are encoded exactly as
//! the paper quotes them; see each module's substitution notes.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod accelerator;
mod cores;
mod dark_silicon;
mod dvfs;
mod gating;
mod reconfigurable;
mod speculation;

pub use accelerator::Accelerator;
pub use cores::CoreMicroarch;
pub use dark_silicon::DarkSiliconSoc;
pub use dvfs::{DvfsCore, TurboBoost};
pub use gating::PipelineGating;
pub use reconfigurable::{FixedFunctionSuite, ReconfigurableFabric};
pub use speculation::{BranchPredictor, PreciseRunahead};
