//! Dark-silicon SoC model (§5.4, Figure 5b).
//!
//! A modern SoC integrates tens of accelerators that cannot all be powered
//! at once. The paper's configuration: accelerators occupy two thirds of
//! the chip (i.e. the chip is 3× the core's area), each accelerator is
//! 500× more energy-efficient than the core when used, and unused
//! accelerators draw no leakage.

use crate::accelerator::Accelerator;
use focal_core::{DesignPoint, E2oWeight, ModelError, Ncf, Result, Scenario};
use std::fmt;

/// A system-on-chip where a fraction of the die is dark-silicon
/// accelerators.
///
/// ## Model
///
/// With accelerators occupying fraction `d` of the chip, the chip is
/// `1/(1 − d)` times the core's area. The operational side is the
/// accelerator model's: offloading fraction `u` of time to (some)
/// accelerator divides that portion's energy by the energy advantage.
///
/// # Examples
///
/// ```
/// use focal_uarch::DarkSiliconSoc;
/// use focal_core::E2oWeight;
///
/// let soc = DarkSiliconSoc::PAPER; // 2/3 accelerators, 500x energy
/// // Embodied dominated: ~2.5x footprint increase (Finding #7).
/// let ncf = soc.ncf(0.2, E2oWeight::EMBODIED_DOMINATED)?;
/// assert!(ncf > 2.4 && ncf < 2.7);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DarkSiliconSoc {
    /// Fraction of the chip occupied by accelerators.
    accelerator_area_fraction: f64,
    /// Energy advantage of an accelerator over the core.
    energy_advantage: f64,
}

impl DarkSiliconSoc {
    /// The paper's configuration: accelerators fill two thirds of the chip
    /// with a 500× energy advantage.
    pub const PAPER: DarkSiliconSoc = DarkSiliconSoc {
        accelerator_area_fraction: 2.0 / 3.0,
        energy_advantage: 500.0,
    };

    /// Creates a dark-silicon SoC model.
    ///
    /// # Errors
    ///
    /// Returns an error if `accelerator_area_fraction ∉ [0, 1)` or
    /// `energy_advantage < 1`.
    pub fn new(accelerator_area_fraction: f64, energy_advantage: f64) -> Result<Self> {
        if !accelerator_area_fraction.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "accelerator area fraction",
                value: accelerator_area_fraction,
            });
        }
        if !(0.0..1.0).contains(&accelerator_area_fraction) {
            return Err(ModelError::OutOfRange {
                parameter: "accelerator area fraction",
                value: accelerator_area_fraction,
                expected: "[0, 1)",
            });
        }
        if !energy_advantage.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "energy advantage",
                value: energy_advantage,
            });
        }
        if energy_advantage < 1.0 {
            return Err(ModelError::OutOfRange {
                parameter: "energy advantage",
                value: energy_advantage,
                expected: "[1, +inf)",
            });
        }
        Ok(DarkSiliconSoc {
            accelerator_area_fraction,
            energy_advantage,
        })
    }

    /// The fraction of the chip occupied by accelerators.
    #[inline]
    pub fn accelerator_area_fraction(&self) -> f64 {
        self.accelerator_area_fraction
    }

    /// The energy advantage factor, a dimensionless ratio (core energy ÷
    /// accelerator energy for the same work).
    #[inline]
    pub fn energy_advantage(&self) -> f64 {
        self.energy_advantage
    }

    /// The chip's area relative to the bare core: `1/(1 − d)` (3 for the
    /// paper's two-thirds configuration, i.e. +200 % extra chip area).
    pub fn chip_area_ratio(&self) -> f64 {
        1.0 / (1.0 - self.accelerator_area_fraction)
    }

    /// The equivalent single-accelerator view of this SoC: the combined
    /// accelerator estate as one [`Accelerator`] whose area overhead is
    /// `chip_area_ratio − 1`.
    ///
    /// # Errors
    ///
    /// Never fails for validated configurations.
    pub fn as_accelerator(&self) -> Result<Accelerator> {
        Accelerator::new(self.chip_area_ratio() - 1.0, self.energy_advantage)
    }

    /// The SoC's design point at the given accelerator utilization,
    /// normalized to the bare core.
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn design_point(&self, utilization: f64) -> Result<DesignPoint> {
        self.as_accelerator()?.design_point(utilization)
    }

    /// `NCF(u)` against the bare core (identical under both scenarios
    /// because performance is unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn ncf(&self, utilization: f64, alpha: E2oWeight) -> Result<f64> {
        let x = self.design_point(utilization)?;
        let y = DesignPoint::reference();
        Ok(Ncf::evaluate(&x, &y, Scenario::FixedWork, alpha).value())
    }

    /// Utilization needed to break even (`NCF = 1`), or `None` if the dark
    /// silicon can never amortize its embodied cost at this α.
    pub fn break_even_utilization(&self, alpha: E2oWeight) -> Option<f64> {
        self.as_accelerator()
            .ok()
            .and_then(|a| a.break_even_utilization(alpha))
    }
}

impl fmt::Display for DarkSiliconSoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dark-silicon SoC ({:.0}% accelerators, {}x energy)",
            self.accelerator_area_fraction * 100.0,
            self.energy_advantage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(DarkSiliconSoc::new(2.0 / 3.0, 500.0).is_ok());
        assert!(DarkSiliconSoc::new(1.0, 500.0).is_err());
        assert!(DarkSiliconSoc::new(-0.1, 500.0).is_err());
        assert!(DarkSiliconSoc::new(0.5, 0.9).is_err());
    }

    #[test]
    fn paper_chip_is_three_times_the_core() {
        assert!((DarkSiliconSoc::PAPER.chip_area_ratio() - 3.0).abs() < 1e-12);
    }

    /// Finding #7, embodied dominated: ≈ 2.5× footprint increase.
    #[test]
    fn finding7_embodied_dominated() {
        let soc = DarkSiliconSoc::PAPER;
        let alpha = E2oWeight::EMBODIED_DOMINATED;
        // Even moderate utilization cannot save it: NCF ≈ 0.8·3 + 0.2·E(u).
        for u in [0.0, 0.25, 0.5, 1.0] {
            let ncf = soc.ncf(u, alpha).unwrap();
            assert!(ncf > 2.4, "u={u}: {ncf}");
            assert!(ncf < 2.61, "u={u}: {ncf}");
        }
    }

    /// Finding #7, operational dominated: break-even needs > 50 %
    /// utilization.
    #[test]
    fn finding7_operational_dominated_break_even() {
        let soc = DarkSiliconSoc::PAPER;
        let be = soc
            .break_even_utilization(E2oWeight::OPERATIONAL_DOMINATED)
            .unwrap();
        assert!(be > 0.5, "break-even {be}");
        assert!(soc.ncf(0.4, E2oWeight::OPERATIONAL_DOMINATED).unwrap() > 1.0);
        assert!(soc.ncf(0.7, E2oWeight::OPERATIONAL_DOMINATED).unwrap() < 1.0);
    }

    #[test]
    fn equivalent_accelerator_has_200_percent_overhead() {
        let acc = DarkSiliconSoc::PAPER.as_accelerator().unwrap();
        assert!((acc.area_overhead() - 2.0).abs() < 1e-12);
        assert_eq!(acc.energy_advantage(), 500.0);
    }

    #[test]
    fn zero_dark_fraction_is_a_bare_core() {
        let soc = DarkSiliconSoc::new(0.0, 500.0).unwrap();
        assert_eq!(soc.chip_area_ratio(), 1.0);
        // Unused: NCF = 1 exactly.
        let ncf = soc.ncf(0.0, E2oWeight::BALANCED).unwrap();
        assert!((ncf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_descriptive() {
        assert!(DarkSiliconSoc::PAPER.to_string().contains("67%"));
    }
}
