//! Core microarchitecture data models: in-order (InO), Forward Slice Core
//! (FSC) and out-of-order (OoO), §5.6 of the paper.
//!
//! ## Substitution note (see DESIGN.md §3)
//!
//! The paper takes chip area, power, energy and performance from
//! Lakshminarasimhan et al. \[29\] (McPAT + CACTI 6.5 at 22 nm). We encode
//! exactly the relative numbers the paper states — FSC: +64 % performance,
//! +1 % area, +1 % power over InO; OoO: +75 % performance, +39 % area,
//! 2.32× power — which is all the study consumes.

use focal_core::{DesignPoint, Result};
use std::fmt;

/// The three core microarchitectures compared in Figure 7.
///
/// # Examples
///
/// ```
/// use focal_uarch::CoreMicroarch;
///
/// let ooo = CoreMicroarch::OutOfOrder.design_point()?;
/// let ino = CoreMicroarch::InOrder.design_point()?;
/// assert!(ooo.performance().get() / ino.performance().get() > 1.7);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreMicroarch {
    /// A 2-wide in-order core — the baseline.
    InOrder,
    /// The Forward Slice Core \[29\]: slice-out-of-order execution using
    /// in-order issue queues that run out-of-order with respect to each
    /// other. Near-OoO performance at near-InO cost.
    ForwardSlice,
    /// A 2-wide out-of-order core.
    OutOfOrder,
}

impl CoreMicroarch {
    /// All three microarchitectures, in the paper's order.
    pub const ALL: [CoreMicroarch; 3] = [
        CoreMicroarch::InOrder,
        CoreMicroarch::ForwardSlice,
        CoreMicroarch::OutOfOrder,
    ];

    /// Relative chip area (InO = 1).
    pub fn area(self) -> f64 {
        match self {
            CoreMicroarch::InOrder => 1.0,
            CoreMicroarch::ForwardSlice => 1.01,
            CoreMicroarch::OutOfOrder => 1.39,
        }
    }

    /// Relative average power (InO = 1).
    pub fn power(self) -> f64 {
        match self {
            CoreMicroarch::InOrder => 1.0,
            CoreMicroarch::ForwardSlice => 1.01,
            CoreMicroarch::OutOfOrder => 2.32,
        }
    }

    /// Relative performance (InO = 1). All three cores run at the same
    /// 2 GHz with the same cache hierarchy and width, so this is pure
    /// microarchitectural speedup.
    pub fn performance(self) -> f64 {
        match self {
            CoreMicroarch::InOrder => 1.0,
            CoreMicroarch::ForwardSlice => 1.64,
            CoreMicroarch::OutOfOrder => 1.75,
        }
    }

    /// Relative energy per unit of work, `power / performance`.
    pub fn energy(self) -> f64 {
        self.power() / self.performance()
    }

    /// The FOCAL design point (all axes relative to InO).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data; the `Result` guards the
    /// `DesignPoint` constructor invariants.
    pub fn design_point(self) -> Result<DesignPoint> {
        DesignPoint::from_power_perf(self.area(), self.power(), self.performance())
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            CoreMicroarch::InOrder => "InO",
            CoreMicroarch::ForwardSlice => "FSC",
            CoreMicroarch::OutOfOrder => "OoO",
        }
    }
}

impl fmt::Display for CoreMicroarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::{classify, E2oWeight, Sustainability};

    #[test]
    fn paper_data_is_encoded_exactly() {
        assert_eq!(CoreMicroarch::ForwardSlice.performance(), 1.64);
        assert_eq!(CoreMicroarch::OutOfOrder.performance(), 1.75);
        assert_eq!(CoreMicroarch::ForwardSlice.area(), 1.01);
        assert_eq!(CoreMicroarch::OutOfOrder.area(), 1.39);
        assert_eq!(CoreMicroarch::ForwardSlice.power(), 1.01);
        assert_eq!(CoreMicroarch::OutOfOrder.power(), 2.32);
    }

    #[test]
    fn energy_is_power_over_performance() {
        for c in CoreMicroarch::ALL {
            assert!((c.energy() - c.power() / c.performance()).abs() < 1e-12);
        }
        // FSC consumes less energy than InO: 1.01/1.64 ≈ 0.62.
        assert!(CoreMicroarch::ForwardSlice.energy() < 0.65);
        // OoO consumes more: 2.32/1.75 ≈ 1.33.
        assert!(CoreMicroarch::OutOfOrder.energy() > 1.3);
    }

    /// Finding #9: OoO is less sustainable than InO under both scenarios.
    #[test]
    fn finding9_ooo_less_sustainable_than_ino() {
        let ooo = CoreMicroarch::OutOfOrder.design_point().unwrap();
        let ino = CoreMicroarch::InOrder.design_point().unwrap();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            assert_eq!(classify(&ooo, &ino, alpha).class, Sustainability::Less);
        }
    }

    /// Finding #10: FSC is weakly-to-strongly sustainable vs InO — lower
    /// footprint under fixed-work; under fixed-time only "barely" higher.
    #[test]
    fn finding10_fsc_close_to_strong_vs_ino() {
        use focal_core::{Ncf, Scenario};
        let fsc = CoreMicroarch::ForwardSlice.design_point().unwrap();
        let ino = CoreMicroarch::InOrder.design_point().unwrap();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            let fw = Ncf::evaluate(&fsc, &ino, Scenario::FixedWork, alpha).value();
            let ft = Ncf::evaluate(&fsc, &ino, Scenario::FixedTime, alpha).value();
            assert!(fw < 1.0, "FSC beats InO under fixed-work (α={alpha})");
            assert!(
                ft < 1.02,
                "FSC only barely above InO under fixed-time, got {ft}"
            );
        }
    }

    /// Finding #11: FSC vs OoO — footprint 32–53 % smaller at ≈ 6.3 % lower
    /// performance.
    #[test]
    fn finding11_fsc_strongly_sustainable_vs_ooo() {
        use focal_core::{Ncf, Scenario};
        let fsc = CoreMicroarch::ForwardSlice.design_point().unwrap();
        let ooo = CoreMicroarch::OutOfOrder.design_point().unwrap();
        let perf_loss: f64 = 1.0 - 1.64 / 1.75;
        assert!((perf_loss - 0.063).abs() < 0.001);
        let mut savings = Vec::new();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            for scenario in Scenario::ALL {
                let ncf = Ncf::evaluate(&fsc, &ooo, scenario, alpha);
                assert!(ncf.value() < 1.0);
                savings.push(ncf.saving_percent());
            }
        }
        let min = savings.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = savings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            min > 20.0 && max < 60.0,
            "savings range [{min:.0}%, {max:.0}%]"
        );
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(CoreMicroarch::InOrder.to_string(), "InO");
        assert_eq!(CoreMicroarch::ForwardSlice.label(), "FSC");
        assert_eq!(CoreMicroarch::ALL.len(), 3);
    }
}
