//! Reconfigurable acceleration — the alternative the paper's §5.4
//! discussion proposes to dark silicon: *"Instead of having many
//! fixed-function accelerators, it might be more sustainable to design
//! reconfigurable accelerators to amortize the embodied footprint across
//! multiple applications."*
//!
//! This module models both options so the claim can be evaluated:
//!
//! * [`FixedFunctionSuite`] — `k` single-purpose accelerators, each
//!   covering one application domain at a high energy advantage.
//! * [`ReconfigurableFabric`] — one CGRA/FPGA-style fabric covering *all*
//!   domains at a lower energy advantage (reconfiguration overhead).

use crate::accelerator::Accelerator;
use focal_core::{DesignPoint, E2oWeight, ModelError, Ncf, Result, Scenario};
use std::fmt;

/// A suite of `count` fixed-function accelerators, each adding
/// `area_per_accelerator` of core area and delivering `energy_advantage`
/// on its own domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedFunctionSuite {
    /// Number of distinct accelerators (application domains covered).
    pub count: u32,
    /// Area of each accelerator, as a fraction of the core.
    pub area_per_accelerator: f64,
    /// Energy advantage when a domain runs on its accelerator.
    pub energy_advantage: f64,
}

impl FixedFunctionSuite {
    /// Creates a suite.
    ///
    /// # Errors
    ///
    /// Returns an error if `count == 0`, the area is negative/non-finite,
    /// or the energy advantage is below 1.
    pub fn new(count: u32, area_per_accelerator: f64, energy_advantage: f64) -> Result<Self> {
        if count == 0 {
            return Err(ModelError::OutOfRange {
                parameter: "accelerator count",
                value: 0.0,
                expected: "[1, +inf)",
            });
        }
        // Reuse the single-accelerator validation.
        Accelerator::new(area_per_accelerator, energy_advantage)?;
        Ok(FixedFunctionSuite {
            count,
            area_per_accelerator,
            energy_advantage,
        })
    }

    /// Total accelerator area as a fraction of the core.
    pub fn total_area_overhead(&self) -> f64 {
        self.count as f64 * self.area_per_accelerator
    }

    /// The suite's design point when the accelerated domains together
    /// cover `total_utilization` of execution time (each domain runs on
    /// its own accelerator; the rest runs on the core).
    ///
    /// # Errors
    ///
    /// Returns an error if `total_utilization ∉ [0, 1]`.
    pub fn design_point(&self, total_utilization: f64) -> Result<DesignPoint> {
        Accelerator::new(self.total_area_overhead(), self.energy_advantage)?
            .design_point(total_utilization)
    }

    /// NCF against the bare core (performance unchanged, so scenario-
    /// independent).
    ///
    /// # Errors
    ///
    /// Returns an error if `total_utilization ∉ [0, 1]`.
    pub fn ncf(&self, total_utilization: f64, alpha: E2oWeight) -> Result<f64> {
        let x = self.design_point(total_utilization)?;
        Ok(Ncf::evaluate(&x, &DesignPoint::reference(), Scenario::FixedWork, alpha).value())
    }
}

impl fmt::Display for FixedFunctionSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fixed accelerators (+{:.0}% area total, {}x energy)",
            self.count,
            self.total_area_overhead() * 100.0,
            self.energy_advantage
        )
    }
}

/// One reconfigurable fabric that serves every accelerated domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigurableFabric {
    /// Fabric area as a fraction of the core (typically a few fixed
    /// accelerators' worth).
    pub area_overhead: f64,
    /// Energy advantage (lower than fixed-function: LUT/CGRA overheads).
    pub energy_advantage: f64,
}

impl ReconfigurableFabric {
    /// Creates a fabric.
    ///
    /// # Errors
    ///
    /// Returns an error if the area is negative/non-finite or the energy
    /// advantage is below 1.
    pub fn new(area_overhead: f64, energy_advantage: f64) -> Result<Self> {
        Accelerator::new(area_overhead, energy_advantage)?;
        Ok(ReconfigurableFabric {
            area_overhead,
            energy_advantage,
        })
    }

    /// The fabric's design point at `total_utilization` (it can serve any
    /// domain, so the whole accelerated share runs on it).
    ///
    /// # Errors
    ///
    /// Returns an error if `total_utilization ∉ [0, 1]`.
    pub fn design_point(&self, total_utilization: f64) -> Result<DesignPoint> {
        Accelerator::new(self.area_overhead, self.energy_advantage)?.design_point(total_utilization)
    }

    /// NCF against the bare core.
    ///
    /// # Errors
    ///
    /// Returns an error if `total_utilization ∉ [0, 1]`.
    pub fn ncf(&self, total_utilization: f64, alpha: E2oWeight) -> Result<f64> {
        let x = self.design_point(total_utilization)?;
        Ok(Ncf::evaluate(&x, &DesignPoint::reference(), Scenario::FixedWork, alpha).value())
    }

    /// The utilization above which the *fixed-function suite* (not the
    /// core) becomes the better choice: the fabric wins on embodied
    /// footprint, the suite on operational efficiency, so there is a
    /// crossover utilization
    ///
    /// ```text
    /// u* = α·(A_fixed − A_fabric) / ((1 − α)·(1/g_fabric − 1/g_fixed))
    /// ```
    ///
    /// Returns `None` when one option dominates for every utilization.
    pub fn crossover_vs_fixed(&self, suite: &FixedFunctionSuite, alpha: E2oWeight) -> Option<f64> {
        let area_gap = suite.total_area_overhead() - self.area_overhead;
        let energy_gap = 1.0 / self.energy_advantage - 1.0 / suite.energy_advantage;
        if energy_gap <= 0.0 || area_gap <= 0.0 {
            // The fabric is not both smaller and less efficient: no
            // crossover within the model's premises.
            return None;
        }
        let u = alpha.embodied() * area_gap / (alpha.operational() * energy_gap);
        (u <= 1.0).then_some(u)
    }
}

impl fmt::Display for ReconfigurableFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reconfigurable fabric (+{:.0}% area, {}x energy)",
            self.area_overhead * 100.0,
            self.energy_advantage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper-flavoured comparison: 20 fixed accelerators of 10% core
    /// area each (= dark silicon, 2/3 of the chip) vs one fabric of 40%
    /// core area at a 10x-lower energy advantage.
    fn suite() -> FixedFunctionSuite {
        FixedFunctionSuite::new(20, 0.10, 500.0).unwrap()
    }

    fn fabric() -> ReconfigurableFabric {
        ReconfigurableFabric::new(0.40, 50.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(FixedFunctionSuite::new(0, 0.1, 100.0).is_err());
        assert!(FixedFunctionSuite::new(5, -0.1, 100.0).is_err());
        assert!(FixedFunctionSuite::new(5, 0.1, 0.5).is_err());
        assert!(ReconfigurableFabric::new(-0.1, 100.0).is_err());
        assert!(ReconfigurableFabric::new(0.4, 0.9).is_err());
    }

    #[test]
    fn suite_area_accumulates() {
        assert!((suite().total_area_overhead() - 2.0).abs() < 1e-12);
    }

    /// The paper's discussion claim: under embodied dominance, the fabric
    /// beats the fixed suite at any utilization (its embodied cost is 5x
    /// smaller and embodied dominates).
    #[test]
    fn fabric_wins_under_embodied_dominance() {
        let alpha = E2oWeight::EMBODIED_DOMINATED;
        for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let f = fabric().ncf(u, alpha).unwrap();
            let s = suite().ncf(u, alpha).unwrap();
            assert!(f < s, "u={u}: fabric {f} vs suite {s}");
        }
        // And the fabric comes close to break-even at high utilization
        // while the dark-silicon suite never gets near it.
        assert!(fabric().ncf(0.9, alpha).unwrap() < 1.15);
        assert!(suite().ncf(1.0, alpha).unwrap() > 2.0);
    }

    /// Both accelerators' energies are tiny (500x vs 50x advantage), so
    /// the 5x area gap dominates for any realistic α: within the paper's
    /// α = 0.2 ± 0.1 band the fixed suite never catches up — the
    /// reconfigurable option wins across the board, which is exactly the
    /// paper's §5.4 suggestion.
    #[test]
    fn fabric_dominates_across_paper_alpha_band() {
        for alpha in [
            E2oWeight::OPERATIONAL_DOMINATED,
            E2oWeight::BALANCED,
            E2oWeight::EMBODIED_DOMINATED,
        ] {
            assert_eq!(
                fabric().crossover_vs_fixed(&suite(), alpha),
                None,
                "{alpha}"
            );
            for u in [0.2, 0.6, 1.0] {
                assert!(fabric().ncf(u, alpha).unwrap() < suite().ncf(u, alpha).unwrap());
            }
        }
    }

    /// A crossover only appears for near-pure operational weights, where
    /// the suite's 10x-better energy finally matters.
    #[test]
    fn crossover_exists_only_for_extreme_operational_weights() {
        let alpha = E2oWeight::new(0.005).unwrap();
        let u_star = fabric().crossover_vs_fixed(&suite(), alpha).unwrap();
        assert!(u_star > 0.0 && u_star < 1.0, "u* = {u_star}");
        // It is an exact break-even…
        let f = fabric().ncf(u_star, alpha).unwrap();
        let s = suite().ncf(u_star, alpha).unwrap();
        assert!((f - s).abs() < 1e-9, "fabric {f} vs suite {s}");
        // …with the fabric winning below and the suite above.
        let above = u_star + (1.0 - u_star) * 0.5;
        assert!(
            fabric().ncf(u_star * 0.5, alpha).unwrap() < suite().ncf(u_star * 0.5, alpha).unwrap()
        );
        assert!(fabric().ncf(above, alpha).unwrap() > suite().ncf(above, alpha).unwrap());
    }

    #[test]
    fn no_crossover_when_fabric_dominates() {
        // A fabric that is smaller AND at least as efficient: no crossover.
        let dominant = ReconfigurableFabric::new(0.1, 500.0).unwrap();
        assert_eq!(
            dominant.crossover_vs_fixed(&suite(), E2oWeight::BALANCED),
            None
        );
    }

    #[test]
    fn design_points_share_the_accelerator_semantics() {
        let dp = fabric().design_point(0.5).unwrap();
        assert!((dp.area().get() - 1.4).abs() < 1e-12);
        assert_eq!(dp.performance().get(), 1.0);
        assert!(dp.energy().get() < 1.0);
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(suite().to_string().contains("20 fixed"));
        assert!(fabric().to_string().contains("reconfigurable"));
    }
}
