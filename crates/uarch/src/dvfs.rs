//! Dynamic voltage and frequency scaling (§5.8, Findings #14–#15).
//!
//! The paper's first-order electrical assumptions: with voltage scaled
//! proportionally to frequency, **dynamic power scales cubically** with
//! frequency, **dynamic energy quadratically**, and **leakage power
//! linearly** (with voltage). On-chip regulators cost "no more than a
//! couple percent" of core area.

use focal_core::{DesignPoint, ModelError, Result};
use std::fmt;

/// A core with DVFS support.
///
/// ## Model
///
/// With frequency scale `k` (voltage ∝ frequency) and a dynamic-power
/// share `δ` at nominal:
///
/// ```text
/// performance(k) = k                      (frequency-bound workload)
/// power(k)       = δ·k³ + (1 − δ)·k      (dynamic cubic + leakage linear)
/// energy(k)      = power/perf = δ·k² + (1 − δ)
/// area           = 1 + regulator_overhead
/// ```
///
/// # Examples
///
/// ```
/// use focal_uarch::DvfsCore;
/// use focal_core::{classify, E2oWeight, Sustainability};
///
/// let core = DvfsCore::default_core();
/// // Scale down to 80% frequency: strongly sustainable (Finding #14).
/// let scaled = core.design_point(0.8)?;
/// let nominal = core.nominal_without_dvfs()?;
/// let c = classify(&scaled, &nominal, E2oWeight::OPERATIONAL_DOMINATED);
/// assert_eq!(c.class, Sustainability::Strongly);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsCore {
    /// Share of nominal power that is dynamic (voltage/frequency
    /// sensitive); the remainder is leakage.
    dynamic_power_fraction: f64,
    /// Chip-area overhead of the on-chip voltage regulators.
    regulator_area_overhead: f64,
}

impl DvfsCore {
    /// A representative configuration: 70 % dynamic power at nominal and a
    /// 2 % regulator area overhead.
    pub fn default_core() -> Self {
        DvfsCore {
            dynamic_power_fraction: 0.7,
            regulator_area_overhead: 0.02,
        }
    }

    /// Creates a DVFS core model.
    ///
    /// # Errors
    ///
    /// Returns an error if `dynamic_power_fraction ∉ (0, 1]` or the
    /// regulator overhead is negative/non-finite.
    pub fn new(dynamic_power_fraction: f64, regulator_area_overhead: f64) -> Result<Self> {
        if !dynamic_power_fraction.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "dynamic power fraction",
                value: dynamic_power_fraction,
            });
        }
        if dynamic_power_fraction <= 0.0 || dynamic_power_fraction > 1.0 {
            return Err(ModelError::OutOfRange {
                parameter: "dynamic power fraction",
                value: dynamic_power_fraction,
                expected: "(0, 1]",
            });
        }
        if !regulator_area_overhead.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "regulator area overhead",
                value: regulator_area_overhead,
            });
        }
        if regulator_area_overhead < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "regulator area overhead",
                value: regulator_area_overhead,
                expected: "[0, +inf)",
            });
        }
        Ok(DvfsCore {
            dynamic_power_fraction,
            regulator_area_overhead,
        })
    }

    /// The dynamic power share δ, a fraction of total power in `[0, 1]`.
    #[inline]
    pub fn dynamic_power_fraction(&self) -> f64 {
        self.dynamic_power_fraction
    }

    /// The regulator area overhead, a fraction of the core's chip area.
    #[inline]
    pub fn regulator_area_overhead(&self) -> f64 {
        self.regulator_area_overhead
    }

    fn check_freq(freq_scale: f64) -> Result<f64> {
        if !freq_scale.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "frequency scale",
                value: freq_scale,
            });
        }
        if freq_scale <= 0.0 || freq_scale > 2.0 {
            return Err(ModelError::OutOfRange {
                parameter: "frequency scale",
                value: freq_scale,
                expected: "(0, 2] (beyond 2x nominal is outside the model's validity)",
            });
        }
        Ok(freq_scale)
    }

    /// Relative performance at frequency scale `k` (frequency-bound).
    ///
    /// # Errors
    ///
    /// Returns an error for `k ∉ (0, 2]`.
    pub fn performance(&self, freq_scale: f64) -> Result<f64> {
        Self::check_freq(freq_scale)
    }

    /// Relative power `δ·k³ + (1 − δ)·k`.
    ///
    /// # Errors
    ///
    /// Returns an error for `k ∉ (0, 2]`.
    pub fn power(&self, freq_scale: f64) -> Result<f64> {
        let k = Self::check_freq(freq_scale)?;
        let d = self.dynamic_power_fraction;
        Ok(d * k.powi(3) + (1.0 - d) * k)
    }

    /// Relative energy `δ·k² + (1 − δ)`.
    ///
    /// # Errors
    ///
    /// Returns an error for `k ∉ (0, 2]`.
    pub fn energy(&self, freq_scale: f64) -> Result<f64> {
        let k = Self::check_freq(freq_scale)?;
        let d = self.dynamic_power_fraction;
        Ok(d * k.powi(2) + (1.0 - d))
    }

    /// The design point at frequency scale `k`, including the regulator
    /// area, normalized to the nominal core *without* DVFS hardware.
    ///
    /// # Errors
    ///
    /// Returns an error for `k ∉ (0, 2]`.
    pub fn design_point(&self, freq_scale: f64) -> Result<DesignPoint> {
        DesignPoint::from_raw(
            1.0 + self.regulator_area_overhead,
            self.power(freq_scale)?,
            self.energy(freq_scale)?,
            self.performance(freq_scale)?,
        )
    }

    /// The baseline: the same core at nominal frequency without DVFS
    /// hardware (area 1, power 1, energy 1, performance 1).
    ///
    /// # Errors
    ///
    /// Never fails; mirrors the `DesignPoint` constructor signature.
    pub fn nominal_without_dvfs(&self) -> Result<DesignPoint> {
        DesignPoint::from_raw(1.0, 1.0, 1.0, 1.0)
    }
}

impl Default for DvfsCore {
    fn default() -> Self {
        DvfsCore::default_core()
    }
}

impl fmt::Display for DvfsCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DVFS core (δ={}, regulator +{:.0}%)",
            self.dynamic_power_fraction,
            self.regulator_area_overhead * 100.0
        )
    }
}

/// Turbo boost (§5.8, Finding #15): running above nominal frequency when
/// thermal headroom allows, paying extra area for the boost circuitry.
///
/// # Examples
///
/// ```
/// use focal_uarch::TurboBoost;
/// use focal_core::{classify, E2oWeight, Sustainability};
///
/// let turbo = TurboBoost::default_turbo();
/// let boosted = turbo.design_point(1.2)?;
/// let nominal = focal_core::DesignPoint::reference();
/// let c = classify(&boosted, &nominal, E2oWeight::OPERATIONAL_DOMINATED);
/// assert_eq!(c.class, Sustainability::Less); // Finding #15
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboBoost {
    core: DvfsCore,
    /// Extra area for turbo/thermal-management circuitry (on top of the
    /// regulators).
    turbo_area_overhead: f64,
}

impl TurboBoost {
    /// Default: the default DVFS core plus 1 % turbo circuitry.
    pub fn default_turbo() -> Self {
        TurboBoost {
            core: DvfsCore::default_core(),
            turbo_area_overhead: 0.01,
        }
    }

    /// Creates a turbo-boost model on top of a DVFS core.
    ///
    /// # Errors
    ///
    /// Returns an error if the turbo area overhead is negative or not
    /// finite.
    pub fn new(core: DvfsCore, turbo_area_overhead: f64) -> Result<Self> {
        if !turbo_area_overhead.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "turbo area overhead",
                value: turbo_area_overhead,
            });
        }
        if turbo_area_overhead < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "turbo area overhead",
                value: turbo_area_overhead,
                expected: "[0, +inf)",
            });
        }
        Ok(TurboBoost {
            core,
            turbo_area_overhead,
        })
    }

    /// The underlying DVFS core.
    #[inline]
    pub fn core(&self) -> DvfsCore {
        self.core
    }

    /// The extra chip area fraction of the turbo hardware.
    #[inline]
    pub fn turbo_area_overhead(&self) -> f64 {
        self.turbo_area_overhead
    }

    /// The boosted design point at `freq_scale > 1`, normalized to the
    /// nominal core without DVFS/turbo hardware.
    ///
    /// # Errors
    ///
    /// Returns an error if `freq_scale ≤ 1` (that would not be a boost) or
    /// outside the DVFS model's validity.
    pub fn design_point(&self, freq_scale: f64) -> Result<DesignPoint> {
        if freq_scale <= 1.0 {
            return Err(ModelError::OutOfRange {
                parameter: "turbo frequency scale",
                value: freq_scale,
                expected: "(1, 2]",
            });
        }
        DesignPoint::from_raw(
            1.0 + self.core.regulator_area_overhead + self.turbo_area_overhead,
            self.core.power(freq_scale)?,
            self.core.energy(freq_scale)?,
            self.core.performance(freq_scale)?,
        )
    }
}

impl fmt::Display for TurboBoost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turbo boost on {}", self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::{classify, E2oRange, E2oWeight, Sustainability};

    #[test]
    fn construction_validates() {
        assert!(DvfsCore::new(0.7, 0.02).is_ok());
        assert!(DvfsCore::new(0.0, 0.02).is_err());
        assert!(DvfsCore::new(1.1, 0.02).is_err());
        assert!(DvfsCore::new(0.7, -0.01).is_err());
        assert!(TurboBoost::new(DvfsCore::default_core(), -0.01).is_err());
    }

    #[test]
    fn nominal_point_is_unity() {
        let c = DvfsCore::default_core();
        assert_eq!(c.performance(1.0).unwrap(), 1.0);
        assert!((c.power(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((c.energy(1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cubic_quadratic_linear_scaling() {
        // Pure dynamic core (δ = 1): power = k³, energy = k².
        let c = DvfsCore::new(1.0, 0.0).unwrap();
        assert!((c.power(0.5).unwrap() - 0.125).abs() < 1e-12);
        assert!((c.energy(0.5).unwrap() - 0.25).abs() < 1e-12);
        // Nearly pure leakage core (δ → 0): power ≈ k (linear).
        let l = DvfsCore::new(1e-9, 0.0).unwrap();
        assert!((l.power(0.5).unwrap() - 0.5).abs() < 1e-6);
    }

    /// Finding #14: scaling down is strongly sustainable — the cubic power
    /// and quadratic energy savings dwarf the 2 % regulator area.
    #[test]
    fn finding14_downscaling_strongly_sustainable() {
        let c = DvfsCore::default_core();
        let nominal = c.nominal_without_dvfs().unwrap();
        for k in [0.5, 0.7, 0.9] {
            let scaled = c.design_point(k).unwrap();
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                assert_eq!(
                    classify(&scaled, &nominal, alpha).class,
                    Sustainability::Strongly,
                    "k={k}, α={alpha}"
                );
            }
        }
    }

    /// Finding #14 caveat: if the operational savings are tiny (k ≈ 1) and
    /// the embodied weight is extreme, the regulator area can flip the
    /// verdict — "might lead to a net increase … (though unlikely)".
    #[test]
    fn finding14_edge_case_near_nominal() {
        let c = DvfsCore::default_core();
        let nominal = c.nominal_without_dvfs().unwrap();
        let barely = c.design_point(0.999).unwrap();
        let verdict = classify(&barely, &nominal, E2oWeight::new(0.99).unwrap());
        assert_eq!(verdict.class, Sustainability::Less);
    }

    /// Finding #15: turbo boost is less sustainable under both scenarios
    /// and both α regimes.
    #[test]
    fn finding15_turbo_less_sustainable() {
        let t = TurboBoost::default_turbo();
        let nominal = DesignPoint::reference();
        for k in [1.1, 1.3, 1.5] {
            let boosted = t.design_point(k).unwrap();
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                assert_eq!(
                    classify(&boosted, &nominal, alpha).class,
                    Sustainability::Less,
                    "k={k}, α={alpha}"
                );
            }
        }
    }

    #[test]
    fn downscaling_verdict_robust_across_full_alpha_band() {
        use focal_core::classify_over_range;
        let c = DvfsCore::default_core();
        let nominal = c.nominal_without_dvfs().unwrap();
        let scaled = c.design_point(0.7).unwrap();
        let robust = classify_over_range(&scaled, &nominal, E2oRange::FULL, 21).unwrap();
        // Strongly sustainable for all α except the extreme embodied-only
        // corner (α near 1, where the regulator area dominates).
        assert!(robust.observed.contains(&Sustainability::Strongly));
    }

    #[test]
    fn frequency_domain_is_validated() {
        let c = DvfsCore::default_core();
        assert!(c.power(0.0).is_err());
        assert!(c.power(2.1).is_err());
        assert!(c.power(f64::NAN).is_err());
        let t = TurboBoost::default_turbo();
        assert!(t.design_point(1.0).is_err());
        assert!(t.design_point(0.9).is_err());
    }

    #[test]
    fn energy_is_power_over_performance() {
        let c = DvfsCore::default_core();
        for k in [0.5, 0.8, 1.0, 1.4] {
            let e = c.energy(k).unwrap();
            let p = c.power(k).unwrap();
            let s = c.performance(k).unwrap();
            assert!((e - p / s).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(DvfsCore::default_core().to_string().contains("DVFS"));
        assert!(TurboBoost::default_turbo().to_string().contains("turbo"));
    }
}
