//! Pipeline gating (§5.9, Finding #16): confidence-driven fetch gating that
//! suppresses wrong-path work (Manne et al. \[33\], numbers from Parikh et
//! al. \[39\]).

use focal_core::{DesignPoint, ModelError, Result};
use std::fmt;

/// A pipeline-gating configuration: relative energy and performance vs. the
/// ungated core, at zero hardware overhead (the confidence estimator reuses
/// the hybrid predictor's saturating counters).
///
/// The paper's numbers: energy −3.5 %, performance −6.6 %, hence power
/// −9.9 % ("almost 10 %").
///
/// # Examples
///
/// ```
/// use focal_uarch::PipelineGating;
/// use focal_core::{classify, E2oWeight, Sustainability};
///
/// let gated = PipelineGating::PAPER.design_point()?;
/// let base = focal_core::DesignPoint::reference();
/// let c = classify(&gated, &base, E2oWeight::OPERATIONAL_DOMINATED);
/// assert_eq!(c.class, Sustainability::Strongly); // Finding #16
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineGating {
    /// Relative energy (0.965 = −3.5 %).
    pub energy_ratio: f64,
    /// Relative performance (0.934 = −6.6 %).
    pub performance_ratio: f64,
    /// Extra chip area fraction (0 for the paper configuration).
    pub area_overhead: f64,
}

impl PipelineGating {
    /// The paper's configuration: energy ×0.965, performance ×0.934,
    /// no area overhead.
    pub const PAPER: PipelineGating = PipelineGating {
        energy_ratio: 0.965,
        performance_ratio: 0.934,
        area_overhead: 0.0,
    };

    /// Creates a gating configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the ratios are not strictly positive and finite
    /// or the area overhead is negative.
    pub fn new(energy_ratio: f64, performance_ratio: f64, area_overhead: f64) -> Result<Self> {
        for (name, v) in [
            ("energy ratio", energy_ratio),
            ("performance ratio", performance_ratio),
        ] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite {
                    parameter: name,
                    value: v,
                });
            }
            if v <= 0.0 {
                return Err(ModelError::OutOfRange {
                    parameter: name,
                    value: v,
                    expected: "(0, +inf)",
                });
            }
        }
        if !area_overhead.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "area overhead",
                value: area_overhead,
            });
        }
        if area_overhead < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "area overhead",
                value: area_overhead,
                expected: "[0, +inf)",
            });
        }
        Ok(PipelineGating {
            energy_ratio,
            performance_ratio,
            area_overhead,
        })
    }

    /// Relative power, `energy × performance` (≈ 0.901 for the paper
    /// configuration — "power hence reduces by almost 10 %").
    pub fn power_ratio(&self) -> f64 {
        self.energy_ratio * self.performance_ratio
    }

    /// The gated core's design point vs. the ungated core.
    ///
    /// # Errors
    ///
    /// Never fails for the published constants; guards the `DesignPoint`
    /// invariants for custom values.
    pub fn design_point(&self) -> Result<DesignPoint> {
        DesignPoint::from_raw(
            1.0 + self.area_overhead,
            self.power_ratio(),
            self.energy_ratio,
            self.performance_ratio,
        )
    }
}

impl fmt::Display for PipelineGating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline gating (E x{}, perf x{})",
            self.energy_ratio, self.performance_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::{classify, E2oWeight, Ncf, Scenario, Sustainability};

    #[test]
    fn power_reduces_by_almost_ten_percent() {
        let p = PipelineGating::PAPER.power_ratio();
        assert!((p - 0.9013).abs() < 0.001, "got {p}");
    }

    /// Finding #16: all four NCF values match the paper.
    #[test]
    fn finding16_ncf_values() {
        let gated = PipelineGating::PAPER.design_point().unwrap();
        let base = DesignPoint::reference();
        let cases = [
            (Scenario::FixedWork, 0.8, 0.99),
            (Scenario::FixedTime, 0.8, 0.98),
            (Scenario::FixedWork, 0.2, 0.97),
            (Scenario::FixedTime, 0.2, 0.92),
        ];
        for (scenario, alpha, expected) in cases {
            let ncf = Ncf::evaluate(&gated, &base, scenario, E2oWeight::new(alpha).unwrap());
            assert!(
                (ncf.value() - expected).abs() < 0.005,
                "{scenario} α={alpha}: got {:.4}, paper {expected}",
                ncf.value()
            );
        }
    }

    #[test]
    fn gating_is_strongly_sustainable_everywhere() {
        let gated = PipelineGating::PAPER.design_point().unwrap();
        let base = DesignPoint::reference();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            assert_eq!(
                classify(&gated, &base, alpha).class,
                Sustainability::Strongly
            );
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(PipelineGating::new(0.9, 0.9, 0.0).is_ok());
        assert!(PipelineGating::new(0.0, 0.9, 0.0).is_err());
        assert!(PipelineGating::new(0.9, 0.9, -0.1).is_err());
        assert!(PipelineGating::new(0.9, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn gating_trades_performance_for_sustainability() {
        let dp = PipelineGating::PAPER.design_point().unwrap();
        assert!(dp.performance().get() < 1.0);
        assert!(dp.energy().get() < 1.0);
        assert!(dp.power().get() < 1.0);
        assert_eq!(dp.area().get(), 1.0);
    }

    #[test]
    fn display_is_descriptive() {
        assert!(PipelineGating::PAPER.to_string().contains("gating"));
    }
}
