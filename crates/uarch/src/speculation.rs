//! Speculation models: dynamic branch prediction (§5.7, Figure 8) and
//! precise runahead execution (§5.7, Finding #13).

use focal_core::{DesignPoint, ModelError, Result};
use std::fmt;

/// The branch-prediction study of Figure 8, built on Parikh et al. \[39\]:
/// the largest hybrid predictor reduces total CPU energy by 7 % and
/// improves performance by 14 % over a small bimodal predictor, implying a
/// 6.6 % power increase; its chip area is swept from 0 to 8 % of the core.
///
/// # Examples
///
/// ```
/// use focal_uarch::BranchPredictor;
/// use focal_core::{E2oWeight, NcfPair};
///
/// let bp = BranchPredictor::PARIKH_HYBRID;
/// let x = bp.design_point(0.044)?; // a 64 KB TAGE-SC-L-sized predictor
/// let y = focal_core::DesignPoint::reference();
/// let ncf = NcfPair::evaluate(&x, &y, E2oWeight::OPERATIONAL_DOMINATED);
/// assert!(ncf.fixed_work.value() < 1.0); // saves under fixed-work…
/// assert!(ncf.fixed_time.value() > 1.0); // …but not fixed-time (weak)
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchPredictor {
    /// Relative energy vs. the bimodal baseline (0.93 = −7 %).
    energy_ratio: f64,
    /// Relative performance (1.14 = +14 %).
    performance_ratio: f64,
}

impl BranchPredictor {
    /// Parikh et al.'s largest hybrid predictor: energy −7 %, performance
    /// +14 % (hence power +6.6 %).
    pub const PARIKH_HYBRID: BranchPredictor = BranchPredictor {
        energy_ratio: 0.93,
        performance_ratio: 1.14,
    };

    /// Creates a predictor data point from its energy and performance
    /// ratios vs. the baseline predictor.
    ///
    /// # Errors
    ///
    /// Returns an error if either ratio is not strictly positive and
    /// finite.
    pub fn new(energy_ratio: f64, performance_ratio: f64) -> Result<Self> {
        for (name, v) in [
            ("energy ratio", energy_ratio),
            ("performance ratio", performance_ratio),
        ] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite {
                    parameter: name,
                    value: v,
                });
            }
            if v <= 0.0 {
                return Err(ModelError::OutOfRange {
                    parameter: name,
                    value: v,
                    expected: "(0, +inf)",
                });
            }
        }
        Ok(BranchPredictor {
            energy_ratio,
            performance_ratio,
        })
    }

    /// Relative energy.
    #[inline]
    pub fn energy_ratio(&self) -> f64 {
        self.energy_ratio
    }

    /// Relative performance.
    #[inline]
    pub fn performance_ratio(&self) -> f64 {
        self.performance_ratio
    }

    /// Relative power, `energy × performance` (energy ÷ time).
    pub fn power_ratio(&self) -> f64 {
        self.energy_ratio * self.performance_ratio
    }

    /// The design point for a predictor occupying `area_fraction` of the
    /// core's chip area (Figure 8 sweeps 0 to 0.08).
    ///
    /// # Errors
    ///
    /// Returns an error if `area_fraction` is negative, not finite, or
    /// above 0.5 (half the core spent on the predictor is outside any
    /// plausible design space).
    pub fn design_point(&self, area_fraction: f64) -> Result<DesignPoint> {
        if !area_fraction.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "predictor area fraction",
                value: area_fraction,
            });
        }
        if !(0.0..=0.5).contains(&area_fraction) {
            return Err(ModelError::OutOfRange {
                parameter: "predictor area fraction",
                value: area_fraction,
                expected: "[0, 0.5]",
            });
        }
        DesignPoint::from_raw(
            1.0 + area_fraction,
            self.power_ratio(),
            self.energy_ratio,
            self.performance_ratio,
        )
    }
}

impl fmt::Display for BranchPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "branch predictor (E x{}, perf x{})",
            self.energy_ratio, self.performance_ratio
        )
    }
}

/// Precise Runahead Execution (PRE) \[37\]: +38.2 % performance, −6.8 %
/// energy, hence +29.8 % power, for 1.24 KB of extra hardware (assumed
/// +0.5 % area).
///
/// # Examples
///
/// ```
/// use focal_uarch::PreciseRunahead;
/// use focal_core::{E2oWeight, Ncf, Scenario};
///
/// let pre = PreciseRunahead::PAPER.design_point()?;
/// let base = focal_core::DesignPoint::reference();
/// let ncf = Ncf::evaluate(&pre, &base, Scenario::FixedWork,
///                         E2oWeight::OPERATIONAL_DOMINATED);
/// assert!((ncf.value() - 0.95).abs() < 0.01); // Finding #13
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreciseRunahead {
    /// Relative performance vs. the baseline OoO core.
    pub performance_ratio: f64,
    /// Relative energy.
    pub energy_ratio: f64,
    /// Extra chip area fraction.
    pub area_overhead: f64,
}

impl PreciseRunahead {
    /// The published PRE numbers: perf +38.2 %, energy −6.8 %, area +0.5 %.
    pub const PAPER: PreciseRunahead = PreciseRunahead {
        performance_ratio: 1.382,
        energy_ratio: 0.932,
        area_overhead: 0.005,
    };

    /// Creates a runahead data point from its performance and energy
    /// ratios (dimensionless, vs. the baseline OoO core) and extra chip
    /// area fraction.
    ///
    /// # Errors
    ///
    /// Returns an error if a ratio is not strictly positive and finite,
    /// or the area overhead is negative or not finite.
    pub fn new(performance_ratio: f64, energy_ratio: f64, area_overhead: f64) -> Result<Self> {
        for (name, v) in [
            ("runahead performance ratio", performance_ratio),
            ("runahead energy ratio", energy_ratio),
            ("runahead area overhead", area_overhead),
        ] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite {
                    parameter: name,
                    value: v,
                });
            }
        }
        for (name, v) in [
            ("runahead performance ratio", performance_ratio),
            ("runahead energy ratio", energy_ratio),
        ] {
            if v <= 0.0 {
                return Err(ModelError::OutOfRange {
                    parameter: name,
                    value: v,
                    expected: "(0, +inf)",
                });
            }
        }
        if area_overhead < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "runahead area overhead",
                value: area_overhead,
                expected: "[0, +inf)",
            });
        }
        Ok(PreciseRunahead {
            performance_ratio,
            energy_ratio,
            area_overhead,
        })
    }

    /// Relative power, `energy × performance`.
    pub fn power_ratio(&self) -> f64 {
        self.energy_ratio * self.performance_ratio
    }

    /// The design point vs. the baseline OoO core.
    ///
    /// # Errors
    ///
    /// Never fails for the published constants; guards the `DesignPoint`
    /// invariants for custom values.
    pub fn design_point(&self) -> Result<DesignPoint> {
        DesignPoint::from_raw(
            1.0 + self.area_overhead,
            self.power_ratio(),
            self.energy_ratio,
            self.performance_ratio,
        )
    }
}

impl fmt::Display for PreciseRunahead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PRE (perf x{}, E x{})",
            self.performance_ratio, self.energy_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::{classify, E2oWeight, Ncf, Scenario, Sustainability};

    #[test]
    fn parikh_power_increase_matches_paper() {
        // 0.93 × 1.14 = 1.0602 ⇒ "power consumption increases by 6.6%"
        // (the paper rounds 1.066 from 0.93·1.14 ≈ 1.06; we encode the
        // energy/perf pair and derive power).
        let p = BranchPredictor::PARIKH_HYBRID.power_ratio();
        assert!((p - 1.0602).abs() < 1e-9);
        assert!(p > 1.05 && p < 1.07);
    }

    /// Finding #12, operational dominated, fixed-work: the predictor pays
    /// off irrespective of size (0–8 %).
    #[test]
    fn finding12_fixed_work_operational() {
        let bp = BranchPredictor::PARIKH_HYBRID;
        let base = DesignPoint::reference();
        for a in [0.0, 0.02, 0.044, 0.08] {
            let x = bp.design_point(a).unwrap();
            let ncf = Ncf::evaluate(
                &x,
                &base,
                Scenario::FixedWork,
                E2oWeight::OPERATIONAL_DOMINATED,
            );
            assert!(ncf.value() < 1.0, "area {a}: {}", ncf.value());
        }
    }

    /// Finding #12, embodied dominated, fixed-work: only small predictors
    /// pay off (threshold ≈ 1.75 % with these constants).
    #[test]
    fn finding12_fixed_work_embodied_threshold() {
        let bp = BranchPredictor::PARIKH_HYBRID;
        let base = DesignPoint::reference();
        let alpha = E2oWeight::EMBODIED_DOMINATED;
        let ncf_small = Ncf::evaluate(
            &bp.design_point(0.01).unwrap(),
            &base,
            Scenario::FixedWork,
            alpha,
        );
        let ncf_big = Ncf::evaluate(
            &bp.design_point(0.03).unwrap(),
            &base,
            Scenario::FixedWork,
            alpha,
        );
        assert!(ncf_small.value() < 1.0);
        assert!(ncf_big.value() > 1.0);
    }

    /// Finding #12, fixed-time: the predictor increases the footprint
    /// irrespective of size under both α scenarios.
    #[test]
    fn finding12_fixed_time_never_pays() {
        let bp = BranchPredictor::PARIKH_HYBRID;
        let base = DesignPoint::reference();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            for a in [0.0, 0.04, 0.08] {
                let x = bp.design_point(a).unwrap();
                let ncf = Ncf::evaluate(&x, &base, Scenario::FixedTime, alpha);
                assert!(ncf.value() > 1.0, "α={alpha} area={a}");
            }
        }
    }

    #[test]
    fn branch_predictor_is_weakly_sustainable_overall() {
        let x = BranchPredictor::PARIKH_HYBRID.design_point(0.01).unwrap();
        let c = classify(
            &x,
            &DesignPoint::reference(),
            E2oWeight::OPERATIONAL_DOMINATED,
        );
        assert_eq!(c.class, Sustainability::Weakly);
    }

    #[test]
    fn design_point_validates_area() {
        let bp = BranchPredictor::PARIKH_HYBRID;
        assert!(bp.design_point(-0.01).is_err());
        assert!(bp.design_point(0.6).is_err());
        assert!(bp.design_point(f64::NAN).is_err());
    }

    #[test]
    fn predictor_constructor_validates() {
        assert!(BranchPredictor::new(0.9, 1.1).is_ok());
        assert!(BranchPredictor::new(0.0, 1.1).is_err());
        assert!(BranchPredictor::new(0.9, f64::INFINITY).is_err());
    }

    /// Finding #13: all four PRE NCF values match the paper.
    #[test]
    fn finding13_pre_ncf_values() {
        let pre = PreciseRunahead::PAPER.design_point().unwrap();
        let base = DesignPoint::reference();
        let cases = [
            (Scenario::FixedWork, 0.2, 0.95),
            (Scenario::FixedTime, 0.2, 1.23),
            (Scenario::FixedWork, 0.8, 0.99),
            (Scenario::FixedTime, 0.8, 1.06),
        ];
        for (scenario, alpha, expected) in cases {
            let ncf = Ncf::evaluate(&pre, &base, scenario, E2oWeight::new(alpha).unwrap());
            assert!(
                (ncf.value() - expected).abs() < 0.01,
                "{scenario} α={alpha}: got {:.4}, paper {expected}",
                ncf.value()
            );
        }
    }

    #[test]
    fn pre_power_increase_matches_paper() {
        // 0.932 × 1.382 = 1.288 ≈ the paper's "+29.8 %" (they derive 1.298
        // from unrounded inputs; within 1 %).
        let p = PreciseRunahead::PAPER.power_ratio();
        assert!((p - 1.298).abs() < 0.015, "got {p}");
    }

    #[test]
    fn pre_is_weakly_sustainable() {
        let pre = PreciseRunahead::PAPER.design_point().unwrap();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            let c = classify(&pre, &DesignPoint::reference(), alpha);
            assert_eq!(c.class, Sustainability::Weakly, "α={alpha}");
        }
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(BranchPredictor::PARIKH_HYBRID
            .to_string()
            .contains("branch"));
        assert!(PreciseRunahead::PAPER.to_string().contains("PRE"));
    }
}
