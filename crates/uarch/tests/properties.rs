//! Property-based tests of the microarchitecture mechanism models.

use focal_core::{classify, DesignPoint, E2oWeight, Sustainability};
use focal_uarch::{
    Accelerator, BranchPredictor, DarkSiliconSoc, DvfsCore, FixedFunctionSuite, PipelineGating,
    ReconfigurableFabric, TurboBoost,
};
use proptest::prelude::*;

proptest! {
    /// Accelerator NCF is affine and decreasing in utilization, bounded by
    /// its endpoints.
    #[test]
    fn accelerator_ncf_affine_in_utilization(
        overhead in 0.0f64..3.0,
        advantage in 1.0f64..1000.0,
        alpha in 0.01f64..0.99,
        u in 0.0f64..=1.0,
    ) {
        let acc = Accelerator::new(overhead, advantage).unwrap();
        let w = E2oWeight::new(alpha).unwrap();
        let at = |u: f64| acc.ncf(u, w).unwrap();
        let interpolated = (1.0 - u) * at(0.0) + u * at(1.0);
        prop_assert!((at(u) - interpolated).abs() < 1e-9);
        prop_assert!(at(1.0) <= at(0.0) + 1e-12);
    }

    /// The break-even utilization, when it exists, really zeroes the
    /// saving.
    #[test]
    fn accelerator_break_even_is_exact(
        overhead in 0.0f64..1.0,
        advantage in 1.5f64..1000.0,
        alpha in 0.01f64..0.99,
    ) {
        let acc = Accelerator::new(overhead, advantage).unwrap();
        let w = E2oWeight::new(alpha).unwrap();
        if let Some(u) = acc.break_even_utilization(w) {
            prop_assert!((0.0..=1.0).contains(&u));
            prop_assert!((acc.ncf(u, w).unwrap() - 1.0).abs() < 1e-9);
        } else {
            // No break-even within [0, 1]: even full utilization loses.
            prop_assert!(acc.ncf(1.0, w).unwrap() > 1.0 - 1e-9);
        }
    }

    /// Dark silicon equals an accelerator with the equivalent area
    /// overhead for every utilization and weight.
    #[test]
    fn dark_silicon_equals_equivalent_accelerator(
        dark_fraction in 0.0f64..0.9,
        u in 0.0f64..=1.0,
        alpha in 0.0f64..=1.0,
    ) {
        let soc = DarkSiliconSoc::new(dark_fraction, 500.0).unwrap();
        let acc = soc.as_accelerator().unwrap();
        let w = E2oWeight::new(alpha).unwrap();
        prop_assert!((soc.ncf(u, w).unwrap() - acc.ncf(u, w).unwrap()).abs() < 1e-12);
    }

    /// DVFS power/energy/performance identities hold across the whole
    /// validity domain and for any dynamic-power split.
    #[test]
    fn dvfs_identities_hold(delta in 0.05f64..1.0, k in 0.05f64..2.0) {
        let core = DvfsCore::new(delta, 0.02).unwrap();
        let e = core.energy(k).unwrap();
        let p = core.power(k).unwrap();
        let s = core.performance(k).unwrap();
        prop_assert!((e - p / s).abs() < 1e-12);
        // Power is superlinear above nominal, sublinear below, relative
        // to frequency — except in the pure-leakage limit where it is
        // exactly linear.
        if delta > 0.1 {
            if k > 1.0 {
                prop_assert!(p > k);
            } else if k < 1.0 {
                prop_assert!(p < k + 1e-12);
            }
        }
    }

    /// Turbo boost is less sustainable for every boost level and weight.
    #[test]
    fn turbo_always_less_sustainable(k in 1.01f64..2.0, alpha in 0.01f64..0.99) {
        let turbo = TurboBoost::default_turbo();
        let boosted = turbo.design_point(k).unwrap();
        let verdict = classify(&boosted, &DesignPoint::reference(), E2oWeight::new(alpha).unwrap());
        prop_assert_eq!(verdict.class, Sustainability::Less);
    }

    /// A gating configuration that reduces both energy and performance by
    /// the same mechanism always reduces power more than energy.
    #[test]
    fn gating_power_below_energy(e_ratio in 0.8f64..1.0, perf_ratio in 0.8f64..1.0) {
        let g = PipelineGating::new(e_ratio, perf_ratio, 0.0).unwrap();
        prop_assert!(g.power_ratio() <= g.energy_ratio + 1e-12);
    }

    /// The branch predictor's derived power ratio is consistent with its
    /// design point at any area.
    #[test]
    fn predictor_design_point_consistent(
        e in 0.7f64..1.2,
        perf in 0.9f64..1.5,
        area in 0.0f64..0.5,
    ) {
        let bp = BranchPredictor::new(e, perf).unwrap();
        let dp = bp.design_point(area).unwrap();
        prop_assert!((dp.power().get() - e * perf).abs() < 1e-12);
        prop_assert!((dp.area().get() - (1.0 + area)).abs() < 1e-12);
    }

    /// The reconfigurable crossover, when it exists, is an exact tie; on
    /// either side the predicted winner really wins.
    #[test]
    fn reconfig_crossover_exact(
        suite_area in 0.05f64..0.2,
        count in 5u32..30,
        fabric_area in 0.1f64..0.8,
        alpha in 0.001f64..0.999,
    ) {
        let suite = FixedFunctionSuite::new(count, suite_area, 500.0).unwrap();
        let fabric = ReconfigurableFabric::new(fabric_area, 50.0).unwrap();
        let w = E2oWeight::new(alpha).unwrap();
        if let Some(u) = fabric.crossover_vs_fixed(&suite, w) {
            let f = fabric.ncf(u, w).unwrap();
            let s = suite.ncf(u, w).unwrap();
            prop_assert!((f - s).abs() < 1e-9);
        }
    }
}
