//! CLI for focal-lint: `cargo run -p focal-lint -- check`.

use focal_lint::{check_workspace, diagnostics, CheckConfig, Format};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
focal-lint — FOCAL-specific static analysis

USAGE:
    focal-lint check [--format text|json|github|sarif] [--root PATH] [--manifest PATH]
    focal-lint list-rules

COMMANDS:
    check           Run every rule over the workspace
    list-rules      Print each rule's id, severity and scope
                    (the rule ids are what allow directives may name;
                    an allow naming anything else is a finding)

OPTIONS:
    --format FMT    Output format: text (default, rustc-style), json
                    (machine-readable array), github (workflow
                    annotations), sarif (SARIF 2.1.0 report)
    --root PATH     Workspace root (default: auto-detected)
    --manifest PATH Constants manifest, relative to root
                    (default: data/constants.toml)

EXIT CODES:
    0  no findings     1  findings reported     2  usage or I/O error
";

fn detect_root() -> PathBuf {
    // Prefer the invocation directory when it is the workspace root;
    // fall back to the location of this crate inside the workspace
    // (`cargo run -p focal-lint` can be launched from a sub-directory).
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        return cwd;
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(command) = iter.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if command == "list-rules" {
        print!("{}", diagnostics::render_rule_list());
        return ExitCode::SUCCESS;
    }
    if command != "check" {
        eprintln!("unknown command `{command}`\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut manifest: Option<PathBuf> = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().and_then(|v| Format::from_arg(v)) {
                Some(f) => format = f,
                None => {
                    eprintln!("--format requires one of: text, json, github, sarif");
                    return ExitCode::from(2);
                }
            },
            "--root" => match iter.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--manifest" => match iter.next() {
                Some(v) => manifest = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--manifest requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut config = CheckConfig::new(root.unwrap_or_else(detect_root));
    if let Some(m) = manifest {
        config.manifest = m;
    }

    match check_workspace(&config) {
        Ok(diags) => {
            print!("{}", diagnostics::render(&diags, format));
            if diags.is_empty() {
                if format == Format::Text {
                    // The summary line already says "0 findings"; add the
                    // explicit pass marker CI logs grep for.
                    println!("focal-lint: PASS");
                }
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("focal-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
