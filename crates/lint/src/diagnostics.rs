//! Diagnostic types and the three output formats (`text`, `json`,
//! `github`).

use std::fmt;

/// The lint rule that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `==`/`!=` on float-typed expressions outside test code.
    FloatEq,
    /// `.unwrap()`, `.expect()`, `panic!` etc. in non-test model code.
    PanicFreedom,
    /// Paper constants must match `data/constants.toml`.
    ConstantProvenance,
    /// Quantity-named public functions must carry units.
    UnitHygiene,
    /// Malformed or unjustified `// focal-lint: allow(...)` directives.
    AllowDirective,
}

impl Rule {
    /// The rule's stable kebab-case name (used in allow directives).
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatEq => "float-eq",
            Rule::PanicFreedom => "panic-freedom",
            Rule::ConstantProvenance => "constant-provenance",
            Rule::UnitHygiene => "unit-hygiene",
            Rule::AllowDirective => "allow-directive",
        }
    }

    /// Parses a rule name as written in an allow directive.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "float-eq" => Some(Rule::FloatEq),
            "panic-freedom" => Some(Rule::PanicFreedom),
            "constant-provenance" => Some(Rule::ConstantProvenance),
            "unit-hygiene" => Some(Rule::UnitHygiene),
            "allow-directive" => Some(Rule::AllowDirective),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, pointing at a `file:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or justify it).
    pub help: String,
}

/// Output format selector for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable, rustc-style.
    Text,
    /// A JSON array of diagnostic objects.
    Json,
    /// GitHub Actions workflow annotations (`::error file=…`).
    Github,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn from_arg(arg: &str) -> Option<Format> {
        match arg {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics in the requested format, returning the full
/// report as a string (so it is testable and the CLI just prints it).
pub fn render(diagnostics: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diagnostics {
                out.push_str(&format!(
                    "error[{}]: {}\n  --> {}:{}:{}\n  = help: {}\n\n",
                    d.rule, d.message, d.file, d.line, d.col, d.help
                ));
            }
            out.push_str(&format!(
                "focal-lint: {} finding{}\n",
                diagnostics.len(),
                if diagnostics.len() == 1 { "" } else { "s" }
            ));
            out
        }
        Format::Json => {
            let items: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
                        d.rule,
                        json_escape(&d.file),
                        d.line,
                        d.col,
                        json_escape(&d.message),
                        json_escape(&d.help)
                    )
                })
                .collect();
            format!("[\n{}\n]\n", items.join(",\n"))
        }
        Format::Github => {
            let mut out = String::new();
            for d in diagnostics {
                // %0A is the escaped newline in workflow commands.
                out.push_str(&format!(
                    "::error file={},line={},col={},title=focal-lint[{}]::{} ({})\n",
                    d.file, d.line, d.col, d.rule, d.message, d.help
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: Rule::FloatEq,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "float `==` comparison".into(),
            help: "use a tolerance".into(),
        }]
    }

    #[test]
    fn text_format_is_rustc_style() {
        let out = render(&sample(), Format::Text);
        assert!(out.contains("error[float-eq]: float `==` comparison"));
        assert!(out.contains("--> crates/x/src/lib.rs:3:9"));
        assert!(out.contains("focal-lint: 1 finding"));
    }

    #[test]
    fn json_format_escapes_and_lists() {
        let mut diags = sample();
        diags[0].message = "has \"quotes\" and\nnewline".into();
        let out = render(&diags, Format::Json);
        assert!(out.contains("\\\"quotes\\\""));
        assert!(out.contains("\\n"));
        assert!(out.starts_with("[\n"));
        assert!(out.trim_end().ends_with(']'));
    }

    #[test]
    fn github_format_is_workflow_command() {
        let out = render(&sample(), Format::Github);
        assert!(out.starts_with("::error file=crates/x/src/lib.rs,line=3,col=9"));
        assert!(out.contains("title=focal-lint[float-eq]"));
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in [
            Rule::FloatEq,
            Rule::PanicFreedom,
            Rule::ConstantProvenance,
            Rule::UnitHygiene,
            Rule::AllowDirective,
        ] {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("bogus"), None);
    }
}
