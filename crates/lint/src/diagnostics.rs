//! Diagnostic types and the four output formats (`text`, `json`,
//! `github`, `sarif`).

use std::fmt;

/// The lint rule that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `==`/`!=` on float-typed expressions outside test code.
    FloatEq,
    /// `.unwrap()`, `.expect()`, `panic!` etc. in non-test model code —
    /// directly, or transitively through the workspace call graph.
    PanicFreedom,
    /// Paper constants must match `data/constants.toml`.
    ConstantProvenance,
    /// Quantity-named public functions must carry units.
    UnitHygiene,
    /// `HashMap`/`HashSet` in determinism-scoped code: iteration order
    /// is nondeterministic and poisons digests.
    NondetIteration,
    /// RNGs must be explicitly seeded; chunked parallel code must derive
    /// per-chunk seeds via `chunk_seed`.
    RngHygiene,
    /// Float reductions inside unblessed parallel paths (anything other
    /// than focal-engine's chunk-order-merged operations).
    ReductionOrder,
    /// Concurrency primitives (`Mutex`, atomics, `thread::spawn`, …)
    /// outside `crates/engine`.
    ConcurrencyConfinement,
    /// Malformed, unjustified or stale `// focal-lint: allow(...)`
    /// directives.
    AllowDirective,
}

impl Rule {
    /// Every rule, in stable presentation order (used by `list-rules`,
    /// the SARIF rule table and the round-trip tests).
    pub const ALL: &'static [Rule] = &[
        Rule::FloatEq,
        Rule::PanicFreedom,
        Rule::ConstantProvenance,
        Rule::UnitHygiene,
        Rule::NondetIteration,
        Rule::RngHygiene,
        Rule::ReductionOrder,
        Rule::ConcurrencyConfinement,
        Rule::AllowDirective,
    ];

    /// The rule's stable kebab-case name (used in allow directives).
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatEq => "float-eq",
            Rule::PanicFreedom => "panic-freedom",
            Rule::ConstantProvenance => "constant-provenance",
            Rule::UnitHygiene => "unit-hygiene",
            Rule::NondetIteration => "nondet-iteration",
            Rule::RngHygiene => "rng-hygiene",
            Rule::ReductionOrder => "reduction-order",
            Rule::ConcurrencyConfinement => "concurrency-confinement",
            Rule::AllowDirective => "allow-directive",
        }
    }

    /// Parses a rule name as written in an allow directive.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// The rule's enforcement tier. focal-lint has a single tier: every
    /// finding fails the build (`deny`) — a lint that merely warns about
    /// a determinism violation would let it reach the digests.
    pub fn severity(self) -> &'static str {
        "deny"
    }

    /// Human-readable description of where the rule applies.
    pub fn scope(self) -> &'static str {
        match self {
            Rule::FloatEq => "all non-test code",
            Rule::PanicFreedom => "model crates (core, wafer, perf, cache, uarch, scaling, act, engine); call-graph transitive",
            Rule::ConstantProvenance => "whole workspace vs data/constants.toml",
            Rule::UnitHygiene => "model-crate public API",
            Rule::NondetIteration => "determinism crates (model crates + studies, report, bench)",
            Rule::RngHygiene => "determinism crates (model crates + studies, report, bench)",
            Rule::ReductionOrder => "determinism crates (model crates + studies, report, bench)",
            Rule::ConcurrencyConfinement => "all src except crates/engine (and the linter itself)",
            Rule::AllowDirective => "all files",
        }
    }

    /// One-line summary (SARIF `shortDescription`, `list-rules` output).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::FloatEq => "no ==/!= against float literals or NaN outside tests",
            Rule::PanicFreedom => {
                "no unwrap/expect/panic!/literal indexing in model code, nor calls that reach one"
            }
            Rule::ConstantProvenance => {
                "every hard-coded paper constant registered in data/constants.toml, no drift"
            }
            Rule::UnitHygiene => "quantity-named public fns use newtypes or document units",
            Rule::NondetIteration => {
                "no HashMap/HashSet where iteration order can reach results or digests"
            }
            Rule::RngHygiene => {
                "RNGs explicitly seeded; parallel chunks seeded via chunk_seed(seed, chunk)"
            }
            Rule::ReductionOrder => {
                "float sum/fold only inside focal-engine's chunk-order-merged operations"
            }
            Rule::ConcurrencyConfinement => "threads, locks and atomics confined to crates/engine",
            Rule::AllowDirective => {
                "allow directives are well-formed, justified and name live rules"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, pointing at a `file:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or justify it).
    pub help: String,
}

/// Output format selector for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable, rustc-style.
    Text,
    /// A JSON array of diagnostic objects.
    Json,
    /// GitHub Actions workflow annotations (`::error file=…`).
    Github,
    /// SARIF 2.1.0 (one run, one result per diagnostic).
    Sarif,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn from_arg(arg: &str) -> Option<Format> {
        match arg {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the SARIF 2.1.0 report: one `run` with the full rule table in
/// the tool descriptor and one `result` per diagnostic, so uploads to
/// code-scanning UIs carry rule metadata even on clean runs.
fn render_sarif(diagnostics: &[Diagnostic]) -> String {
    let rules: Vec<String> = Rule::ALL
        .iter()
        .map(|r| {
            format!(
                "          {{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
                 \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
                r.name(),
                json_escape(r.summary())
            )
        })
        .collect();
    let rule_index = |rule: Rule| {
        Rule::ALL
            .iter()
            .position(|r| *r == rule)
            .unwrap_or_default()
    };
    let results: Vec<String> = diagnostics
        .iter()
        .map(|d| {
            format!(
                "        {{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"error\",\
                 \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":\
                 {{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\
                 \"startColumn\":{}}}}}}}]}}",
                d.rule,
                rule_index(d.rule),
                json_escape(&format!("{} ({})", d.message, d.help)),
                json_escape(&d.file),
                d.line,
                d.col
            )
        })
        .collect();
    format!(
        "{{\n  \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\":\"2.1.0\",\n  \"runs\":[{{\n    \"tool\":{{\"driver\":{{\
         \"name\":\"focal-lint\",\"informationUri\":\"https://github.com/focal/focal\",\
         \"rules\":[\n{}\n        ]}}}},\n    \"results\":[\n{}\n    ]\n  }}]\n}}\n",
        rules.join(",\n"),
        results.join(",\n")
    )
}

/// Renders diagnostics in the requested format, returning the full
/// report as a string (so it is testable and the CLI just prints it).
pub fn render(diagnostics: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diagnostics {
                out.push_str(&format!(
                    "error[{}]: {}\n  --> {}:{}:{}\n  = help: {}\n\n",
                    d.rule, d.message, d.file, d.line, d.col, d.help
                ));
            }
            out.push_str(&format!(
                "focal-lint: {} finding{}\n",
                diagnostics.len(),
                if diagnostics.len() == 1 { "" } else { "s" }
            ));
            out
        }
        Format::Json => {
            let items: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
                        d.rule,
                        json_escape(&d.file),
                        d.line,
                        d.col,
                        json_escape(&d.message),
                        json_escape(&d.help)
                    )
                })
                .collect();
            format!("[\n{}\n]\n", items.join(",\n"))
        }
        Format::Github => {
            let mut out = String::new();
            for d in diagnostics {
                // %0A is the escaped newline in workflow commands.
                out.push_str(&format!(
                    "::error file={},line={},col={},title=focal-lint[{}]::{} ({})\n",
                    d.file, d.line, d.col, d.rule, d.message, d.help
                ));
            }
            out
        }
        Format::Sarif => render_sarif(diagnostics),
    }
}

/// Renders the `list-rules` table: one row per rule with its id,
/// severity and scope, aligned for terminals.
pub fn render_rule_list() -> String {
    let id_w = Rule::ALL
        .iter()
        .map(|r| r.name().len())
        .max()
        .unwrap_or_default();
    let mut out = format!("{:<id_w$}  {:<8}  {}\n", "rule", "severity", "scope");
    for rule in Rule::ALL {
        out.push_str(&format!(
            "{:<id_w$}  {:<8}  {}\n",
            rule.name(),
            rule.severity(),
            rule.scope()
        ));
        out.push_str(&format!("{:<id_w$}  {:<8}  = {}\n", "", "", rule.summary()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: Rule::FloatEq,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "float `==` comparison".into(),
            help: "use a tolerance".into(),
        }]
    }

    #[test]
    fn text_format_is_rustc_style() {
        let out = render(&sample(), Format::Text);
        assert!(out.contains("error[float-eq]: float `==` comparison"));
        assert!(out.contains("--> crates/x/src/lib.rs:3:9"));
        assert!(out.contains("focal-lint: 1 finding"));
    }

    #[test]
    fn json_format_escapes_and_lists() {
        let mut diags = sample();
        diags[0].message = "has \"quotes\" and\nnewline".into();
        let out = render(&diags, Format::Json);
        assert!(out.contains("\\\"quotes\\\""));
        assert!(out.contains("\\n"));
        assert!(out.starts_with("[\n"));
        assert!(out.trim_end().ends_with(']'));
    }

    #[test]
    fn github_format_is_workflow_command() {
        let out = render(&sample(), Format::Github);
        assert!(out.starts_with("::error file=crates/x/src/lib.rs,line=3,col=9"));
        assert!(out.contains("title=focal-lint[float-eq]"));
    }

    #[test]
    fn sarif_format_carries_rules_and_results() {
        let out = render(&sample(), Format::Sarif);
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"name\":\"focal-lint\""));
        // The full rule table ships even for a single finding…
        for rule in Rule::ALL {
            assert!(
                out.contains(&format!("\"id\":\"{}\"", rule.name())),
                "{rule}"
            );
        }
        // …and the result points at the right file/line/col.
        assert!(out.contains("\"ruleId\":\"float-eq\""));
        assert!(out.contains("\"uri\":\"crates/x/src/lib.rs\""));
        assert!(out.contains("\"startLine\":3"));
        assert!(out.contains("\"startColumn\":9"));
    }

    #[test]
    fn sarif_of_no_findings_is_still_a_report() {
        let out = render(&[], Format::Sarif);
        assert!(out.contains("\"results\":["));
        assert!(out.contains("\"rules\":["));
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(*rule));
        }
        assert_eq!(Rule::from_name("bogus"), None);
    }

    #[test]
    fn rule_list_names_every_rule_and_severity() {
        let out = render_rule_list();
        for rule in Rule::ALL {
            assert!(out.contains(rule.name()), "{rule} missing from list");
        }
        assert!(out.contains("deny"));
        assert!(out.contains("scope"));
    }

    #[test]
    fn format_from_arg_knows_sarif() {
        assert_eq!(Format::from_arg("sarif"), Some(Format::Sarif));
        assert_eq!(Format::from_arg("text"), Some(Format::Text));
        assert_eq!(Format::from_arg("yaml"), None);
    }
}
