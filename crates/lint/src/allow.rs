//! The `// focal-lint: allow(<rule>) -- <reason>` escape hatch.
//!
//! A finding on line `L` is suppressed when a well-formed allow
//! directive for its rule appears either on line `L` itself (trailing
//! comment) or on line `L − 1` (a comment line directly above). The
//! justification after `--` is **mandatory**: a directive without a
//! non-empty reason is itself reported (rule `allow-directive`), so
//! every suppression in the tree carries a reviewable explanation.
//!
//! Only plain `//` comments are directives. Doc comments (`///`, `//!`)
//! are rendered documentation — text like "write `focal-lint:
//! allow(<rule>)`" there is prose about the grammar, not a suppression.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::Comment;

/// One parsed allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules this directive suppresses.
    pub rules: Vec<Rule>,
    /// Line the directive appears on.
    pub line: u32,
    /// The justification text after `--`.
    pub reason: String,
}

/// All directives of a file plus any malformed-directive diagnostics.
#[derive(Debug, Default)]
pub struct Allows {
    directives: Vec<Allow>,
    /// Diagnostics for malformed or unjustified directives.
    pub problems: Vec<(u32, String)>,
}

impl Allows {
    /// Extracts directives from a file's comments.
    pub fn parse(comments: &[Comment]) -> Allows {
        let mut out = Allows::default();
        for comment in comments {
            if comment.doc {
                continue;
            }
            let Some(idx) = comment.text.find("focal-lint:") else {
                continue;
            };
            let body = comment.text[idx + "focal-lint:".len()..].trim();
            let Some(rest) = body.strip_prefix("allow") else {
                out.problems.push((
                    comment.line,
                    format!("unrecognized focal-lint directive `{body}` (expected `allow(<rule>) -- <reason>`)"),
                ));
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('(') else {
                out.problems
                    .push((comment.line, "allow directive missing `(<rule>)`".into()));
                continue;
            };
            let Some((rule_list, tail)) = rest.split_once(')') else {
                out.problems
                    .push((comment.line, "allow directive missing closing `)`".into()));
                continue;
            };
            let mut rules = Vec::new();
            let mut bad_rule = false;
            for name in rule_list.split(',') {
                let name = name.trim();
                match Rule::from_name(name) {
                    Some(rule) => rules.push(rule),
                    None => {
                        out.problems.push((
                            comment.line,
                            format!(
                                "unknown lint rule `{name}` in allow directive — the rule \
                                 was renamed or removed (stale allow); see \
                                 `focal-lint list-rules` for live rule ids"
                            ),
                        ));
                        bad_rule = true;
                    }
                }
            }
            if bad_rule {
                continue;
            }
            let reason = tail
                .trim_start()
                .strip_prefix("--")
                .map(|r| r.trim().to_string())
                .unwrap_or_default();
            if reason.is_empty() {
                out.problems.push((
                    comment.line,
                    "allow directive requires a justification: `-- <reason>`".into(),
                ));
                continue;
            }
            out.directives.push(Allow {
                rules,
                line: comment.line,
                reason,
            });
        }
        out
    }

    /// Whether `rule` is suppressed at `line` (directive on the same
    /// line or the line directly above).
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        self.directives
            .iter()
            .any(|a| a.rules.contains(&rule) && (a.line == line || a.line + 1 == line))
    }

    /// Converts directive problems into diagnostics for `file`.
    pub fn problem_diagnostics(&self, file: &str) -> Vec<Diagnostic> {
        self.problems
            .iter()
            .map(|(line, message)| Diagnostic {
                rule: Rule::AllowDirective,
                file: file.to_string(),
                line: *line,
                col: 1,
                message: message.clone(),
                help: "write `// focal-lint: allow(<rule>) -- <justification>`".into(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn allows(src: &str) -> Allows {
        Allows::parse(&lex(src).comments)
    }

    #[test]
    fn well_formed_directive_covers_same_and_next_line() {
        let a = allows("// focal-lint: allow(panic-freedom) -- startup-only lookup\nfoo();\n");
        assert!(a.problems.is_empty());
        assert!(a.covers(Rule::PanicFreedom, 1));
        assert!(a.covers(Rule::PanicFreedom, 2));
        assert!(!a.covers(Rule::PanicFreedom, 3));
        assert!(!a.covers(Rule::FloatEq, 2));
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let a = allows("// focal-lint: allow(float-eq, unit-hygiene) -- sentinel compare\n");
        assert!(a.covers(Rule::FloatEq, 2));
        assert!(a.covers(Rule::UnitHygiene, 2));
    }

    #[test]
    fn missing_reason_is_a_problem() {
        let a = allows("// focal-lint: allow(float-eq)\n");
        assert_eq!(a.problems.len(), 1);
        assert!(!a.covers(Rule::FloatEq, 2));
        assert!(a.problems[0].1.contains("justification"));
    }

    #[test]
    fn empty_reason_is_a_problem() {
        let a = allows("// focal-lint: allow(float-eq) --   \n");
        assert_eq!(a.problems.len(), 1);
        assert!(!a.covers(Rule::FloatEq, 2));
    }

    #[test]
    fn doc_comments_are_prose_not_directives() {
        // Documentation describing the grammar must neither suppress
        // findings nor be reported as malformed.
        let a = allows("/// write `// focal-lint: allow(<rule>) -- <reason>`\nfoo();\n");
        assert!(a.problems.is_empty());
        assert!(!a.covers(Rule::FloatEq, 2));
        let inner = allows("//! e.g. `// focal-lint: allow(float-eq) -- sentinel`\n");
        assert!(inner.problems.is_empty());
        assert!(!inner.covers(Rule::FloatEq, 1));
    }

    #[test]
    fn unknown_rule_is_a_problem() {
        let a = allows("// focal-lint: allow(made-up) -- because\n");
        assert_eq!(a.problems.len(), 1);
        assert!(a.problems[0].1.contains("unknown lint rule"));
    }
}
