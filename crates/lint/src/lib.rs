//! # focal-lint
//!
//! Workspace-wide static analysis enforcing FOCAL-specific invariants
//! that clippy cannot express. FOCAL's credibility rests on its
//! first-order arithmetic being *exactly* the paper's arithmetic: one
//! transposed constant or one unit mix-up corrupts every downstream
//! figure, so these invariants are machine-checked rather than left to
//! review discipline.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p focal-lint -- check [--format text|json|github|sarif]
//! cargo run -p focal-lint -- list-rules
//! ```
//!
//! ## Rules
//!
//! * **`float-eq`** — no `==`/`!=` against float literals or NaN
//!   outside `#[cfg(test)]` code ([`rules::float_eq`]).
//! * **`panic-freedom`** — no `.unwrap()` / `.expect()` / `panic!` /
//!   literal indexing in non-test code of the model crates, nor any
//!   call chain that reaches one outside them — panic-reachability is
//!   transitive over the workspace call graph ([`rules::panic_free`]).
//! * **`constant-provenance`** — every hard-coded paper constant must be
//!   registered in `data/constants.toml` and every registered source
//!   must still carry its value ([`rules::constants`]).
//! * **`unit-hygiene`** — quantity-named public functions in model
//!   crates must use quantity newtypes or document units
//!   ([`rules::units`]).
//! * **`nondet-iteration`** — no `HashMap`/`HashSet` in
//!   determinism-scoped crates; iteration order must be stable
//!   ([`rules::nondet_iteration`]).
//! * **`rng-hygiene`** — no entropy/time seeding, and per-chunk seeding
//!   in parallel closures must go through `chunk_seed`
//!   ([`rules::rng_hygiene`]).
//! * **`reduction-order`** — float `sum`/`fold` only inside
//!   focal-engine's chunk-order-merged parallel operations
//!   ([`rules::reduction_order`]).
//! * **`concurrency-confinement`** — threads, locks and atomics stay in
//!   `crates/engine` ([`rules::confinement`]).
//!
//! The cross-file rules run on a lightweight symbol table and call
//! graph ([`symbols`]) built from the same token streams — no `syn`,
//! no rustc; resolution is conservative and ambiguity-aware.
//!
//! ## The escape hatch
//!
//! Any finding can be suppressed — with a mandatory justification — by
//! a comment on the same line or the line directly above:
//!
//! ```text
//! // focal-lint: allow(panic-freedom) -- table is a compile-time constant
//! ```
//!
//! A directive without a reason is itself a finding, so the workspace
//! never accumulates unexplained suppressions.

pub mod allow;
pub mod diagnostics;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;
pub mod symbols;

pub use diagnostics::{Diagnostic, Format, Rule};
pub use engine::{check_workspace, run_rules, CheckConfig};
pub use manifest::{Manifest, PaperConstant};
pub use source::SourceFile;
pub use symbols::SymbolTable;
