//! The paper-constant manifest `data/constants.toml`.
//!
//! The manifest is the single source of truth for every numeric constant
//! FOCAL takes from the paper (Imec growth rates, Pollack's exponent,
//! defect densities, α presets, wafer geometry): each entry records the
//! value, its units, the paper section it comes from, the textual forms
//! it may legitimately take in source (`0.252`, `1.252`, `25.2`…) and
//! the modules allowed to hard-code it.
//!
//! The build environment has no TOML crate, so this module carries a
//! small parser for the subset the manifest uses — `[[constant]]`
//! array-of-tables, string / float / string-array values and `#`
//! comments — plus a canonical serializer so the golden tests can assert
//! a byte-exact round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One registered paper constant.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperConstant {
    /// Stable kebab-case identifier.
    pub name: String,
    /// Canonical numeric value as used in the model.
    pub value: f64,
    /// Physical units (or `"dimensionless"`).
    pub units: String,
    /// Paper provenance (section / figure).
    pub section: String,
    /// Source-text forms that count as an occurrence of this constant.
    pub literals: Vec<String>,
    /// Optional keyword that must appear on the line (case-insensitive)
    /// for a literal to count — needed for non-distinctive values like
    /// `0.5`.
    pub context: Option<String>,
    /// Repo-relative files allowed (and expected) to hard-code it.
    pub sources: Vec<String>,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Constants in file order.
    pub constants: Vec<PaperConstant>,
}

/// A scalar or string-array TOML value (the subset we accept).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    StrArray(Vec<String>),
}

fn parse_string(raw: &str) -> Result<(String, &str), String> {
    let rest = raw
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string, got `{raw}`"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => return Err(format!("unsupported escape `\\{other:?}`")),
            },
            '"' => return Ok((out, &rest[i + 1..])),
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_value(raw: &str) -> Result<Value, String> {
    let raw = raw.trim();
    if raw.starts_with('"') {
        let (s, rest) = parse_string(raw)?;
        if !rest.trim().is_empty() {
            return Err(format!("trailing content after string: `{rest}`"));
        }
        return Ok(Value::Str(s));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: `{raw}`"))?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (item, after) = parse_string(rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err(format!("expected `,` in array, got `{rest}`"));
            }
        }
        return Ok(Value::StrArray(items));
    }
    raw.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("unsupported TOML value: `{raw}`"))
}

impl Manifest {
    /// Parses the manifest text, validating structure and invariants.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut tables: Vec<BTreeMap<String, Value>> = Vec::new();
        let mut current: Option<BTreeMap<String, Value>> = None;
        for (lineno, raw_line) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[constant]]" {
                if let Some(table) = current.take() {
                    tables.push(table);
                }
                current = Some(BTreeMap::new());
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "line {lineno}: only `[[constant]]` tables are supported, got `{line}`"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let table = current
                .as_mut()
                .ok_or_else(|| format!("line {lineno}: key outside a [[constant]] table"))?;
            let key = key.trim().to_string();
            let parsed = parse_value(value).map_err(|e| format!("line {lineno}: {e}"))?;
            if table.insert(key.clone(), parsed).is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
        }
        if let Some(table) = current.take() {
            tables.push(table);
        }

        let mut constants = Vec::new();
        for (idx, mut table) in tables.into_iter().enumerate() {
            let take_str =
                |table: &mut BTreeMap<String, Value>, key: &str| -> Result<String, String> {
                    match table.remove(key) {
                        Some(Value::Str(s)) => Ok(s),
                        Some(_) => Err(format!("constant #{}: `{key}` must be a string", idx + 1)),
                        None => Err(format!("constant #{}: missing `{key}`", idx + 1)),
                    }
                };
            let name = take_str(&mut table, "name")?;
            let value = match table.remove("value") {
                Some(Value::Num(v)) => v,
                _ => return Err(format!("constant `{name}`: missing numeric `value`")),
            };
            let units = take_str(&mut table, "units").map_err(|e| format!("{e} (in `{name}`)"))?;
            let section =
                take_str(&mut table, "section").map_err(|e| format!("{e} (in `{name}`)"))?;
            let literals = match table.remove("literals") {
                Some(Value::StrArray(v)) if !v.is_empty() => v,
                _ => {
                    return Err(format!(
                        "constant `{name}`: `literals` must be a non-empty string array"
                    ))
                }
            };
            let context = match table.remove("context") {
                Some(Value::Str(s)) if !s.is_empty() => Some(s),
                Some(Value::Str(_)) | None => None,
                Some(_) => return Err(format!("constant `{name}`: `context` must be a string")),
            };
            let sources = match table.remove("sources") {
                Some(Value::StrArray(v)) if !v.is_empty() => v,
                _ => {
                    return Err(format!(
                        "constant `{name}`: `sources` must be a non-empty string array"
                    ))
                }
            };
            if let Some(extra) = table.keys().next() {
                return Err(format!("constant `{name}`: unknown key `{extra}`"));
            }
            // At least one literal must denote the canonical value itself.
            let has_exact = literals
                .iter()
                .any(|l| l.parse::<f64>().is_ok_and(|v| v == value));
            if !has_exact {
                return Err(format!(
                    "constant `{name}`: no literal form parses to the canonical value {value}"
                ));
            }
            constants.push(PaperConstant {
                name,
                value,
                units,
                section,
                literals,
                context,
                sources,
            });
        }

        // Names must be unique.
        let mut seen = std::collections::BTreeSet::new();
        for c in &constants {
            if !seen.insert(c.name.clone()) {
                return Err(format!("duplicate constant name `{}`", c.name));
            }
        }
        Ok(Manifest { constants })
    }

    /// Serializes back to canonical TOML (stable field order, one entry
    /// per constant). `parse(to_toml(m)) == m` for every valid manifest.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.constants.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            let _ = writeln!(out, "[[constant]]");
            let _ = writeln!(out, "name = \"{}\"", c.name);
            let _ = writeln!(out, "value = {}", format_float(c.value));
            let _ = writeln!(out, "units = \"{}\"", c.units);
            let _ = writeln!(out, "section = \"{}\"", c.section);
            let _ = writeln!(out, "literals = [{}]", quote_list(&c.literals));
            if let Some(context) = &c.context {
                let _ = writeln!(out, "context = \"{context}\"");
            }
            let _ = writeln!(out, "sources = [{}]", quote_list(&c.sources));
        }
        out
    }
}

fn quote_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

fn format_float(v: f64) -> String {
    // Keep integral values readable as floats so they re-parse as f64.
    // focal-lint: allow(float-eq) -- exact integrality check for formatting, not model arithmetic
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[[constant]]
name = "imec-scope2-node-growth"
value = 0.252
units = "fraction per node transition"
section = "§3.1, Fig. 1"
literals = ["0.252", "1.252", "25.2"]
sources = ["crates/wafer/src/fab.rs"]

[[constant]]
name = "pollack-exponent"
value = 0.5
units = "dimensionless"
section = "§4.1"
literals = ["0.5"]
context = "pollack"
sources = ["crates/perf/src/pollack.rs"]
"#;

    #[test]
    fn parses_tables_and_fields() {
        let m = Manifest::parse(SAMPLE).unwrap();
        assert_eq!(m.constants.len(), 2);
        let imec = &m.constants[0];
        assert_eq!(imec.name, "imec-scope2-node-growth");
        assert_eq!(imec.value, 0.252);
        assert_eq!(imec.literals, vec!["0.252", "1.252", "25.2"]);
        assert_eq!(imec.context, None);
        let pollack = &m.constants[1];
        assert_eq!(pollack.context.as_deref(), Some("pollack"));
    }

    #[test]
    fn round_trips_through_canonical_serialization() {
        let m = Manifest::parse(SAMPLE).unwrap();
        let reparsed = Manifest::parse(&m.to_toml()).unwrap();
        assert_eq!(m, reparsed);
        // Canonical text is a fixed point.
        assert_eq!(m.to_toml(), reparsed.to_toml());
    }

    #[test]
    fn rejects_duplicate_names() {
        let text = format!(
            "{SAMPLE}\n{}",
            &SAMPLE[SAMPLE.find("[[constant]]").unwrap()..]
        );
        assert!(Manifest::parse(&text).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn rejects_missing_fields_and_unknown_keys() {
        assert!(Manifest::parse("[[constant]]\nname = \"x\"\n")
            .unwrap_err()
            .contains("missing"));
        let bad = SAMPLE.replace("context = \"pollack\"", "bogus_key = \"y\"");
        assert!(Manifest::parse(&bad).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn rejects_literals_that_miss_the_canonical_value() {
        let bad = SAMPLE.replace("\"0.252\", ", "");
        assert!(Manifest::parse(&bad)
            .unwrap_err()
            .contains("no literal form parses to the canonical value"));
    }

    #[test]
    fn rejects_keys_outside_tables() {
        assert!(Manifest::parse("name = \"x\"\n")
            .unwrap_err()
            .contains("outside"));
    }
}
