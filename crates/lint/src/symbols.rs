//! Lightweight symbol table and call graph over the lexed workspace.
//!
//! This is deliberately *not* a Rust name resolver: focal-lint has no
//! dependency on `syn` or rustc internals, so resolution works on the
//! token stream and is conservative. A call site resolves to a `fn`
//! definition only when the match is unambiguous:
//!
//! 1. a definition with the same name in the **same file**, else
//! 2. a **unique** same-named definition in the same crate, else
//! 3. (non-method calls only) a **unique** same-named definition in the
//!    whole workspace.
//!
//! Anything ambiguous stays unresolved, and rules built on the graph
//! (transitive panic-reachability, reduction-order blessing) must treat
//! unresolved calls conservatively for their own failure direction.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Words that look like `name(` in the token stream but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "break", "continue", "fn",
    "let", "as", "move", "ref", "mut", "pub", "use", "mod", "impl", "struct", "enum", "union",
    "trait", "type", "where", "unsafe", "async", "await", "dyn", "const", "static", "crate",
    "super", "self", "Self", "extern", "true", "false",
];

/// One `fn` definition found in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// Index into the file list passed to [`SymbolTable::build`].
    pub file: usize,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token-index range `(open_brace, close_brace)` of the body, if the
    /// definition has one (trait-method signatures do not).
    pub body: Option<(usize, usize)>,
    /// Whether the definition lives in test code.
    pub is_test: bool,
}

/// One call site: an identifier directly followed by `(`.
#[derive(Debug)]
pub struct CallSite {
    /// Index into the file list passed to [`SymbolTable::build`].
    pub file: usize,
    /// Index into [`SymbolTable::fns`] of the innermost enclosing
    /// definition, when the call happens inside one.
    pub caller: Option<usize>,
    /// The called name (`frob` in both `frob(x)` and `x.frob(y)`).
    pub callee: String,
    /// The path segment right before the name (`Rng` in `Rng::frob(…)`).
    pub qualifier: Option<String>,
    /// Whether the call is a method call (`x.frob(…)`).
    pub is_method: bool,
    /// Token index of the callee identifier within its file.
    pub tok: usize,
    /// 1-based position of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
}

/// The workspace-wide symbol table: all `fn` definitions, all call
/// sites, and a name index for resolution.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every `fn` definition, in file order.
    pub fns: Vec<FnDef>,
    /// Every call site, in file order.
    pub calls: Vec<CallSite>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// The crate a repo-relative path belongs to (`crates/<name>/…` →
/// `<name>`; everything else is the workspace root crate).
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("(root)")
}

/// Returns the token index of the `)` matching the `(` at `open`, if
/// the stream closes it.
pub fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn find_defs(file_idx: usize, file: &SourceFile, out: &mut Vec<FnDef>) {
    let tokens = &file.lexed.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if !(tok.kind == TokenKind::Ident && tok.text == "fn") {
            i += 1;
            continue;
        }
        // `fn(f64) -> f64` pointer types have `(` here, not a name.
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Walk the signature to the body `{` (matching it) or a `;` for
        // bodiless trait-method signatures. Parens/brackets in the
        // signature never contain `{` or `;` at depth 0.
        let mut j = i + 2;
        let mut body = None;
        while let Some(t) = tokens.get(j) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ";" => break,
                    "{" => {
                        let mut depth = 1usize;
                        let mut k = j + 1;
                        while k < tokens.len() && depth > 0 {
                            match tokens[k].text.as_str() {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                _ => {}
                            }
                            if depth == 0 {
                                body = Some((j, k));
                            }
                            k += 1;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        out.push(FnDef {
            name: name_tok.text.clone(),
            file: file_idx,
            line: tok.line,
            col: tok.col,
            body,
            is_test: file.in_test_code(tok.line),
        });
        i += 2;
    }
}

fn find_calls(
    file_idx: usize,
    file: &SourceFile,
    defs: &[FnDef],
    def_range: std::ops::Range<usize>,
    out: &mut Vec<CallSite>,
) {
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        let called = tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
        if !called {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        // The name in `fn name(` is a definition, not a call.
        if prev.is_some_and(|p| p.kind == TokenKind::Ident && p.text == "fn") {
            continue;
        }
        let is_method = prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".");
        let qualifier = if prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == "::") {
            i.checked_sub(2)
                .and_then(|j| tokens.get(j))
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        // Innermost enclosing definition: smallest body range containing
        // this token (defs for this file only).
        let caller = def_range
            .clone()
            .filter(|&d| {
                defs[d]
                    .body
                    .is_some_and(|(open, close)| (open..=close).contains(&i))
            })
            .min_by_key(|&d| {
                let (open, close) = defs[d].body.unwrap_or((0, usize::MAX));
                close - open
            });
        out.push(CallSite {
            file: file_idx,
            caller,
            callee: tok.text.clone(),
            qualifier,
            is_method,
            tok: i,
            line: tok.line,
            col: tok.col,
        });
    }
}

impl SymbolTable {
    /// Builds the table over the given files (indices into `files` are
    /// the `file` fields of the resulting defs and call sites).
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut fns = Vec::new();
        let mut calls = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            let start = fns.len();
            find_defs(file_idx, file, &mut fns);
            let range = start..fns.len();
            find_calls(file_idx, file, &fns, range, &mut calls);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, def) in fns.iter().enumerate() {
            by_name.entry(def.name.clone()).or_default().push(idx);
        }
        SymbolTable {
            fns,
            calls,
            by_name,
        }
    }

    /// All definitions with the given name.
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves a call site to a definition index, or `None` when the
    /// target is ambiguous or outside the workspace (std, vendored
    /// shims). See the module docs for the resolution ladder.
    pub fn resolve(&self, call: &CallSite, files: &[SourceFile]) -> Option<usize> {
        let candidates = self.defs_named(&call.callee);
        if candidates.is_empty() {
            return None;
        }
        let unique = |set: Vec<usize>| {
            if set.len() == 1 {
                set.first().copied()
            } else {
                None
            }
        };
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| self.fns[d].file == call.file)
            .collect();
        if !same_file.is_empty() {
            return unique(same_file);
        }
        let call_crate = crate_of(&files[call.file].path);
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&d| crate_of(&files[self.fns[d].file].path) == call_crate)
            .collect();
        if !same_crate.is_empty() {
            return unique(same_crate);
        }
        // Method-call receivers are invisible to a token-level pass, so
        // cross-crate method resolution would be guesswork; plain calls
        // resolve globally when the name is workspace-unique.
        if call.is_method {
            return None;
        }
        unique(candidates.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(sources: &[(&str, &str)]) -> (SymbolTable, Vec<SourceFile>) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, s))
            .collect();
        (SymbolTable::build(&files), files)
    }

    #[test]
    fn finds_defs_and_bodies() {
        let (t, _) = table(&[(
            "crates/core/src/a.rs",
            "fn plain(x: f64) -> f64 { x }\ntrait T { fn sig(&self) -> f64; }\n",
        )]);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "plain");
        assert!(t.fns[0].body.is_some());
        assert_eq!(t.fns[1].name, "sig");
        assert!(t.fns[1].body.is_none());
    }

    #[test]
    fn call_sites_carry_caller_and_shape() {
        let (t, _) = table(&[(
            "crates/core/src/a.rs",
            "fn inner(x: f64) -> f64 { x }\nfn outer(x: f64) -> f64 { inner(x).max(Rng::gen(x)) }\n",
        )]);
        let inner_call = t.calls.iter().find(|c| c.callee == "inner").unwrap();
        assert_eq!(inner_call.caller, Some(1));
        assert!(!inner_call.is_method);
        let max_call = t.calls.iter().find(|c| c.callee == "max").unwrap();
        assert!(max_call.is_method);
        let gen_call = t.calls.iter().find(|c| c.callee == "gen").unwrap();
        assert_eq!(gen_call.qualifier.as_deref(), Some("Rng"));
    }

    #[test]
    fn keywords_and_fn_pointers_are_not_calls() {
        let (t, _) = table(&[(
            "crates/core/src/a.rs",
            "fn f(g: fn(f64) -> f64, x: f64) -> f64 { if (x > 0.0) { g(x) } else { x } }\n",
        )]);
        assert!(t.calls.iter().all(|c| c.callee == "g"));
        assert_eq!(t.fns.len(), 1);
    }

    #[test]
    fn resolution_prefers_same_file_then_crate_then_global() {
        let (t, files) = table(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn use_local() { helper(); }\n",
            ),
            ("crates/a/src/other.rs", "fn use_crate() { helper(); }\n"),
            (
                "crates/b/src/lib.rs",
                "fn use_global() { helper(); }\nfn only_here() {}\n",
            ),
            ("crates/c/src/lib.rs", "fn use_unique() { only_here(); }\n"),
        ]);
        let resolve_from = |callee: &str, file: usize| {
            let call = t
                .calls
                .iter()
                .find(|c| c.callee == callee && c.file == file)
                .unwrap();
            t.resolve(call, &files)
        };
        // Same file (file 0), same crate (file 1), global-unique (file 2).
        assert_eq!(resolve_from("helper", 0), Some(0));
        assert_eq!(resolve_from("helper", 1), Some(0));
        assert_eq!(resolve_from("helper", 2), Some(0));
        assert_eq!(resolve_from("only_here", 3), Some(4));
    }

    #[test]
    fn ambiguous_and_method_calls_stay_unresolved() {
        let (t, files) = table(&[
            ("crates/a/src/lib.rs", "fn dup() {}\n"),
            ("crates/b/src/lib.rs", "fn dup() {}\n"),
            (
                "crates/c/src/lib.rs",
                "fn caller(x: X) { dup(); x.dup(); }\n",
            ),
        ]);
        let plain = t
            .calls
            .iter()
            .find(|c| c.callee == "dup" && !c.is_method)
            .unwrap();
        assert_eq!(t.resolve(plain, &files), None);
        // A method call never resolves across crates, even when unique.
        let (t2, files2) = table(&[
            ("crates/a/src/lib.rs", "fn unique_fn() {}\n"),
            (
                "crates/b/src/lib.rs",
                "fn caller(x: X) { x.unique_fn(); }\n",
            ),
        ]);
        let method = t2.calls.iter().find(|c| c.is_method).unwrap();
        assert_eq!(t2.resolve(method, &files2), None);
    }

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(crate_of("crates/engine/src/pool.rs"), "engine");
        assert_eq!(crate_of("crates/lint/tests/ui.rs"), "lint");
        assert_eq!(crate_of("src/lib.rs"), "(root)");
        assert_eq!(crate_of("tests/suite.rs"), "(root)");
    }

    #[test]
    fn matching_paren_matches_nested() {
        let file = SourceFile::parse("x.rs", "f(a, g(b, h(c)), d)\n");
        let tokens = &file.lexed.tokens;
        let open = tokens.iter().position(|t| t.text == "(").unwrap();
        let close = matching_paren(tokens, open).unwrap();
        assert_eq!(tokens[close].text, ")");
        assert_eq!(close, tokens.len() - 1);
    }

    #[test]
    fn test_defs_are_marked() {
        let (t, _) = table(&[(
            "crates/core/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod t {\n fn probe() {}\n}\n",
        )]);
        assert!(!t.fns[0].is_test);
        assert!(t.fns[1].is_test);
    }
}
