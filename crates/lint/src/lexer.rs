//! A minimal Rust lexer with exact `line:col` positions.
//!
//! `focal-lint` runs in an offline build environment without access to
//! `syn`, so it carries its own token scanner. The lexer understands
//! everything the lint rules need to reason about real Rust source:
//! idents, integer/float literals (including suffixes, underscores and
//! exponents), string/char/lifetime literals, raw strings, nested block
//! comments, and multi-character operators. Comments are captured
//! separately (they carry `// focal-lint: allow(...)` directives and doc
//! text for the unit-hygiene rule) and never appear in the token stream.

/// The syntactic class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including `0x`/`0o`/`0b` forms).
    Int,
    /// Floating-point literal.
    Float,
    /// String literal (regular, raw or byte).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or delimiter, possibly multi-character (`==`, `::`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// Verbatim source text (literals keep suffixes and underscores).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// A comment captured out-of-band.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The result of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character operators, longest-first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `source` into tokens and comments.
///
/// The lexer is lossy only about whitespace; malformed input (e.g. an
/// unterminated string) is handled by consuming to end-of-file rather
/// than erroring, which is the right trade-off for a linter that must
/// never crash on in-progress code.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let _ = cur.src;
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            out.comments.push(Comment { text, line, doc });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek() {
                if ch == '/' && cur.peek_at(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek_at(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            let doc =
                (text.starts_with("/**") && !text.starts_with("/***")) || text.starts_with("/*!");
            out.comments.push(Comment { text, line, doc });
            continue;
        }

        // Raw / byte strings.
        if (c == 'r' || c == 'b') && matches!(cur.peek_at(1), Some('"') | Some('#') | Some('r')) {
            if let Some(text) = try_lex_raw_or_byte_string(&mut cur) {
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
                continue;
            }
        }

        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let (text, kind) = lex_number(&mut cur);
            out.tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }

        if c == '"' {
            let text = lex_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        if c == '\'' {
            let (text, kind) = lex_char_or_lifetime(&mut cur);
            out.tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }

        // Punctuation: greedy multi-char match.
        let mut matched = None;
        for op in MULTI_PUNCT {
            if source_matches(&cur, op) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.to_string(),
                line,
                col,
            });
        } else {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }

    out
}

fn source_matches(cur: &Cursor<'_>, op: &str) -> bool {
    op.chars()
        .enumerate()
        .all(|(i, ch)| cur.peek_at(i) == Some(ch))
}

fn lex_number(cur: &mut Cursor<'_>) -> (String, TokenKind) {
    let mut text = String::new();
    let mut kind = TokenKind::Int;

    // Radix prefixes never have fractions or exponents.
    if cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().unwrap());
        text.push(cur.bump().unwrap());
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_hexdigit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        // A fraction only if `.` is followed by a digit or by nothing
        // ident-like (so `1.max(2)` and ranges `0..5` stay integers).
        if cur.peek() == Some('.') {
            let after = cur.peek_at(1);
            let is_fraction = match after {
                Some(ch) if ch.is_ascii_digit() => true,
                Some('.') => false,
                Some(ch) if is_ident_start(ch) => false,
                _ => true, // `1.` at end of expression
            };
            if is_fraction {
                kind = TokenKind::Float;
                text.push('.');
                cur.bump();
                while let Some(ch) = cur.peek() {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e') | Some('E')) {
            let mut offset = 1;
            if matches!(cur.peek_at(1), Some('+') | Some('-')) {
                offset = 2;
            }
            if cur.peek_at(offset).is_some_and(|ch| ch.is_ascii_digit()) {
                kind = TokenKind::Float;
                for _ in 0..offset {
                    text.push(cur.bump().unwrap());
                }
                while let Some(ch) = cur.peek() {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    // Type suffix (`f64`, `u32`, `_f32`, …).
    let mut suffix = String::new();
    while let Some(ch) = cur.peek() {
        if is_ident_continue(ch) {
            suffix.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        kind = TokenKind::Float;
    }
    text.push_str(&suffix);
    (text, kind)
}

fn lex_string(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    text.push(cur.bump().unwrap()); // opening quote
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    text
}

fn try_lex_raw_or_byte_string(cur: &mut Cursor<'_>) -> Option<String> {
    // Accepts r"..", r#".."#, b"..", br"..", rb is not valid Rust.
    let mut offset = 0;
    let mut text = String::new();
    if cur.peek_at(offset) == Some('b') {
        text.push('b');
        offset += 1;
    }
    let raw = cur.peek_at(offset) == Some('r');
    if raw {
        text.push('r');
        offset += 1;
    }
    let mut hashes = 0;
    while cur.peek_at(offset + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(offset + hashes) != Some('"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    for _ in 0..offset + hashes + 1 {
        text.push(cur.bump().unwrap());
    }
    if !raw {
        // Plain byte string: same escape rules as a normal string.
        while let Some(ch) = cur.peek() {
            if ch == '\\' {
                text.push(ch);
                cur.bump();
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
                continue;
            }
            text.push(ch);
            cur.bump();
            if ch == '"' {
                break;
            }
        }
        return Some(text);
    }
    // Raw string: ends at `"` followed by `hashes` hashes.
    loop {
        let ch = cur.peek()?;
        text.push(ch);
        cur.bump();
        if ch == '"' && (0..hashes).all(|i| cur.peek_at(i) == Some('#')) {
            for _ in 0..hashes {
                text.push(cur.bump().unwrap());
            }
            return Some(text);
        }
    }
}

fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> (String, TokenKind) {
    let mut text = String::new();
    text.push(cur.bump().unwrap()); // the opening '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal.
            text.push(cur.bump().unwrap());
            while let Some(ch) = cur.peek() {
                text.push(ch);
                cur.bump();
                if ch == '\'' {
                    break;
                }
            }
            (text, TokenKind::Char)
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char literal, 'a without closing quote a lifetime.
            if cur.peek_at(1) == Some('\'') {
                text.push(cur.bump().unwrap());
                text.push(cur.bump().unwrap());
                (text, TokenKind::Char)
            } else {
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                (text, TokenKind::Lifetime)
            }
        }
        Some(_) => {
            // Non-alphabetic char literal like '.' or '0'.
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
            if cur.peek() == Some('\'') {
                text.push(cur.bump().unwrap());
            }
            (text, TokenKind::Char)
        }
        None => (text, TokenKind::Char),
    }
}

/// Normalizes a numeric literal's text for value comparison: strips
/// underscores and any type suffix (`1_000.5f64` → `1000.5`).
pub fn normalize_number(text: &str) -> String {
    let no_underscores: String = text.chars().filter(|&c| c != '_').collect();
    // Strip a trailing type suffix if present (f32/f64/i*/u*/usize/isize).
    for suffix in [
        "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64",
        "u128", "usize",
    ] {
        if let Some(stripped) = no_underscores.strip_suffix(suffix) {
            // Guard against stripping the `e8` of `1e8` style exponents:
            // a valid numeric body must remain non-empty and end with a
            // digit or dot.
            if stripped
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_digit() || c == '.')
            {
                return stripped.to_string();
            }
        }
    }
    no_underscores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = kinds("let x = 0.119; let r = 0..5; let m = 1.max(2); let e = 1e-9;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
            .collect();
        assert_eq!(
            nums,
            vec![
                &(TokenKind::Float, "0.119".to_string()),
                &(TokenKind::Int, "0".to_string()),
                &(TokenKind::Int, "5".to_string()),
                &(TokenKind::Int, "1".to_string()),
                &(TokenKind::Int, "2".to_string()),
                &(TokenKind::Float, "1e-9".to_string()),
            ]
        );
    }

    #[test]
    fn suffixed_literals_classify_and_normalize() {
        let toks = kinds("0.05f64 1_000u32 2f32 0x1F");
        assert_eq!(toks[0], (TokenKind::Float, "0.05f64".to_string()));
        assert_eq!(toks[1], (TokenKind::Int, "1_000u32".to_string()));
        assert_eq!(toks[2], (TokenKind::Float, "2f32".to_string()));
        assert_eq!(toks[3], (TokenKind::Int, "0x1F".to_string()));
        assert_eq!(normalize_number("0.05f64"), "0.05");
        assert_eq!(normalize_number("1_000u32"), "1000");
        assert_eq!(normalize_number("1e8"), "1e8");
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("let a = 1; // focal-lint: allow(x) -- why\n/* block\n*/ let b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("focal-lint"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.tokens.iter().all(|t| t.text != "focal"));
    }

    #[test]
    fn doc_comments_flagged() {
        let lexed = lex("/// docs here\n//! module docs\n// plain\nfn x() {}");
        assert!(lexed.comments[0].doc);
        assert!(lexed.comments[1].doc);
        assert!(!lexed.comments[2].doc);
    }

    #[test]
    fn strings_and_chars_do_not_confuse_lexer() {
        let toks = kinds(r#"let s = "a == b // not a comment"; let c = '.'; let l: &'a str = s;"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("==")));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        // The == inside the string must not appear as a Punct.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == "=="));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r##"let s = r#"has "quotes" and == inside"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quotes")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == "=="));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn multichar_punct_greedy() {
        let toks = kinds("a == b != c :: d -> e ..= f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "..="]);
    }
}
