//! `concurrency-confinement`: threads, locks and atomics live only in
//! `crates/engine`.
//!
//! The determinism argument for FOCAL is compositional: model crates are
//! pure functions, and the *only* concurrency in the workspace is the
//! engine's chunked work-stealing pool, which is proven
//! schedule-independent once (chunk-order merge + per-chunk seeding).
//! Any `thread::spawn`, `Mutex`, or atomic elsewhere reopens the whole
//! question. This rule flags concurrency primitives in every `src/` tree
//! except the engine's; intentional exceptions take a justified allow.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Synchronization types whose bare mention is a finding.
const SYNC_TYPES: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock", "mpsc",
];

/// Runs the rule over one file (callers pre-filter to confinement
/// scope: all `src/` except `crates/engine` and the linter).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let tokens = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let is_atomic_type = tok.text.starts_with("Atomic") && tok.text.len() > "Atomic".len();
        let primitive = if SYNC_TYPES.contains(&tok.text.as_str()) || is_atomic_type {
            Some(format!("`{}`", tok.text))
        } else if tok.text == "spawn" || tok.text == "scope" {
            // Only `thread::spawn(…)` / `thread::scope(…)`: plenty of
            // innocent `spawn`/`scope` names exist otherwise.
            let called = tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            let thread_qualified = i >= 2
                && tokens[i - 1].text == "::"
                && tokens[i - 2].kind == TokenKind::Ident
                && tokens[i - 2].text == "thread";
            (called && thread_qualified).then(|| format!("`thread::{}(…)`", tok.text))
        } else {
            None
        };
        let Some(primitive) = primitive else { continue };
        if file.in_test_code(tok.line) || file.allows.covers(Rule::ConcurrencyConfinement, tok.line)
        {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::ConcurrencyConfinement,
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "{primitive} outside `crates/engine`: concurrency is confined to the engine"
            ),
            help: "run parallel work through `focal_engine::Engine` (par_map/par_reduce keep \
                   results chunk-order deterministic); if this primitive is genuinely needed, \
                   justify with `// focal-lint: allow(concurrency-confinement) -- <reason>`"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    #[test]
    fn flags_locks_and_atomics() {
        assert_eq!(findings("fn f(m: &Mutex<u32>) {}\n").len(), 1);
        assert_eq!(findings("use std::sync::RwLock;\n").len(), 1);
        assert_eq!(
            findings("static N: AtomicU64 = AtomicU64::new(0);\n").len(),
            2
        );
        assert_eq!(findings("use std::sync::mpsc;\n").len(), 1);
        assert_eq!(
            findings("static INIT: OnceLock<u32> = OnceLock::new();\n").len(),
            2
        );
    }

    #[test]
    fn flags_thread_spawn_and_scope_only_when_qualified() {
        assert_eq!(findings("fn f() { thread::spawn(|| work()); }\n").len(), 1);
        assert_eq!(
            findings("fn f() { std::thread::scope(|s| work(s)); }\n").len(),
            1
        );
        // Innocent names containing spawn/scope are not findings.
        assert!(findings("fn f(s: &Spawner) { s.spawn(); }\n").is_empty());
        assert!(findings("fn f() { let scope = 3; g(scope); }\n").is_empty());
    }

    #[test]
    fn plain_ident_atomic_is_not_flagged() {
        // The bare word `Atomic` (e.g. in a doc-ish const name) is not a
        // std atomic type.
        assert!(findings("struct Atomic;\n").is_empty());
        assert!(findings("fn f(x: Atomicish) {}\n").len() == 1); // AtomicXyz shape is
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        assert!(findings("fn f() -> &'static str { \"Mutex\" }\n").is_empty());
        assert!(findings("// a Mutex would serialize this\nfn f() {}\n").is_empty());
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod t {\n use std::sync::Mutex;\n}\n";
        assert!(findings(test_mod).is_empty());
        let allowed = "// focal-lint: allow(concurrency-confinement) -- lock-free metrics counter, never read by model code\nstatic HITS: AtomicU64 = AtomicU64::new(0);\n";
        assert!(findings(allowed).is_empty());
    }
}
