//! `float-eq`: no `==`/`!=` on float-typed expressions outside tests.
//!
//! FOCAL's arithmetic is almost entirely `f64`; an exact comparison on a
//! computed float (`mib.fract() == 0.0`, `f.serial() == 0.0`) silently
//! depends on rounding behaviour and breaks under algebraically-equal
//! refactors. Working without type inference, the rule flags the cases
//! that are unambiguously float comparisons from the token stream alone:
//!
//! * either operand is a float literal (`x == 0.0`, `1.5 != y`),
//!   including negated literals (`x == -1.0`),
//! * either operand is `f64::NAN` / `f32::NAN` (always a bug: NaN
//!   compares unequal to everything) or an `INFINITY` constant.
//!
//! Comparisons of two un-suffixed identifiers are *not* flagged — the
//! lexer cannot know their types, and false positives would train people
//! to scatter allows.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

fn is_float_operand(
    tokens: &[crate::lexer::Token],
    idx: usize,
    forward: bool,
) -> Option<&'static str> {
    let get = |offset: isize| -> Option<&crate::lexer::Token> {
        let i = idx as isize + if forward { offset } else { -offset };
        usize::try_from(i).ok().and_then(|i| tokens.get(i))
    };
    // Immediate float literal, or unary minus + float literal (forward).
    if let Some(t) = get(1) {
        if t.kind == TokenKind::Float {
            return Some("a float literal");
        }
        if forward && t.text == "-" {
            if let Some(t2) = get(2) {
                if t2.kind == TokenKind::Float {
                    return Some("a float literal");
                }
            }
        }
        // `f64::NAN`, `f32::INFINITY`, `f64::EPSILON` …
        let (a, b, c) = if forward {
            (get(1), get(2), get(3))
        } else {
            (get(3), get(2), get(1))
        };
        if let (Some(a), Some(b), Some(c)) = (a, b, c) {
            if (a.text == "f64" || a.text == "f32")
                && b.text == "::"
                && matches!(
                    c.text.as_str(),
                    "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON"
                )
            {
                if c.text == "NAN" {
                    return Some("`NAN` (NaN is never equal to anything)");
                }
                return Some("a float constant");
            }
        }
    }
    None
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Punct || (tok.text != "==" && tok.text != "!=") {
            continue;
        }
        if file.in_test_code(tok.line) {
            continue;
        }
        let operand =
            is_float_operand(tokens, i, true).or_else(|| is_float_operand(tokens, i, false));
        let Some(what) = operand else { continue };
        if file.allows.covers(Rule::FloatEq, tok.line) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::FloatEq,
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: format!("`{}` comparison against {what} in non-test code", tok.text),
            help: "compare with an explicit tolerance (e.g. `(a - b).abs() < 1e-9`) or a \
                   range check; if the exact comparison is intended, justify it with \
                   `// focal-lint: allow(float-eq) -- <reason>`"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/x/src/lib.rs", src))
    }

    #[test]
    fn flags_float_literal_comparisons_both_sides() {
        let d = findings("fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::FloatEq);
        assert_eq!((d[0].line, d[0].col), (1, 26));
        assert_eq!(findings("fn f(x: f64) -> bool { 0.5 != x }\n").len(), 1);
        assert_eq!(findings("fn f(x: f64) -> bool { x == -1.0 }\n").len(), 1);
    }

    #[test]
    fn flags_nan_comparison() {
        let d = findings("fn f(x: f64) -> bool { x == f64::NAN }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("NAN"));
    }

    #[test]
    fn ignores_integer_and_opaque_comparisons() {
        assert!(findings("fn f(x: u32) -> bool { x == 0 }\n").is_empty());
        assert!(findings("fn f(a: f64, b: f64) -> bool { a.total_cmp(&b).is_eq() }\n").is_empty());
        // Two idents: type unknown at token level, deliberately not flagged.
        assert!(findings("fn f(a: f64, b: f64) -> bool { a == b }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { assert!(x() == 0.0); }\n}\n";
        assert!(findings(src).is_empty());
        let f = SourceFile::parse(
            "crates/x/tests/props.rs",
            "fn t() { assert!(x() == 0.0); }\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_with_reason() {
        let src = "// focal-lint: allow(float-eq) -- sentinel encoding\nfn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(findings(src).is_empty());
        let trailing =
            "fn f(x: f64) -> bool { x == 0.0 } // focal-lint: allow(float-eq) -- sentinel\n";
        assert!(findings(trailing).is_empty());
    }

    #[test]
    fn comparisons_inside_strings_are_ignored() {
        assert!(findings("fn f() -> &'static str { \"x == 0.0\" }\n").is_empty());
    }
}
