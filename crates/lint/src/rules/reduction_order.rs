//! `reduction-order`: float reductions only in chunk-order-merged paths.
//!
//! Float addition is not associative, so the merge order of a parallel
//! reduction is part of the result. focal-engine's operations
//! (`par_map`, `par_reduce`, …) are blessed: they merge chunk results in
//! chunk order regardless of scheduling, which is what makes the suite
//! byte-identical at any thread count. A *different* parallel operation
//! that sums or folds floats inside its arguments has no such guarantee,
//! so this rule flags float `sum`/`product` (with a float turbofish) and
//! float-literal-seeded `fold`s inside the argument span of any
//! `par_*`-shaped call that is not the engine's.
//!
//! Blessing is resolved through the call graph: a call is blessed when
//! it resolves to a definition inside `crates/engine/src/`, or when it
//! is unresolved (a method on an engine handle resolves to nothing at
//! the token level) but carries one of the engine's API names.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::symbols::{matching_paren, SymbolTable};

/// focal-engine's chunk-order-merged operations.
const BLESSED_ENGINE_API: &[&str] = &[
    "par_map",
    "try_par_map",
    "try_par_map_isolated",
    "par_chunk_map",
    "try_par_chunk_map",
    "par_reduce",
    "try_par_reduce",
];

fn is_parallel_name(name: &str) -> bool {
    name.starts_with("par_") || name.starts_with("try_par_") || name.starts_with("parallel")
}

fn float_type(tok: Option<&Token>) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32"))
}

/// Float reductions (token index + what) inside `tokens[start..end]`.
fn float_reductions(tokens: &[Token], start: usize, end: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in start..end {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let after_dot = i
            .checked_sub(1)
            .is_some_and(|j| tokens[j].kind == TokenKind::Punct && tokens[j].text == ".");
        if !after_dot {
            continue;
        }
        match tok.text.as_str() {
            // `.sum::<f64>()` / `.product::<f32>()`
            "sum" | "product" => {
                let turbofish = tokens.get(i + 1).is_some_and(|t| t.text == "::")
                    && tokens.get(i + 2).is_some_and(|t| t.text == "<")
                    && float_type(tokens.get(i + 3));
                if turbofish {
                    out.push((i, format!(".{}::<float>", tok.text)));
                }
            }
            // `.fold(0.0, …)`
            "fold" => {
                let seeded_with_float = tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "(")
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| t.kind == TokenKind::Float);
                if seeded_with_float {
                    out.push((i, ".fold(<float>, …)".to_string()));
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs the rule over the workspace call graph.
pub fn check(files: &[SourceFile], table: &SymbolTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for call in &table.calls {
        if !is_parallel_name(&call.callee) {
            continue;
        }
        let file = &files[call.file];
        if !crate::rules::is_determinism_src(&file.path) || file.in_test_code(call.line) {
            continue;
        }
        let blessed = match table.resolve(call, files) {
            Some(def) => files[table.fns[def].file]
                .path
                .starts_with("crates/engine/src/"),
            None => BLESSED_ENGINE_API.contains(&call.callee.as_str()),
        };
        if blessed {
            continue;
        }
        let tokens = &file.lexed.tokens;
        let Some(close) = matching_paren(tokens, call.tok + 1) else {
            continue;
        };
        for (idx, what) in float_reductions(tokens, call.tok + 2, close) {
            let line = tokens[idx].line;
            if file.allows.covers(Rule::ReductionOrder, line)
                || file.allows.covers(Rule::ReductionOrder, call.line)
            {
                continue;
            }
            out.push(Diagnostic {
                rule: Rule::ReductionOrder,
                file: file.path.clone(),
                line,
                col: tokens[idx].col,
                message: format!(
                    "float reduction `{what}` inside `{}(…)`, which is not a \
                     chunk-order-merged focal-engine operation",
                    call.callee
                ),
                help: "route the reduction through `Engine::par_reduce`/`par_map` (chunk-order \
                       merge makes float sums schedule-independent), or reduce serially over \
                       the collected chunk results"
                    .into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, s))
            .collect();
        let table = SymbolTable::build(&files);
        check(&files, &table)
    }

    #[test]
    fn unblessed_parallel_sum_is_flagged() {
        let d = findings(&[(
            "crates/studies/src/x.rs",
            "fn f(xs: &[f64]) -> f64 { par_each(xs, |c| c.iter().sum::<f64>()) }\nfn par_each(xs: &[f64], g: impl Fn(&[f64]) -> f64) -> f64 { g(xs) }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("par_each"));
        assert!(d[0].message.contains("sum"));
    }

    #[test]
    fn unblessed_float_fold_is_flagged() {
        let d = findings(&[(
            "crates/studies/src/x.rs",
            "fn f(xs: &[f64]) -> f64 { parallel_apply(|| xs.iter().fold(0.0, |a, b| a + b)) }\nfn parallel_apply(g: impl Fn() -> f64) -> f64 { g() }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fold"));
    }

    #[test]
    fn engine_api_names_are_blessed_when_unresolved() {
        // `e.par_reduce(…)` is a method on the engine handle — it cannot
        // resolve at token level, but the name is the blessed API.
        let src = "fn f(e: &Engine, xs: &[f64]) -> f64 { e.par_reduce(xs, |c| c.iter().sum::<f64>(), 0.0, |a, b| a + b) }\n";
        assert!(findings(&[("crates/studies/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn calls_resolving_into_engine_src_are_blessed() {
        let d = findings(&[
            (
                "crates/engine/src/pool.rs",
                "pub fn par_sweep(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
            ),
            (
                "crates/studies/src/x.rs",
                "fn f(xs: &[f64]) -> f64 { par_sweep(xs.iter().map(|x| x).sum::<f64>()) }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn integer_reductions_and_serial_sums_pass() {
        let int_sum = "fn f(xs: &[u64]) -> u64 { par_each(xs, |c| c.iter().sum::<u64>()) }\nfn par_each(xs: &[u64], g: impl Fn(&[u64]) -> u64) -> u64 { g(xs) }\n";
        assert!(findings(&[("crates/studies/src/x.rs", int_sum)]).is_empty());
        let serial = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(findings(&[("crates/studies/src/x.rs", serial)]).is_empty());
    }

    #[test]
    fn out_of_scope_files_and_allows_are_exempt() {
        let src = "fn f(xs: &[f64]) -> f64 { par_each(xs, |c| c.iter().sum::<f64>()) }\nfn par_each(xs: &[f64], g: impl Fn(&[f64]) -> f64) -> f64 { g(xs) }\n";
        assert!(findings(&[("crates/lint/src/x.rs", src)]).is_empty());
        let allowed = "fn f(xs: &[f64]) -> f64 {\n    // focal-lint: allow(reduction-order) -- single-threaded shim, order fixed\n    par_each(xs, |c| c.iter().sum::<f64>())\n}\nfn par_each(xs: &[f64], g: impl Fn(&[f64]) -> f64) -> f64 { g(xs) }\n";
        assert!(findings(&[("crates/studies/src/x.rs", allowed)]).is_empty());
    }
}
