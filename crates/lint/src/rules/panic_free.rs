//! `panic-freedom`: model crates must not panic in non-test code —
//! directly, or through anything they call.
//!
//! The model crates (`core`, `wafer`, `perf`, `cache`, `uarch`,
//! `scaling`, `act`, `engine`) are library substrates that production
//! harnesses drive over millions of parameter combinations; a
//! `.unwrap()` that is "obviously fine" for today's inputs becomes a
//! fleet-wide abort after the next refactor. Non-test code must
//! propagate [`ModelError`] instead. The direct pass flags:
//!
//! * `.unwrap()` and `.expect(…)` calls,
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` invocations,
//! * indexing by an integer literal (`xs[0]`), which panics on
//!   out-of-bounds and should be `xs.first()` / `xs.get(0)`.
//!
//! The transitive pass ([`check_transitive`]) walks the workspace call
//! graph: a model-crate call site whose callee *resolves outside the
//! model crates* and can reach one of the sites above is flagged at the
//! call, with the panic path in the message. (Callees inside model
//! crates need no transitive report — the direct pass already flags the
//! panic site itself.) Allowed sites count as non-panicking everywhere:
//! one justified allow at the source also clears every caller.
//!
//! `debug_assert!` is deliberately not flagged (it vanishes in release
//! builds and documents invariants), and `assert!` is left to review.
//!
//! [`ModelError`]: https://docs.rs/focal-core

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One potential panic location (already filtered for test code and
/// allow directives — an allowed site is non-panicking by fiat).
struct PanicSite {
    /// Token index of the site within its file.
    tok: usize,
    line: u32,
    col: u32,
    /// Short description for call-path messages: `` `.unwrap(…)` ``.
    what: String,
    /// Full message for the direct diagnostic.
    message: String,
    help: &'static str,
}

/// Finds every live (non-test, non-allowed) panic site in one file.
fn direct_sites(file: &SourceFile) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if file.in_test_code(tok.line) || file.allows.covers(Rule::PanicFreedom, tok.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);

        // `.unwrap()` / `.expect(`
        if tok.kind == TokenKind::Ident && (tok.text == "unwrap" || tok.text == "expect") {
            let after_dot = prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".");
            let called = next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            if after_dot && called {
                out.push(PanicSite {
                    tok: i,
                    line: tok.line,
                    col: tok.col,
                    what: format!("`.{}(…)`", tok.text),
                    message: format!("`.{}(…)` in non-test model code", tok.text),
                    help: "propagate a `focal_core::ModelError` (`?`, `ok_or`, `map_err`) \
                           instead of panicking; if the invariant is truly unbreakable, \
                           justify it with `// focal-lint: allow(panic-freedom) -- <reason>`",
                });
            }
            continue;
        }

        // `panic!` family.
        if tok.kind == TokenKind::Ident && PANIC_MACROS.contains(&tok.text.as_str()) {
            let invoked = next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!");
            // `core::panic!` style paths still end with the bare ident.
            if invoked {
                out.push(PanicSite {
                    tok: i,
                    line: tok.line,
                    col: tok.col,
                    what: format!("`{}!`", tok.text),
                    message: format!("`{}!` in non-test model code", tok.text),
                    help: "return a `Result` with a descriptive `ModelError` variant; panics \
                           in the model substrate abort whole batch runs",
                });
            }
            continue;
        }

        // Indexing by integer literal: `expr[3]`.
        if tok.kind == TokenKind::Punct && tok.text == "[" {
            let indexable = prev.is_some_and(|p| {
                p.kind == TokenKind::Ident && p.text != "return" && p.text != "break"
                    || (p.kind == TokenKind::Punct && (p.text == ")" || p.text == "]"))
            });
            let literal_index = next.is_some_and(|n| n.kind == TokenKind::Int)
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "]");
            if indexable && literal_index {
                out.push(PanicSite {
                    tok: i,
                    line: tok.line,
                    col: tok.col,
                    what: "indexing by integer literal".into(),
                    message: "indexing by integer literal in non-test model code".into(),
                    help: "use `.get(n)` / `.first()` and handle the `None`; literal indexing \
                           panics when the collection shape changes",
                });
            }
        }
    }
    out
}

/// Runs the direct rule over one file (callers pre-filter to model-crate
/// src).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    direct_sites(file)
        .into_iter()
        .map(|s| Diagnostic {
            rule: Rule::PanicFreedom,
            file: file.path.clone(),
            line: s.line,
            col: s.col,
            message: s.message,
            help: s.help.into(),
        })
        .collect()
}

/// How a definition reaches a panic: the chain of callee names walked
/// and the terminal site's location.
#[derive(Clone)]
struct Witness {
    /// Callee names from the definition down to the panicking one.
    path: Vec<String>,
    /// `file:line` of the terminal panic site.
    site: String,
    /// Short description of the terminal site.
    what: String,
}

/// Memoized panic-reachability over the call graph.
struct Reachability<'a> {
    files: &'a [SourceFile],
    table: &'a SymbolTable,
    /// Live panic sites per file index.
    sites: Vec<Vec<PanicSite>>,
    /// Call indices grouped by caller definition.
    calls_by_def: Vec<Vec<usize>>,
    /// `None` = not computed; `Some(None)` = proven panic-free.
    memo: Vec<Option<Option<Witness>>>,
    visiting: Vec<bool>,
}

impl<'a> Reachability<'a> {
    fn new(files: &'a [SourceFile], table: &'a SymbolTable) -> Reachability<'a> {
        let sites = files.iter().map(direct_sites).collect();
        let mut calls_by_def = vec![Vec::new(); table.fns.len()];
        for (idx, call) in table.calls.iter().enumerate() {
            if let Some(d) = call.caller {
                calls_by_def[d].push(idx);
            }
        }
        Reachability {
            files,
            table,
            sites,
            calls_by_def,
            memo: vec![None; table.fns.len()],
            visiting: vec![false; table.fns.len()],
        }
    }

    /// The witness through which definition `d` can panic, if any.
    fn panics(&mut self, d: usize) -> Option<Witness> {
        if let Some(known) = &self.memo[d] {
            return known.clone();
        }
        // Recursion (a cycle back into a def being computed) proves
        // nothing; treat the back edge as panic-free.
        if self.visiting[d] {
            return None;
        }
        self.visiting[d] = true;
        let result = self.compute(d);
        self.visiting[d] = false;
        self.memo[d] = Some(result.clone());
        result
    }

    fn compute(&mut self, d: usize) -> Option<Witness> {
        let def = &self.table.fns[d];
        let (open, close) = def.body?;
        // A direct site inside the body.
        if let Some(site) = self.sites[def.file]
            .iter()
            .find(|s| (open..=close).contains(&s.tok))
        {
            return Some(Witness {
                path: vec![def.name.clone()],
                site: format!("{}:{}", self.files[def.file].path, site.line),
                what: site.what.clone(),
            });
        }
        // Or a resolvable call to something that panics.
        for call_idx in self.calls_by_def[d].clone() {
            let call = &self.table.calls[call_idx];
            // An allow on the call line clears this edge.
            if self.files[call.file]
                .allows
                .covers(Rule::PanicFreedom, call.line)
            {
                continue;
            }
            let Some(target) = self.table.resolve(call, self.files) else {
                continue;
            };
            if self.table.fns[target].is_test {
                continue;
            }
            if let Some(mut w) = self.panics(target) {
                w.path.insert(0, self.table.fns[d].name.clone());
                return Some(w);
            }
        }
        None
    }
}

/// Runs the transitive rule over the workspace: flags model-crate call
/// sites whose callee resolves outside the model crates and can reach a
/// panic. Diagnostics carry the call path and the terminal site.
pub fn check_transitive(files: &[SourceFile], table: &SymbolTable) -> Vec<Diagnostic> {
    let mut reach = Reachability::new(files, table);
    let mut out = Vec::new();
    for call in table.calls.iter() {
        let file = &files[call.file];
        if !crate::rules::is_model_src(&file.path)
            || file.in_test_code(call.line)
            || file.allows.covers(Rule::PanicFreedom, call.line)
        {
            continue;
        }
        let Some(target) = table.resolve(call, files) else {
            continue;
        };
        let target_def = &table.fns[target];
        // Panics inside model src are the direct pass's findings — a
        // transitive report here would double-count them.
        if crate::rules::is_model_src(&files[target_def.file].path) || target_def.is_test {
            continue;
        }
        let Some(w) = reach.panics(target) else {
            continue;
        };
        out.push(Diagnostic {
            rule: Rule::PanicFreedom,
            file: file.path.clone(),
            line: call.line,
            col: call.col,
            message: format!(
                "call into `{}` can panic: {} — {} at {}",
                call.callee,
                w.path.join(" → "),
                w.what,
                w.site
            ),
            help: "make the callee return a `Result` (or justify the call with \
                   `// focal-lint: allow(panic-freedom) -- <reason>`); model code must not \
                   reach a panic through any call chain"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    fn transitive(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(*p, s))
            .collect();
        let table = SymbolTable::build(&files);
        check_transitive(&files, &table)
    }

    #[test]
    fn flags_unwrap_and_expect_calls() {
        let d = findings("fn f() { let x = g().unwrap(); let y = h().expect(\"msg\"); }\n");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains(".unwrap"));
        assert!(d[1].message.contains(".expect"));
    }

    #[test]
    fn flags_panic_family() {
        let d = findings("fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\n");
        assert_eq!(d.len(), 2);
        assert_eq!(findings("fn f() { todo!() }\n").len(), 1);
        assert_eq!(findings("fn f() { unimplemented!() }\n").len(), 1);
    }

    #[test]
    fn flags_literal_indexing_only() {
        assert_eq!(findings("fn f(xs: &[f64]) -> f64 { xs[0] }\n").len(), 1);
        assert!(findings("fn f(xs: &[f64], i: usize) -> f64 { xs[i] }\n").is_empty());
        // Array type declarations and literals are not index expressions.
        assert!(findings("fn f() -> [f64; 4] { [0.0; 4] }\n").is_empty());
        assert!(findings("const XS: [u8; 2] = [1, 2];\n").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<f64>) -> f64 { x.unwrap_or(0.0).max(x.unwrap_or_default()) }\n";
        assert!(findings(src).is_empty());
        // `expect` as a field/ident without a call is not flagged.
        assert!(findings("struct S { expect: bool }\n").is_empty());
    }

    #[test]
    fn debug_assert_is_not_flagged() {
        assert!(findings("fn f(x: f64) { debug_assert!(x > 0.0); }\n").is_empty());
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { g().unwrap(); }\n}\n";
        assert!(findings(test_mod).is_empty());
        let allowed =
            "// focal-lint: allow(panic-freedom) -- table is compile-time constant\nfn f() { T[0]; }\n";
        assert!(findings(allowed).is_empty());
    }

    #[test]
    fn doc_comment_examples_are_exempt() {
        let src = "/// ```\n/// let x = g().unwrap();\n/// ```\nfn f() {}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn transitive_call_into_panicking_helper_is_flagged() {
        let d = transitive(&[
            (
                "crates/core/src/model.rs",
                "pub fn evaluate(x: f64) -> f64 { shared_helper(x) }\n",
            ),
            (
                "crates/studies/src/util.rs",
                "pub fn shared_helper(x: f64) -> f64 { table().unwrap() * x }\n",
            ),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "crates/core/src/model.rs");
        assert!(d[0].message.contains("shared_helper"));
        assert!(d[0].message.contains(".unwrap"));
        assert!(d[0].message.contains("crates/studies/src/util.rs:1"));
    }

    #[test]
    fn transitive_walks_multi_hop_chains() {
        let d = transitive(&[
            (
                "crates/wafer/src/yield_model.rs",
                "pub fn batch(x: f64) -> f64 { outer_helper(x) }\n",
            ),
            (
                "crates/report/src/chain.rs",
                "pub fn outer_helper(x: f64) -> f64 { inner_helper(x) }\npub fn inner_helper(x: f64) -> f64 { if x < 0.0 { panic!(\"neg\") } else { x } }\n",
            ),
        ]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("outer_helper → inner_helper"));
        assert!(d[0].message.contains("`panic!`"));
    }

    #[test]
    fn transitive_respects_allow_at_source_and_at_call() {
        // An allow at the panic site clears the whole chain…
        let at_source = transitive(&[
            (
                "crates/core/src/model.rs",
                "pub fn evaluate(x: f64) -> f64 { shared_helper(x) }\n",
            ),
            (
                "crates/studies/src/util.rs",
                "pub fn shared_helper(x: f64) -> f64 {\n    // focal-lint: allow(panic-freedom) -- static table, always present\n    table().unwrap() * x\n}\n",
            ),
        ]);
        assert!(at_source.is_empty(), "{at_source:?}");
        // …and an allow at the call site clears just that caller.
        let at_call = transitive(&[
            (
                "crates/core/src/model.rs",
                "pub fn evaluate(x: f64) -> f64 {\n    // focal-lint: allow(panic-freedom) -- input validated by caller\n    shared_helper(x)\n}\n",
            ),
            (
                "crates/studies/src/util.rs",
                "pub fn shared_helper(x: f64) -> f64 { table().unwrap() * x }\n",
            ),
        ]);
        assert!(at_call.is_empty(), "{at_call:?}");
    }

    #[test]
    fn transitive_skips_model_internal_and_clean_callees() {
        // Model → model: the direct pass owns the report.
        let internal = transitive(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller(x: f64) -> f64 { model_helper(x) }\n",
            ),
            (
                "crates/wafer/src/b.rs",
                "pub fn model_helper(x: f64) -> f64 { t().unwrap() * x }\n",
            ),
        ]);
        assert!(internal.is_empty(), "{internal:?}");
        // Clean non-model callee: nothing to report.
        let clean = transitive(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller(x: f64) -> f64 { tidy_helper(x) }\n",
            ),
            (
                "crates/studies/src/b.rs",
                "pub fn tidy_helper(x: f64) -> f64 { x * 2.0 }\n",
            ),
        ]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn transitive_survives_recursive_call_graphs() {
        let d = transitive(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller(x: f64) -> f64 { ping(x) }\n",
            ),
            (
                "crates/studies/src/b.rs",
                "pub fn ping(x: f64) -> f64 { if x > 0.0 { pong(x - 1.0) } else { x } }\npub fn pong(x: f64) -> f64 { ping(x).max(probe().unwrap()) }\n",
            ),
        ]);
        // The cycle terminates and the unwrap inside it is still found.
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ping"));
    }

    #[test]
    fn transitive_ignores_test_code_callers() {
        let d = transitive(&[
            (
                "crates/core/src/a.rs",
                "#[cfg(test)]\nmod t {\n fn probe() { shared_helper(1.0); }\n}\n",
            ),
            (
                "crates/studies/src/b.rs",
                "pub fn shared_helper(x: f64) -> f64 { t().unwrap() * x }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }
}
