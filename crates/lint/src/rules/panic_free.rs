//! `panic-freedom`: model crates must not panic in non-test code.
//!
//! The model crates (`core`, `wafer`, `perf`, `cache`, `uarch`,
//! `scaling`, `act`) are library substrates that production harnesses
//! drive over millions of parameter combinations; a `.unwrap()` that is
//! "obviously fine" for today's inputs becomes a fleet-wide abort after
//! the next refactor. Non-test code must propagate [`ModelError`]
//! instead. The rule flags:
//!
//! * `.unwrap()` and `.expect(…)` calls,
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!` invocations,
//! * indexing by an integer literal (`xs[0]`), which panics on
//!   out-of-bounds and should be `xs.first()` / `xs.get(0)`.
//!
//! `debug_assert!` is deliberately not flagged (it vanishes in release
//! builds and documents invariants), and `assert!` is left to review.
//!
//! [`ModelError`]: https://docs.rs/focal-core

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the rule over one file (callers pre-filter to model-crate src).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tokens = &file.lexed.tokens;
    let mut push = |line: u32, col: u32, message: String, help: &str| {
        out.push(Diagnostic {
            rule: Rule::PanicFreedom,
            file: file.path.clone(),
            line,
            col,
            message,
            help: help.into(),
        });
    };

    for (i, tok) in tokens.iter().enumerate() {
        if file.in_test_code(tok.line) || file.allows.covers(Rule::PanicFreedom, tok.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);

        // `.unwrap()` / `.expect(`
        if tok.kind == TokenKind::Ident && (tok.text == "unwrap" || tok.text == "expect") {
            let after_dot = prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".");
            let called = next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
            if after_dot && called {
                push(
                    tok.line,
                    tok.col,
                    format!("`.{}(…)` in non-test model code", tok.text),
                    "propagate a `focal_core::ModelError` (`?`, `ok_or`, `map_err`) instead \
                     of panicking; if the invariant is truly unbreakable, justify it with \
                     `// focal-lint: allow(panic-freedom) -- <reason>`",
                );
            }
            continue;
        }

        // `panic!` family.
        if tok.kind == TokenKind::Ident && PANIC_MACROS.contains(&tok.text.as_str()) {
            let invoked = next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == "!");
            // `core::panic!` style paths still end with the bare ident.
            if invoked {
                push(
                    tok.line,
                    tok.col,
                    format!("`{}!` in non-test model code", tok.text),
                    "return a `Result` with a descriptive `ModelError` variant; panics in \
                     the model substrate abort whole batch runs",
                );
            }
            continue;
        }

        // Indexing by integer literal: `expr[3]`.
        if tok.kind == TokenKind::Punct && tok.text == "[" {
            let indexable = prev.is_some_and(|p| {
                p.kind == TokenKind::Ident && p.text != "return" && p.text != "break"
                    || (p.kind == TokenKind::Punct && (p.text == ")" || p.text == "]"))
            });
            let literal_index = next.is_some_and(|n| n.kind == TokenKind::Int)
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "]");
            if indexable && literal_index {
                push(
                    tok.line,
                    tok.col,
                    "indexing by integer literal in non-test model code".into(),
                    "use `.get(n)` / `.first()` and handle the `None`; literal indexing \
                     panics when the collection shape changes",
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    #[test]
    fn flags_unwrap_and_expect_calls() {
        let d = findings("fn f() { let x = g().unwrap(); let y = h().expect(\"msg\"); }\n");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains(".unwrap"));
        assert!(d[1].message.contains(".expect"));
    }

    #[test]
    fn flags_panic_family() {
        let d = findings("fn f() { panic!(\"boom\"); }\nfn g() { unreachable!() }\n");
        assert_eq!(d.len(), 2);
        assert_eq!(findings("fn f() { todo!() }\n").len(), 1);
        assert_eq!(findings("fn f() { unimplemented!() }\n").len(), 1);
    }

    #[test]
    fn flags_literal_indexing_only() {
        assert_eq!(findings("fn f(xs: &[f64]) -> f64 { xs[0] }\n").len(), 1);
        assert!(findings("fn f(xs: &[f64], i: usize) -> f64 { xs[i] }\n").is_empty());
        // Array type declarations and literals are not index expressions.
        assert!(findings("fn f() -> [f64; 4] { [0.0; 4] }\n").is_empty());
        assert!(findings("const XS: [u8; 2] = [1, 2];\n").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<f64>) -> f64 { x.unwrap_or(0.0).max(x.unwrap_or_default()) }\n";
        assert!(findings(src).is_empty());
        // `expect` as a field/ident without a call is not flagged.
        assert!(findings("struct S { expect: bool }\n").is_empty());
    }

    #[test]
    fn debug_assert_is_not_flagged() {
        assert!(findings("fn f(x: f64) { debug_assert!(x > 0.0); }\n").is_empty());
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { g().unwrap(); }\n}\n";
        assert!(findings(test_mod).is_empty());
        let allowed =
            "// focal-lint: allow(panic-freedom) -- table is compile-time constant\nfn f() { T[0]; }\n";
        assert!(findings(allowed).is_empty());
    }

    #[test]
    fn doc_comment_examples_are_exempt() {
        let src = "/// ```\n/// let x = g().unwrap();\n/// ```\nfn f() {}\n";
        assert!(findings(src).is_empty());
    }
}
