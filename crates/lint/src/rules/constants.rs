//! `constant-provenance`: paper constants live in `data/constants.toml`.
//!
//! One silently transposed constant (scope-2's +11.9 %/yr vs scope-1's
//! +9.3 %/yr, §3.1/Fig. 1) corrupts every downstream figure, so every
//! hard-coded occurrence of a registered paper constant is
//! cross-checked against the manifest:
//!
//! * **Unregistered occurrence** — a numeric literal whose value matches
//!   a registered constant (under the constant's optional line-context
//!   keyword) appears in a file the manifest does not list for it. Either
//!   the file should derive the value from the canonical definition, or
//!   the manifest's `sources` list needs the new file.
//! * **Provenance drift** — a file registered as a source for a constant
//!   no longer contains any of its literal forms: someone edited the
//!   value without updating the manifest (or vice versa).
//!
//! Occurrences in test code are exempt — asserting `1.252` in a unit
//! test *is* the cross-check working as intended.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::{normalize_number, TokenKind};
use crate::manifest::{Manifest, PaperConstant};
use crate::source::SourceFile;
use std::collections::BTreeSet;

fn literal_values(constant: &PaperConstant) -> Vec<f64> {
    constant
        .literals
        .iter()
        .filter_map(|l| l.parse::<f64>().ok())
        .collect()
}

fn context_matches(constant: &PaperConstant, line_text: &str) -> bool {
    match &constant.context {
        None => true,
        Some(keyword) => line_text.to_lowercase().contains(&keyword.to_lowercase()),
    }
}

/// Runs the audit: `files` are all scanned sources, `manifest` the
/// parsed registry. Returns diagnostics for unregistered occurrences
/// and for registered sources that no longer match.
pub fn check(files: &[SourceFile], manifest: &Manifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // (constant index, source path) pairs confirmed present.
    let mut satisfied: BTreeSet<(usize, String)> = BTreeSet::new();

    for file in files {
        for tok in &file.lexed.tokens {
            if !matches!(tok.kind, TokenKind::Int | TokenKind::Float) {
                continue;
            }
            let Ok(value) = normalize_number(&tok.text).parse::<f64>() else {
                continue;
            };
            for (ci, constant) in manifest.constants.iter().enumerate() {
                if !literal_values(constant).contains(&value) {
                    continue;
                }
                if !context_matches(constant, file.line_text(tok.line)) {
                    continue;
                }
                if constant.sources.iter().any(|s| s == &file.path) {
                    satisfied.insert((ci, file.path.clone()));
                    continue;
                }
                if file.in_test_code(tok.line)
                    || file.allows.covers(Rule::ConstantProvenance, tok.line)
                {
                    continue;
                }
                out.push(Diagnostic {
                    rule: Rule::ConstantProvenance,
                    file: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "unregistered occurrence of paper constant `{}` ({} = {}, {})",
                        constant.name, tok.text, constant.value, constant.section
                    ),
                    help: format!(
                        "derive the value from its canonical definition instead of \
                         re-hard-coding it, or add this file to `sources` of `{}` in \
                         data/constants.toml",
                        constant.name
                    ),
                });
            }
        }
    }

    // Provenance drift: every registered source must still contain the
    // constant somewhere (test or non-test — a golden assert counts).
    let scanned: BTreeSet<&str> = files.iter().map(|f| f.path.as_str()).collect();
    for (ci, constant) in manifest.constants.iter().enumerate() {
        for source in &constant.sources {
            if !scanned.contains(source.as_str()) {
                out.push(Diagnostic {
                    rule: Rule::ConstantProvenance,
                    file: "data/constants.toml".into(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "constant `{}` registers source `{source}` which was not found in \
                         the workspace",
                        constant.name
                    ),
                    help: "fix the `sources` path in data/constants.toml".into(),
                });
                continue;
            }
            if !satisfied.contains(&(ci, source.clone())) {
                out.push(Diagnostic {
                    rule: Rule::ConstantProvenance,
                    file: source.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "registered source no longer contains paper constant `{}` \
                         (expected one of {:?}, {} — value drift?)",
                        constant.name, constant.literals, constant.section
                    ),
                    help: "restore the constant or update data/constants.toml to match \
                           the paper"
                        .into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest::parse(
            r#"
[[constant]]
name = "imec-scope2-node-growth"
value = 0.252
units = "fraction per node transition"
section = "§3.1"
literals = ["0.252", "1.252", "25.2"]
sources = ["crates/wafer/src/fab.rs"]

[[constant]]
name = "pollack-exponent"
value = 0.5
units = "dimensionless"
section = "§4.1"
literals = ["0.5"]
context = "pollack"
sources = ["crates/perf/src/pollack.rs"]
"#,
        )
        .unwrap()
    }

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    #[test]
    fn registered_source_with_value_is_clean() {
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.252;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: PollackRule = PollackRule { exponent: 0.5 }; // pollack\n",
            ),
        ];
        assert!(check(&files, &manifest()).is_empty());
    }

    #[test]
    fn unregistered_occurrence_is_flagged() {
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.252;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "// pollack 0.5\npub const E: f64 = 0.5; // pollack exponent\n",
            ),
            file("crates/scaling/src/shrink.rs", "let dirtier = 1.252;\n"),
        ];
        let d = check(&files, &manifest());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "crates/scaling/src/shrink.rs");
        assert!(d[0].message.contains("imec-scope2-node-growth"));
        assert!(d[0].message.contains("unregistered"));
    }

    #[test]
    fn context_keyword_gates_non_distinctive_values() {
        // 0.5 without "pollack" on the line is NOT an occurrence.
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.252;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: f64 = 0.5; // pollack's rule\n",
            ),
            file(
                "crates/core/src/weight.rs",
                "pub const BALANCED: f64 = 0.5;\n",
            ),
        ];
        assert!(check(&files, &manifest()).is_empty());
        // …but 0.5 on a line mentioning pollack elsewhere IS flagged.
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.252;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: f64 = 0.5; // pollack\n",
            ),
            file(
                "crates/uarch/src/cores.rs",
                "let perf = bce.powf(0.5); // inline pollack exponent\n",
            ),
        ];
        let d = check(&files, &manifest());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("pollack-exponent"));
    }

    #[test]
    fn drifted_source_is_flagged() {
        // fab.rs edited to 0.262 without touching the manifest.
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.262;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: f64 = 0.5; // pollack\n",
            ),
        ];
        let d = check(&files, &manifest());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no longer contains"));
        assert_eq!(d[0].file, "crates/wafer/src/fab.rs");
    }

    #[test]
    fn missing_source_file_is_flagged() {
        let files = vec![file(
            "crates/perf/src/pollack.rs",
            "pub const P: f64 = 0.5; // pollack\n",
        )];
        let d = check(&files, &manifest());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not found"));
        assert_eq!(d[0].file, "data/constants.toml");
    }

    #[test]
    fn test_code_occurrences_are_exempt_but_satisfy_provenance() {
        let files = vec![
            file(
                "crates/wafer/src/fab.rs",
                "pub const G2: f64 = 0.252;\n#[cfg(test)]\nmod t { fn a() { assert_eq!(G2, 0.252); } }\n",
            ),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: f64 = 0.5; // pollack\n",
            ),
            // A *test* file mentioning 1.252 is fine.
            file("crates/scaling/tests/props.rs", "assert!((x - 1.252).abs() < 1e-9);\n"),
        ];
        assert!(check(&files, &manifest()).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_occurrence() {
        let files = vec![
            file("crates/wafer/src/fab.rs", "pub const G2: f64 = 0.252;\n"),
            file(
                "crates/perf/src/pollack.rs",
                "pub const P: f64 = 0.5; // pollack\n",
            ),
            file(
                "crates/scaling/src/shrink.rs",
                "// focal-lint: allow(constant-provenance) -- doc example mirrors the paper\nlet x = 1.252;\n",
            ),
        ];
        assert!(check(&files, &manifest()).is_empty());
    }
}
