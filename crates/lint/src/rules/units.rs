//! `unit-hygiene`: quantity-named public API must carry units.
//!
//! A public function in a model crate whose name mentions a physical
//! quantity (`area`, `energy`, `power`, `carbon`, `footprint`, `yield`)
//! must make its units checkable in one of two ways:
//!
//! * use a `focal-core` quantity newtype (`SiliconArea`, `Energy`,
//!   `Power`, `CarbonFootprint`, …) somewhere in its signature, or
//! * state the units (or explicit dimensionlessness) in its doc comment
//!   — "mm²", "kg CO₂e", "normalized", "fraction", …
//!
//! This makes the kgCO₂-vs-mm²-vs-joules class of mix-up reviewable at
//! every public boundary without whole-program type inference.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Name segments that mark a function as quantity-bearing.
const QUANTITY_KEYWORDS: &[&str] = &["area", "energy", "power", "carbon", "footprint", "yield"];

/// Newtypes (focal-core plus substrate-crate quantity types) that make a
/// signature self-describing.
const NEWTYPES: &[&str] = &[
    "SiliconArea",
    "Energy",
    "Power",
    "CarbonFootprint",
    "Performance",
    "ExecutionTime",
    "DefectDensity",
    "CacheSize",
    "Ncf",
    "NcfPair",
    "NcfBand",
    "ScopedFootprint",
];

/// Substrings in a doc comment that count as a units statement.
const UNIT_WORDS: &[&str] = &[
    "mm²",
    "mm^2",
    "mm2",
    "cm²",
    "cm^2",
    "cm2",
    "kg",
    "co2",
    "co₂",
    "joule",
    "nanojoule",
    "nj",
    "kwh",
    "watt",
    "normalized",
    "dimensionless",
    "fraction",
    "ratio",
    "percent",
    "%",
    "speedup",
    "relative",
    "bce",
    "mib",
    "kib",
    "byte",
    "per year",
    "per node",
    "per wafer",
    "per die",
    "per cm",
    "units:",
    "unitless",
    "probability",
    "defects",
];

fn quantity_keyword(name: &str) -> Option<&'static str> {
    let lower = name.to_lowercase();
    lower
        .split('_')
        .find_map(|seg| QUANTITY_KEYWORDS.iter().find(|k| seg == **k))
        .copied()
}

fn doc_block_above(file: &SourceFile, item_line: u32) -> String {
    // Walk upward over doc comments and attributes; stop at anything else.
    let mut docs = Vec::new();
    let mut line = item_line.saturating_sub(1);
    while line >= 1 {
        let text = file.line_text(line).trim().to_string();
        if text.starts_with("///") || text.starts_with("//!") {
            docs.push(text);
        } else if text.starts_with("#[") || text.starts_with("//") || text.ends_with(']') {
            // attributes (possibly multi-line) and plain comments: skip
        } else {
            break;
        }
        line -= 1;
    }
    docs.reverse();
    docs.join("\n")
}

/// Runs the rule over one file (callers pre-filter to model-crate src).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tokens = &file.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.kind == TokenKind::Ident && tok.text == "fn") {
            continue;
        }
        // Require `pub` visibility, unrestricted: scan the qualifier run
        // (`pub const unsafe fn` …) immediately before the `fn`.
        let mut j = i;
        let mut is_pub = false;
        while j > 0 {
            j -= 1;
            let t = &tokens[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => continue,
                (TokenKind::Str, _) => continue, // extern "C"
                (TokenKind::Ident, "pub") => {
                    // `pub(crate)` etc. is not public API.
                    is_pub = tokens
                        .get(j + 1)
                        .map(|n| !(n.kind == TokenKind::Punct && n.text == "("))
                        .unwrap_or(true);
                    break;
                }
                _ => break,
            }
        }
        if !is_pub {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        if file.in_test_code(tok.line) {
            continue;
        }
        let Some(keyword) = quantity_keyword(&name_tok.text) else {
            continue;
        };

        // Signature: tokens until the body `{` or a trailing `;`.
        let mut has_newtype = false;
        let mut k = i + 2;
        while let Some(t) = tokens.get(k) {
            if t.kind == TokenKind::Punct && (t.text == "{" || t.text == ";") {
                break;
            }
            if t.kind == TokenKind::Ident && NEWTYPES.contains(&t.text.as_str()) {
                has_newtype = true;
            }
            k += 1;
        }
        if has_newtype {
            continue;
        }

        // Fall back to the doc comment. The item may start on the `pub`
        // line (or the attr line); walk up from the `pub` token's line.
        let item_line = tokens.get(j).map(|t| t.line).unwrap_or(tok.line);
        let docs = doc_block_above(file, item_line).to_lowercase();
        let documented = UNIT_WORDS.iter().any(|w| docs.contains(w));
        if documented {
            continue;
        }
        if file.allows.covers(Rule::UnitHygiene, tok.line)
            || file.allows.covers(Rule::UnitHygiene, item_line)
        {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::UnitHygiene,
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "public fn `{}` mentions quantity `{keyword}` but neither uses a \
                 focal-core newtype nor states units in its doc comment",
                name_tok.text
            ),
            help: "take/return `SiliconArea`/`Energy`/`Power`/`CarbonFootprint`, or \
                   document the unit (e.g. `/// …in mm².` or `/// Normalized, \
                   dimensionless.`)"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/wafer/src/x.rs", src))
    }

    #[test]
    fn undocumented_quantity_fn_is_flagged() {
        let d = findings("pub fn wafer_area(d: f64) -> f64 { d * d }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("wafer_area"));
        assert!(d[0].message.contains("area"));
    }

    #[test]
    fn newtype_in_signature_passes() {
        let src = "pub fn wafer_area(d: f64) -> SiliconArea { SiliconArea::from_mm2(d * d) }\n";
        assert!(findings(src).is_empty());
        let arg = "pub fn embodied_carbon(die: SiliconArea) -> f64 { die.get() }\n";
        assert!(findings(arg).is_empty());
    }

    #[test]
    fn documented_units_pass() {
        let src = "/// The wafer area in mm².\npub fn wafer_area(d: f64) -> f64 { d * d }\n";
        assert!(findings(src).is_empty());
        let norm =
            "/// Normalized energy (dimensionless).\npub fn energy_ratio(x: f64) -> f64 { x }\n";
        assert!(findings(norm).is_empty());
    }

    #[test]
    fn doc_block_survives_attributes_between() {
        let src =
            "/// Yield as a fraction of good dies.\n#[inline]\n#[must_use]\npub fn yield_fraction(x: f64) -> f64 { x }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn non_quantity_and_private_fns_are_ignored() {
        assert!(findings("pub fn classify(x: f64) -> f64 { x }\n").is_empty());
        assert!(findings("fn area_helper(x: f64) -> f64 { x }\n").is_empty());
        assert!(findings("pub(crate) fn area_helper(x: f64) -> f64 { x }\n").is_empty());
    }

    #[test]
    fn keyword_matches_whole_segments_only() {
        // "compare" contains "are" but not the segment "area".
        assert!(findings("pub fn compare_designs(x: f64) -> f64 { x }\n").is_empty());
        // "powf" is not "power".
        assert!(findings("pub fn powf_sweep(x: f64) -> f64 { x }\n").is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// focal-lint: allow(unit-hygiene) -- legacy API, units in module docs\npub fn area_of(x: f64) -> f64 { x }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod t {\n pub fn area_probe(x: f64) -> f64 { x }\n}\n";
        assert!(findings(src).is_empty());
    }
}
