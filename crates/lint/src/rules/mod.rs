//! The four FOCAL-specific lint rules.
//!
//! | rule | scope | what it catches |
//! |---|---|---|
//! | `float-eq` | all non-test code | `==`/`!=` against float literals / NaN |
//! | `panic-freedom` | model-crate non-test code | `.unwrap()`, `.expect()`, `panic!`-family, indexing by literal |
//! | `constant-provenance` | all crate sources vs `data/constants.toml` | unregistered or drifted paper constants |
//! | `unit-hygiene` | model-crate public API | quantity-named fns without newtypes or documented units |
//!
//! Every rule honours the `// focal-lint: allow(<rule>) -- <reason>`
//! escape hatch (see [`crate::allow`]).

pub mod constants;
pub mod float_eq;
pub mod panic_free;
pub mod units;

/// Crates whose non-test code must be panic-free and unit-hygienic:
/// the first-order model itself, where a silent panic or a unit mix-up
/// corrupts every downstream figure, plus the parallel engine that every
/// model evaluation now runs through.
pub const MODEL_CRATES: &[&str] = &[
    "core", "wafer", "perf", "cache", "uarch", "scaling", "act", "engine",
];

/// Whether `path` (repo-relative, `/`-separated) is non-test source of a
/// model crate.
pub fn is_model_src(path: &str) -> bool {
    MODEL_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_src_classification() {
        assert!(is_model_src("crates/core/src/fleet.rs"));
        assert!(is_model_src("crates/wafer/src/fab.rs"));
        assert!(is_model_src("crates/engine/src/pool.rs"));
        assert!(!is_model_src("crates/core/tests/properties.rs"));
        assert!(!is_model_src("crates/engine/tests/properties.rs"));
        assert!(!is_model_src("crates/studies/src/soc.rs"));
        assert!(!is_model_src("crates/lint/src/lib.rs"));
        assert!(!is_model_src("src/lib.rs"));
    }
}
