//! The FOCAL-specific lint rules.
//!
//! | rule | scope | what it catches |
//! |---|---|---|
//! | `float-eq` | all non-test code | `==`/`!=` against float literals / NaN |
//! | `panic-freedom` | model-crate non-test code, call-graph transitive | `.unwrap()`, `.expect()`, `panic!`-family, indexing by literal — directly or through a call chain |
//! | `constant-provenance` | all crate sources vs `data/constants.toml` | unregistered or drifted paper constants |
//! | `unit-hygiene` | model-crate public API | quantity-named fns without newtypes or documented units |
//! | `nondet-iteration` | determinism crates | `HashMap`/`HashSet` whose iteration order can reach results |
//! | `rng-hygiene` | determinism crates | entropy/time-seeded RNGs; parallel seeding outside `chunk_seed` |
//! | `reduction-order` | determinism crates | float `sum`/`fold` in unblessed parallel merge paths |
//! | `concurrency-confinement` | all src outside `crates/engine` | `thread::spawn`, locks, atomics leaking out of the engine |
//!
//! Every rule honours the `// focal-lint: allow(<rule>) -- <reason>`
//! escape hatch (see [`crate::allow`]).

pub mod confinement;
pub mod constants;
pub mod float_eq;
pub mod nondet_iteration;
pub mod panic_free;
pub mod reduction_order;
pub mod rng_hygiene;
pub mod units;

/// Crates whose non-test code must be panic-free and unit-hygienic:
/// the first-order model itself, where a silent panic or a unit mix-up
/// corrupts every downstream figure, plus the parallel engine that every
/// model evaluation now runs through, and the serving layer that exposes
/// both to untrusted request streams.
pub const MODEL_CRATES: &[&str] = &[
    "core", "wafer", "perf", "cache", "uarch", "scaling", "act", "engine", "scenario", "serve",
];

/// Crates whose non-test code feeds the byte-diffed digests: the model
/// crates plus everything that assembles figures, findings and bench
/// records from them. Determinism rules run here.
pub const DETERMINISM_CRATES: &[&str] = &[
    "core", "wafer", "perf", "cache", "uarch", "scaling", "act", "engine", "studies", "report",
    "bench", "scenario", "serve",
];

/// Whether `path` (repo-relative, `/`-separated) is non-test source of a
/// model crate.
pub fn is_model_src(path: &str) -> bool {
    MODEL_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Whether `path` is non-test source of a determinism-scoped crate.
pub fn is_determinism_src(path: &str) -> bool {
    DETERMINISM_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Whether `path` is in scope for `concurrency-confinement`: any `src/`
/// tree except the engine (whose whole purpose is the confined
/// concurrency) and the linter itself (whose rule tables and tests spell
/// the forbidden names).
pub fn is_confinement_src(path: &str) -> bool {
    let in_src = path.starts_with("src/") || path.contains("/src/");
    in_src && !path.starts_with("crates/engine/src/") && !path.starts_with("crates/lint/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_src_classification() {
        assert!(is_model_src("crates/core/src/fleet.rs"));
        assert!(is_model_src("crates/wafer/src/fab.rs"));
        assert!(is_model_src("crates/engine/src/pool.rs"));
        assert!(is_model_src("crates/scenario/src/canonical.rs"));
        assert!(!is_model_src("crates/scenario/tests/negative.rs"));
        assert!(!is_model_src("crates/core/tests/properties.rs"));
        assert!(!is_model_src("crates/engine/tests/properties.rs"));
        assert!(!is_model_src("crates/studies/src/soc.rs"));
        assert!(!is_model_src("crates/lint/src/lib.rs"));
        assert!(!is_model_src("src/lib.rs"));
    }

    #[test]
    fn determinism_src_adds_result_assemblers() {
        assert!(is_determinism_src("crates/core/src/fleet.rs"));
        assert!(is_determinism_src("crates/studies/src/soc.rs"));
        assert!(is_determinism_src("crates/report/src/lib.rs"));
        assert!(is_determinism_src("crates/bench/src/lib.rs"));
        assert!(is_determinism_src("crates/scenario/src/compile.rs"));
        assert!(!is_determinism_src("crates/lint/src/lib.rs"));
        assert!(!is_determinism_src("crates/studies/tests/figures.rs"));
        assert!(!is_determinism_src("src/lib.rs"));
    }

    #[test]
    fn confinement_src_excludes_engine_and_lint_only() {
        assert!(is_confinement_src("crates/core/src/fleet.rs"));
        assert!(is_confinement_src("crates/studies/src/soc.rs"));
        assert!(is_confinement_src("src/lib.rs"));
        assert!(!is_confinement_src("crates/engine/src/pool.rs"));
        assert!(!is_confinement_src("crates/lint/src/engine.rs"));
        assert!(!is_confinement_src("crates/core/tests/properties.rs"));
        assert!(!is_confinement_src("tests/suite.rs"));
    }
}
