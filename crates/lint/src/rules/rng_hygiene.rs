//! `rng-hygiene`: every RNG is explicitly, reproducibly seeded.
//!
//! Three shapes of nondeterministic randomness are flagged in
//! determinism-scoped code:
//!
//! * **entropy seeding** — `from_entropy()`, `thread_rng()`,
//!   `rand::random()`: a fresh OS-entropy seed per run means no two runs
//!   ever agree;
//! * **time seeding** — `seed_from_u64(…)` whose argument is derived
//!   from `SystemTime`/`Instant`/`now()`/`elapsed()`: morally identical
//!   to entropy seeding with extra steps;
//! * **per-chunk seeding outside the blessed pattern** — inside the
//!   argument of a `par_*`/`try_par_*` call, `seed_from_u64(…)` must go
//!   through `chunk_seed(seed, chunk)` so every chunk derives its stream
//!   from the run seed and its own index; seeding from anything else
//!   makes the stream depend on scheduling.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::matching_paren;
use std::collections::BTreeSet;

/// Constructors that pull OS entropy.
const ENTROPY_FNS: &[&str] = &["from_entropy", "thread_rng"];

/// Identifiers that mark a seed as time-derived.
const TIME_IDENTS: &[&str] = &[
    "SystemTime",
    "UNIX_EPOCH",
    "Instant",
    "elapsed",
    "now",
    "duration_since",
];

/// Runs the rule over one file (callers pre-filter to determinism src).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let tokens = &file.lexed.tokens;
    // (token index, message) — BTreeSet dedupes a site reachable both as
    // a standalone scan hit and through a parallel-closure scan.
    let mut flagged: BTreeSet<(usize, String)> = BTreeSet::new();

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let called = tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");

        if ENTROPY_FNS.contains(&tok.text.as_str()) && called {
            flagged.insert((
                i,
                format!(
                    "`{}()` seeds from OS entropy: runs are unreproducible",
                    tok.text
                ),
            ));
            continue;
        }
        // `rand::random` (with or without turbofish / call parens).
        if tok.text == "random"
            && i >= 2
            && tokens[i - 1].text == "::"
            && tokens[i - 2].text == "rand"
        {
            flagged.insert((
                i,
                "`rand::random()` uses the entropy-seeded thread RNG".to_string(),
            ));
            continue;
        }
        if tok.text == "seed_from_u64" && called {
            let Some(close) = matching_paren(tokens, i + 1) else {
                continue;
            };
            let time_derived = tokens[i + 2..close]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && TIME_IDENTS.contains(&t.text.as_str()));
            if time_derived {
                flagged.insert((
                    i,
                    "`seed_from_u64(…)` seeded from wall-clock time: runs are \
                     unreproducible"
                        .to_string(),
                ));
            }
        }
    }

    // Inside parallel-operation arguments, explicit seeding must derive
    // from `chunk_seed`; a constant or captured seed would give every
    // chunk the same stream (or a scheduling-dependent one).
    for (i, tok) in tokens.iter().enumerate() {
        let is_par_call = tok.kind == TokenKind::Ident
            && (tok.text.starts_with("par_") || tok.text.starts_with("try_par_"))
            && tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
        if !is_par_call {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        for j in i + 2..close {
            if !(tokens[j].kind == TokenKind::Ident && tokens[j].text == "seed_from_u64") {
                continue;
            }
            let Some(seed_open) = tokens
                .get(j + 1)
                .filter(|n| n.kind == TokenKind::Punct && n.text == "(")
                .map(|_| j + 1)
            else {
                continue;
            };
            let Some(seed_close) = matching_paren(tokens, seed_open) else {
                continue;
            };
            let uses_chunk_seed = tokens[seed_open + 1..seed_close]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "chunk_seed");
            if !uses_chunk_seed {
                flagged.insert((
                    j,
                    format!(
                        "RNG seeded independently of the chunk index inside `{}(…)`: \
                         use `chunk_seed(seed, chunk)` so streams are \
                         schedule-independent",
                        tok.text
                    ),
                ));
            }
        }
    }

    flagged
        .into_iter()
        .filter(|(i, _)| {
            let line = tokens[*i].line;
            !file.in_test_code(line) && !file.allows.covers(Rule::RngHygiene, line)
        })
        .map(|(i, message)| Diagnostic {
            rule: Rule::RngHygiene,
            file: file.path.clone(),
            line: tokens[i].line,
            col: tokens[i].col,
            message,
            help: "derive every RNG from the run's explicit seed — serially via \
                   `StdRng::seed_from_u64(seed)`, per-chunk via \
                   `StdRng::seed_from_u64(chunk_seed(seed, chunk))`"
                .into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    #[test]
    fn flags_entropy_constructors() {
        assert_eq!(
            findings("fn f() { let r = StdRng::from_entropy(); }\n").len(),
            1
        );
        assert_eq!(
            findings("fn f() { let r = rand::thread_rng(); }\n").len(),
            1
        );
        assert_eq!(
            findings("fn f() -> f64 { rand::random::<f64>() }\n").len(),
            1
        );
    }

    #[test]
    fn flags_time_derived_seeds() {
        let src = "fn f() { let r = StdRng::seed_from_u64(\
                   SystemTime::now().duration_since(UNIX_EPOCH).as_secs()); }\n";
        assert_eq!(findings(src).len(), 1);
        let inst =
            "fn f(t: Instant) { let r = StdRng::seed_from_u64(t.elapsed().as_nanos() as u64); }\n";
        assert_eq!(findings(inst).len(), 1);
    }

    #[test]
    fn explicit_seed_passes() {
        assert!(findings("fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }\n").is_empty());
        assert!(findings("fn f() { let r = StdRng::seed_from_u64(42); }\n").is_empty());
    }

    #[test]
    fn par_closure_must_use_chunk_seed() {
        let bad = "fn f(e: &Engine, seed: u64) {\n    e.par_chunk_map(4, |c| {\n        let r = StdRng::seed_from_u64(seed);\n        draw(r)\n    });\n}\n";
        let d = findings(bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("chunk index"));
        let good = "fn f(e: &Engine, seed: u64) {\n    e.par_chunk_map(4, |c| {\n        let r = StdRng::seed_from_u64(chunk_seed(seed, c));\n        draw(r)\n    });\n}\n";
        assert!(findings(good).is_empty());
    }

    #[test]
    fn serial_seeding_outside_par_is_fine() {
        let src = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); serial(r) }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn dedupes_time_seed_inside_par_closure() {
        // Both scans hit this site; it must yield one diagnostic per
        // problem, not one per scan.
        let src = "fn f(e: &Engine) { e.par_map(xs, |x| StdRng::seed_from_u64(\
                   SystemTime::now().as_secs()).gen()); }\n";
        assert_eq!(findings(src).len(), 2); // time-derived + not-chunk_seed
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod t {\n fn t() { rand::thread_rng(); }\n}\n";
        assert!(findings(test_mod).is_empty());
        let allowed = "// focal-lint: allow(rng-hygiene) -- interactive demo, reproducibility not needed\nfn f() { let r = StdRng::from_entropy(); }\n";
        assert!(findings(allowed).is_empty());
    }
}
