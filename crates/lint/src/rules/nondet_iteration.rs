//! `nondet-iteration`: no hash-ordered collections in determinism code.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`'s
//! per-process seed, so any loop, `collect`, or reduction over one can
//! reorder floating-point accumulation or output rows between runs —
//! exactly the class of bug the suite's 1-vs-4-thread byte-diff exists
//! to catch, except at its root instead of at the digest. Determinism
//! crates must use `BTreeMap`/`BTreeSet` (or sort before iterating, via
//! a `Vec`). The rule flags every mention of a hash-ordered type in
//! non-test determinism code, including the `use` that imports it.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Identifiers that mark hash-ordered (iteration-order-unstable) state.
const HASH_ORDERED: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set", "RandomState"];

/// Runs the rule over one file (callers pre-filter to determinism src).
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for tok in &file.lexed.tokens {
        if tok.kind != TokenKind::Ident || !HASH_ORDERED.contains(&tok.text.as_str()) {
            continue;
        }
        if file.in_test_code(tok.line) || file.allows.covers(Rule::NondetIteration, tok.line) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::NondetIteration,
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{}` in determinism-scoped code: iteration order varies per process",
                tok.text
            ),
            help: "use `BTreeMap`/`BTreeSet`, or collect into a `Vec` and sort before \
                   iterating; if order provably never escapes (pure membership tests), \
                   justify with `// focal-lint: allow(nondet-iteration) -- <reason>`"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    #[test]
    fn flags_hashmap_use_and_mentions() {
        let src =
            "use std::collections::HashMap;\nfn f() -> HashMap<u32, f64> { HashMap::new() }\n";
        let d = findings(src);
        assert_eq!(d.len(), 3);
        assert!(d[0].message.contains("HashMap"));
    }

    #[test]
    fn flags_hashset_and_random_state() {
        assert_eq!(findings("fn f(s: &HashSet<u32>) {}\n").len(), 1);
        assert_eq!(findings("fn f(s: RandomState) {}\n").len(), 1);
        assert_eq!(
            findings("use std::collections::hash_map::Entry;\n").len(),
            1
        );
    }

    #[test]
    fn btree_collections_pass() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f() -> BTreeMap<u32, f64> { BTreeMap::new() }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        assert!(findings("fn f() -> &'static str { \"HashMap\" }\n").is_empty());
        assert!(findings("// a HashMap would be wrong here\nfn f() {}\n").is_empty());
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod t {\n use std::collections::HashMap;\n}\n";
        assert!(findings(test_mod).is_empty());
        let allowed = "// focal-lint: allow(nondet-iteration) -- membership only, never iterated\nfn f(s: &HashSet<u32>) -> bool { s.contains(&1) }\n";
        assert!(findings(allowed).is_empty());
    }
}
