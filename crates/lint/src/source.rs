//! Per-file source model: lexed tokens, allow directives, raw lines and
//! the line spans occupied by `#[cfg(test)]` items.

use crate::allow::Allows;
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path (always with `/` separators).
    pub path: String,
    /// Raw lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// Token/comment streams.
    pub lexed: Lexed,
    /// Parsed allow directives.
    pub allows: Allows,
    /// Inclusive line spans covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Whether the whole file is test/bench code by location
    /// (`tests/`, `benches/`, `examples/`).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Lexes and indexes `text` as the file at `path`.
    pub fn parse(path: impl Into<String>, text: &str) -> SourceFile {
        let path = path.into();
        let lexed = lex(text);
        let allows = Allows::parse(&lexed.comments);
        let test_spans = find_test_spans(&lexed.tokens);
        let is_test_file = {
            let p = format!("/{path}");
            p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
        };
        SourceFile {
            path,
            lines: text.lines().map(str::to_string).collect(),
            lexed,
            allows,
            test_spans,
            is_test_file,
        }
    }

    /// The raw text of a 1-based line (empty for out-of-range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether `line` lies in test code (a `#[cfg(test)]` item or a
    /// test-by-location file).
    pub fn in_test_code(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_spans
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    }
}

/// Finds the inclusive line spans of items gated behind `#[cfg(test)]`.
///
/// The scan looks for an attribute whose tokens mention both `cfg` and
/// `test` (this covers `#[cfg(test)]` and `#[cfg(all(test, …))]`), then
/// extends the span over the following item: through the matching `}`
/// of its body, or through the terminating `;` for bodiless items.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(open) = tokens.get(i + 1) else { break };
        if !(open.kind == TokenKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident {
                saw_cfg |= t.text == "cfg";
                saw_test |= t.text == "test";
                saw_not |= t.text == "not";
            }
            j += 1;
        }
        // `not` disqualifies conservatively: `#[cfg(not(test))]` gates
        // *production* code and must not be treated as a test span.
        if !(saw_cfg && saw_test) || saw_not {
            i = j;
            continue;
        }
        let attr_line = tokens[i].line;
        // Skip any further attributes before the item itself.
        let mut k = j;
        while k + 1 < tokens.len()
            && tokens[k].kind == TokenKind::Punct
            && tokens[k].text == "#"
            && tokens[k + 1].text == "["
        {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Walk to the item's body `{` (or a `;` for bodiless items).
        let mut end_line = attr_line;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct && t.text == ";" {
                end_line = t.line;
                k += 1;
                break;
            }
            if t.kind == TokenKind::Punct && t.text == "{" {
                let mut d = 1usize;
                k += 1;
                while k < tokens.len() && d > 0 {
                    match tokens[k].text.as_str() {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    if d == 0 {
                        end_line = tokens[k].line;
                    }
                    k += 1;
                }
                break;
            }
            end_line = t.line;
            k += 1;
        }
        spans.push((attr_line, end_line));
        i = k;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNIPPET: &str = r#"
pub fn model_code() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn a_test() {
        assert!(model_code() == 1.0);
    }
}

pub fn more_model_code() {}
"#;

    #[test]
    fn cfg_test_mod_span_covers_its_body_only() {
        let f = SourceFile::parse("crates/x/src/lib.rs", SNIPPET);
        assert!(!f.in_test_code(2)); // model_code
        assert!(f.in_test_code(6)); // the attribute
        assert!(f.in_test_code(10)); // the assert inside
        assert!(f.in_test_code(12)); // closing brace
        assert!(!f.in_test_code(14)); // more_model_code
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        let f = SourceFile::parse(
            "x.rs",
            "#[cfg(all(test, feature = \"x\"))]\nmod t {\n fn f() {}\n}\nfn live() {}\n",
        );
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn prod() { work(); }\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn non_test_cfg_is_not_a_test_span() {
        let f = SourceFile::parse("x.rs", "#[cfg(feature = \"extra\")]\nfn gated() {}\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn files_under_tests_are_test_code() {
        let f = SourceFile::parse("crates/x/tests/properties.rs", "fn helper() {}\n");
        assert!(f.in_test_code(1));
        let b = SourceFile::parse("crates/bench/benches/figures.rs", "fn b() {}\n");
        assert!(b.in_test_code(1));
        let s = SourceFile::parse("crates/x/src/lib.rs", "fn live() {}\n");
        assert!(!s.in_test_code(1));
    }

    #[test]
    fn bodiless_cfg_test_item_spans_to_semicolon() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n");
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }
}
