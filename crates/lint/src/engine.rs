//! Workspace discovery and rule orchestration.

use crate::diagnostics::Diagnostic;
use crate::manifest::Manifest;
use crate::rules;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use std::path::{Path, PathBuf};

/// Configuration for one `focal-lint check` run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Workspace root (the directory containing the root `Cargo.toml`).
    pub root: PathBuf,
    /// Path to the constants manifest, relative to `root`.
    pub manifest: PathBuf,
}

impl CheckConfig {
    /// Default configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> CheckConfig {
        CheckConfig {
            root: root.into(),
            manifest: PathBuf::from("data/constants.toml"),
        }
    }
}

/// Directories never scanned: build output, the vendored dependency
/// shims (third-party stand-ins, not FOCAL model code), VCS innards and
/// the lint ui-test fixtures (deliberate violations with their own
/// harness in `crates/lint/tests/ui.rs`).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Discovers, lexes and indexes every workspace `.rs` file.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths).map_err(|e| format!("walking {root:?}: {e}"))?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
        files.push(SourceFile::parse(rel, &text));
    }
    Ok(files)
}

/// Runs every rule (plus allow-directive validation) over the
/// workspace and returns diagnostics sorted by `file:line:col`.
pub fn check_workspace(config: &CheckConfig) -> Result<Vec<Diagnostic>, String> {
    let manifest_path = config.root.join(&config.manifest);
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("reading {manifest_path:?}: {e}"))?;
    let manifest = Manifest::parse(&manifest_text)
        .map_err(|e| format!("{}: {e}", config.manifest.display()))?;
    let files = load_workspace(&config.root)?;
    Ok(run_rules(&files, &manifest))
}

/// Pure core of [`check_workspace`], separated for fixture-based tests.
pub fn run_rules(files: &[SourceFile], manifest: &Manifest) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for file in files {
        // Malformed / unjustified allow directives are findings anywhere.
        diagnostics.extend(file.allows.problem_diagnostics(&file.path));
        // float-eq: all non-test code.
        diagnostics.extend(rules::float_eq::check(file));
        if rules::is_model_src(&file.path) {
            diagnostics.extend(rules::panic_free::check(file));
            diagnostics.extend(rules::units::check(file));
        }
        if rules::is_determinism_src(&file.path) {
            diagnostics.extend(rules::nondet_iteration::check(file));
            diagnostics.extend(rules::rng_hygiene::check(file));
        }
        if rules::is_confinement_src(&file.path) {
            diagnostics.extend(rules::confinement::check(file));
        }
    }
    diagnostics.extend(rules::constants::check(files, manifest));
    // Cross-file rules over the symbol table / call graph.
    let table = SymbolTable::build(files);
    diagnostics.extend(rules::reduction_order::check(files, &table));
    diagnostics.extend(rules::panic_free::check_transitive(files, &table));
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.name()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.name(),
        ))
    });
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Rule;

    fn manifest() -> Manifest {
        Manifest::parse(
            r#"
[[constant]]
name = "imec-scope2-node-growth"
value = 0.252
units = "fraction per node transition"
section = "§3.1"
literals = ["0.252", "1.252"]
sources = ["crates/wafer/src/fab.rs"]
"#,
        )
        .unwrap()
    }

    /// One seeded violation of each rule, checked end-to-end through the
    /// engine (acceptance criterion: each rule detects its violation).
    #[test]
    fn seeded_violations_of_every_rule_are_detected() {
        let files = vec![
            SourceFile::parse(
                "crates/core/src/seeded.rs",
                "pub fn chip_area(d: f64) -> f64 {\n\
                 \x20   let x = lookup().unwrap();\n\
                 \x20   if d == 0.0 { return x; }\n\
                 \x20   d * 1.252\n\
                 }\n",
            ),
            SourceFile::parse("crates/wafer/src/fab.rs", "pub const G: f64 = 0.252;\n"),
        ];
        let diags = run_rules(&files, &manifest());
        let rules_hit: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.rule.name()).collect();
        assert!(rules_hit.contains("float-eq"), "{diags:?}");
        assert!(rules_hit.contains("panic-freedom"), "{diags:?}");
        assert!(rules_hit.contains("constant-provenance"), "{diags:?}");
        assert!(rules_hit.contains("unit-hygiene"), "{diags:?}");
    }

    #[test]
    fn clean_fixture_yields_no_diagnostics() {
        let files = vec![
            SourceFile::parse(
                "crates/core/src/clean.rs",
                "/// The die area in mm².\n\
                 pub fn chip_area(d: f64) -> Result<f64> {\n\
                 \x20   if (d - 1.0).abs() < 1e-12 { return Ok(1.0); }\n\
                 \x20   Ok(d * d)\n\
                 }\n",
            ),
            SourceFile::parse("crates/wafer/src/fab.rs", "pub const G: f64 = 0.252;\n"),
        ];
        assert!(run_rules(&files, &manifest()).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_rules_scoped() {
        // Non-model crates get float-eq but not panic-freedom.
        let files = vec![
            SourceFile::parse(
                "crates/studies/src/a.rs",
                "pub fn f() { g().unwrap(); let b = x() == 0.0; }\n",
            ),
            SourceFile::parse("crates/wafer/src/fab.rs", "pub const G: f64 = 0.252;\n"),
        ];
        let diags = run_rules(&files, &manifest());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::FloatEq);
    }

    #[test]
    fn unjustified_allow_is_reported() {
        let files = vec![
            SourceFile::parse(
                "crates/core/src/a.rs",
                "// focal-lint: allow(float-eq)\npub fn f(x: f64) -> bool { x == 0.0 }\n",
            ),
            SourceFile::parse("crates/wafer/src/fab.rs", "pub const G: f64 = 0.252;\n"),
        ];
        let diags = run_rules(&files, &manifest());
        // The directive problem AND the (unsuppressed) float-eq finding.
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == Rule::AllowDirective));
        assert!(diags.iter().any(|d| d.rule == Rule::FloatEq));
    }
}
