//@ path: crates/studies/src/reduction_fixture.rs
// Violation: a float sum and a float fold merged by a home-grown
// parallel helper with no chunk-order guarantee.

pub fn total(xs: &[f64]) -> f64 {
    par_apply(xs, |chunk| chunk.iter().sum::<f64>())
}

pub fn weighted(xs: &[f64]) -> f64 {
    par_apply(xs, |chunk| chunk.iter().fold(0.0, |acc, x| acc + x))
}

fn par_apply(xs: &[f64], merge: impl Fn(&[f64]) -> f64) -> f64 {
    merge(xs)
}
