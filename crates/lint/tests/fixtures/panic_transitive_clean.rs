//@ path: crates/core/src/transitive_fixture.rs
//@ aux: panic_transitive_clean_aux.rs
// Clean: the same call chain, but the helper's unwrap carries a
// justified allow — an allow at the source clears every caller.

pub fn evaluate(x: f64) -> f64 {
    interp_shared(x) * 2.0
}
