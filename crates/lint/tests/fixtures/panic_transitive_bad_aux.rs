//@ path: crates/studies/src/interp_fixture.rs
// Aux for panic_transitive_bad: a non-model helper chain ending in an
// unwrap. The direct rule does not scan studies, so only the transitive
// pass can see this.

pub fn interp_shared(x: f64) -> f64 {
    lookup_row(x)
}

fn lookup_row(x: f64) -> f64 {
    table_for(x).unwrap()
}

fn table_for(_x: f64) -> Option<f64> {
    None
}
