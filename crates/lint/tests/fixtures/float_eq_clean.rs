//@ path: crates/perf/src/float_eq_fixture.rs
// Clean: tolerance compare and is_nan() instead of ==.

pub fn is_baseline(speedup: f64) -> bool {
    (speedup - 1.0).abs() < 1e-12
}

pub fn diverged(x: f64, nan_probe: f64) -> bool {
    x.abs() > 1e-12 || nan_probe.is_nan()
}
