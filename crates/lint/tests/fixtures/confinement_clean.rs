//@ path: crates/engine/src/confinement_fixture.rs
// Clean: the same primitives are fine inside crates/engine — confined
// concurrency is the engine's whole job.
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub static STEALS: AtomicU64 = AtomicU64::new(0);

pub fn collect(n: usize) -> Vec<(u32, f64)> {
    let collected: Mutex<Vec<(u32, f64)>> = Mutex::new(Vec::with_capacity(n));
    collected.into_inner().unwrap_or_default()
}
