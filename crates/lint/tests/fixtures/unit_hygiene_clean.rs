//@ path: crates/act/src/unit_fixture.rs
// Clean: the same fn with units stated in the doc comment.

/// Combines the per-die contributions, in kg CO₂e.
pub fn embodied_carbon(die: f64, packaging: f64) -> f64 {
    die + packaging
}
