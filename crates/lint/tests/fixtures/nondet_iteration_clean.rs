//@ path: crates/core/src/nondet_fixture.rs
// Clean: BTreeMap iterates in key order, so the collected rows (and any
// float accumulation over them) are stable across runs.
use std::collections::BTreeMap;

pub fn tally(xs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut by_key: BTreeMap<u32, f64> = BTreeMap::new();
    for (k, v) in xs {
        *by_key.entry(*k).or_insert(0.0) += v;
    }
    by_key.into_iter().collect()
}
