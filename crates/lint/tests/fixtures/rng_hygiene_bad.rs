//@ path: crates/wafer/src/rng_fixture.rs
// Violations: entropy seeding, time seeding, and a parallel closure
// seeding its RNG without the chunk index.

pub fn sample_entropy() -> f64 {
    let mut rng = StdRng::from_entropy();
    rng.gen()
}

pub fn sample_clock() -> f64 {
    let seed = SystemTime::now().duration_since(UNIX_EPOCH).as_secs();
    let mut rng = StdRng::seed_from_u64(seed_mix(SystemTime::now()));
    rng.gen()
}

pub fn sample_chunks(engine: &Engine, seed: u64) -> Vec<f64> {
    engine.par_chunk_map(8, |chunk| {
        let mut rng = StdRng::seed_from_u64(seed);
        draw(&mut rng, chunk)
    })
}
