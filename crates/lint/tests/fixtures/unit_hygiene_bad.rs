//@ path: crates/act/src/unit_fixture.rs
// Violation: a quantity-named public fn with bare f64s and no units in
// its docs.

/// Combines the per-die contributions.
pub fn embodied_carbon(die: f64, packaging: f64) -> f64 {
    die + packaging
}
