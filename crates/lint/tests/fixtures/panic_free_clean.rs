//@ path: crates/cache/src/panic_fixture.rs
// Clean: the same lookup propagating a Result.

pub fn lookup(xs: &[f64]) -> Result<f64, ModelError> {
    let first = xs.first().copied().ok_or(ModelError::EmptyInput)?;
    if first < 0.0 {
        return Err(ModelError::NegativeCacheSize);
    }
    Ok(first)
}
