//@ path: crates/studies/src/stale_allow_fixture.rs
// Clean: a live rule id with a justification.

// focal-lint: allow(nondet-iteration) -- membership probe only; order never observed
pub fn f(s: &HashSet<u32>) -> bool {
    s.contains(&1)
}
