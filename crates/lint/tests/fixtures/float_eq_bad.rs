//@ path: crates/perf/src/float_eq_fixture.rs
// Violation: exact float comparison in non-test code.

pub fn is_baseline(speedup: f64) -> bool {
    speedup == 1.0
}

pub fn diverged(x: f64, nan_probe: f64) -> bool {
    x != 0.0 || nan_probe == f64::NAN
}
