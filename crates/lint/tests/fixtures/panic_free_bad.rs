//@ path: crates/cache/src/panic_fixture.rs
// Violation: direct panics in model-crate code.

pub fn lookup(xs: &[f64]) -> f64 {
    let first = xs.first().copied().unwrap();
    if first < 0.0 {
        panic!("negative cache size");
    }
    xs[0]
}
