//@ path: crates/studies/src/stale_allow_fixture.rs
// Violation: the allow names a rule id that does not exist (renamed or
// removed) — a stale suppression that silently protects nothing.

pub fn f(x: f64) -> f64 {
    // focal-lint: allow(determinism) -- left over from an old rule name
    x * 2.0
}
