//@ path: crates/studies/src/confinement_fixture.rs
// Violation: concurrency primitives outside crates/engine.
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub static PROGRESS: AtomicU64 = AtomicU64::new(0);

pub fn run_all(figures: Vec<Figure>) -> Vec<Output> {
    let results = Mutex::new(Vec::new());
    let handle = thread::spawn(move || evaluate(figures));
    handle.join().unwrap_or_default();
    results.into_inner().unwrap_or_default()
}
