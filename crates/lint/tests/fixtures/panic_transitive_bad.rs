//@ path: crates/core/src/transitive_fixture.rs
//@ aux: panic_transitive_bad_aux.rs
// Violation: model code reaching a panic through a call chain that
// leaves the model crates (the panic itself is two hops away).

pub fn evaluate(x: f64) -> f64 {
    interp_shared(x) * 2.0
}
