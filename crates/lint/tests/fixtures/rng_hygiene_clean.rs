//@ path: crates/wafer/src/rng_fixture.rs
// Clean: the run seed is explicit, and each parallel chunk derives its
// stream from `chunk_seed(seed, chunk)`.

pub fn sample_serial(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

pub fn sample_chunks(engine: &Engine, seed: u64) -> Vec<f64> {
    engine.par_chunk_map(8, |chunk| {
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, chunk));
        draw(&mut rng, chunk)
    })
}
