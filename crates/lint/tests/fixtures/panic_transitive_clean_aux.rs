//@ path: crates/studies/src/interp_fixture.rs
// Aux for panic_transitive_clean: the unwrap is justified at its
// source, so callers inherit the exemption.

pub fn interp_shared(x: f64) -> f64 {
    lookup_row(x)
}

fn lookup_row(x: f64) -> f64 {
    // focal-lint: allow(panic-freedom) -- table is populated at compile time
    table_for(x).unwrap()
}

fn table_for(_x: f64) -> Option<f64> {
    Some(1.0)
}
