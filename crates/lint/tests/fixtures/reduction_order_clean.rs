//@ path: crates/studies/src/reduction_fixture.rs
// Clean: the same reductions routed through focal-engine's blessed,
// chunk-order-merged operations.

pub fn total(engine: &Engine, xs: &[f64]) -> f64 {
    engine.par_reduce(xs, |chunk| chunk.iter().sum::<f64>(), 0.0, |a, b| a + b)
}

pub fn weighted(engine: &Engine, xs: &[f64]) -> f64 {
    engine.par_map(xs, |x| x * 2.0).iter().fold(0.0, |acc, x| acc + x)
}
