//@ path: crates/core/src/nondet_fixture.rs
// Violation: hash-ordered collections in a determinism-scoped crate.
use std::collections::HashMap;

pub fn tally(xs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut by_key: HashMap<u32, f64> = HashMap::new();
    for (k, v) in xs {
        *by_key.entry(*k).or_insert(0.0) += v;
    }
    by_key.into_iter().collect()
}
