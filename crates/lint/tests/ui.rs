//! Fixture-based ui tests: every rule has at least one violating and
//! one clean fixture under `tests/fixtures/`, each paired with a
//! `.expected` file holding exactly the diagnostics it must produce
//! (one `rule file:line:col message` line per finding; empty = clean).
//!
//! Fixture grammar (lexed as ordinary comments, so they stay valid
//! input to the linter):
//!
//! * `//@ path: <virtual path>` — required; the repo-relative path the
//!   fixture pretends to live at, which is what selects rule scopes.
//! * `//@ aux: <file>` — optional, repeatable; another fixture lexed
//!   into the same run (for cross-file rules). Aux fixtures are named
//!   `*_aux.rs` and are not run as cases themselves.
//!
//! Regenerate expectations after an intentional diagnostic change with
//! `UPDATE_EXPECTED=1 cargo test -p focal-lint --test ui`.

use focal_lint::{run_rules, Manifest, SourceFile};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Reads a fixture and returns its `//@ path:` virtual path and `//@
/// aux:` references.
fn directives(text: &str, fixture: &Path) -> (String, Vec<String>) {
    let mut path = None;
    let mut auxes = Vec::new();
    for line in text.lines() {
        if let Some(p) = line.strip_prefix("//@ path:") {
            path = Some(p.trim().to_string());
        } else if let Some(a) = line.strip_prefix("//@ aux:") {
            auxes.push(a.trim().to_string());
        }
    }
    let path = path.unwrap_or_else(|| panic!("{fixture:?} is missing its `//@ path:` header"));
    (path, auxes)
}

fn load(fixture: &Path) -> Vec<SourceFile> {
    let text = std::fs::read_to_string(fixture).unwrap();
    let (vpath, auxes) = directives(&text, fixture);
    let mut files = vec![SourceFile::parse(vpath, &text)];
    for aux in auxes {
        let aux_path = fixtures_dir().join(&aux);
        let aux_text = std::fs::read_to_string(&aux_path)
            .unwrap_or_else(|e| panic!("aux fixture {aux_path:?}: {e}"));
        let (aux_vpath, aux_auxes) = directives(&aux_text, &aux_path);
        assert!(aux_auxes.is_empty(), "aux fixtures must not nest ({aux})");
        files.push(SourceFile::parse(aux_vpath, &aux_text));
    }
    files
}

fn render(files: &[SourceFile]) -> String {
    let diags = run_rules(files, &Manifest::default());
    let mut out = String::new();
    for d in &diags {
        out.push_str(&format!(
            "{} {}:{}:{} {}\n",
            d.rule, d.file, d.line, d.col, d.message
        ));
    }
    out
}

#[test]
fn fixture_corpus_matches_expected_diagnostics() {
    let dir = fixtures_dir();
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {dir:?}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "rs")
                && !p
                    .file_stem()
                    .is_some_and(|s| s.to_string_lossy().ends_with("_aux"))
        })
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no fixtures found in {dir:?}");

    let update = std::env::var_os("UPDATE_EXPECTED").is_some();
    let mut failures = Vec::new();
    for case in &cases {
        let actual = render(&load(case));
        let expected_path = case.with_extension("expected");
        if update {
            std::fs::write(&expected_path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("{expected_path:?}: {e} (run with UPDATE_EXPECTED=1 to create)")
        });
        if actual != expected {
            failures.push(format!(
                "== {} ==\n--- expected ---\n{expected}--- actual ---\n{actual}",
                case.file_name().unwrap().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} fixture(s) diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Every rule id appears in at least one non-empty `.expected` file —
/// i.e. the corpus actually exercises the whole rule set (the clean
/// fixtures are the negative cases).
#[test]
fn corpus_covers_every_rule() {
    let dir = fixtures_dir();
    let mut hit: std::collections::BTreeSet<String> = Default::default();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|x| x == "expected") {
            for line in std::fs::read_to_string(&p).unwrap().lines() {
                if let Some(rule) = line.split_whitespace().next() {
                    hit.insert(rule.to_string());
                }
            }
        }
    }
    for rule in focal_lint::Rule::ALL {
        // constant-provenance needs the real manifest; it is pinned by
        // the golden workspace audit instead of a fixture.
        if *rule == focal_lint::Rule::ConstantProvenance {
            continue;
        }
        assert!(
            hit.contains(rule.name()),
            "no violating fixture exercises `{rule}` (corpus hits: {hit:?})"
        );
    }
}
