//! Golden tests for the real `data/constants.toml`: the manifest must
//! round-trip through the serializer and must stay consistent with the
//! constants actually hard-coded in the model crates.

use focal_lint::engine::load_workspace;
use focal_lint::rules::constants;
use focal_lint::Manifest;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the repo root")
        .to_path_buf()
}

fn real_manifest() -> (String, Manifest) {
    let path = repo_root().join("data/constants.toml");
    let text = std::fs::read_to_string(&path).expect("data/constants.toml exists");
    let manifest = Manifest::parse(&text).expect("manifest parses");
    (text, manifest)
}

#[test]
fn manifest_round_trips_through_the_serializer() {
    let (_, manifest) = real_manifest();
    let serialized = manifest.to_toml();
    let reparsed = Manifest::parse(&serialized).expect("canonical form parses");
    assert_eq!(
        manifest.constants.len(),
        reparsed.constants.len(),
        "round trip must keep every constant"
    );
    for (a, b) in manifest.constants.iter().zip(&reparsed.constants) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "{}", a.name);
        assert_eq!(a.units, b.units, "{}", a.name);
        assert_eq!(a.section, b.section, "{}", a.name);
        assert_eq!(a.literals, b.literals, "{}", a.name);
        assert_eq!(a.context, b.context, "{}", a.name);
        assert_eq!(a.sources, b.sources, "{}", a.name);
    }
    // And the canonical form is a fixed point.
    assert_eq!(serialized, reparsed.to_toml());
}

#[test]
fn manifest_registers_the_imec_growth_constants_and_pollack_exponent() {
    let (_, manifest) = real_manifest();
    let get = |name: &str| {
        manifest
            .constants
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("constant `{name}` missing from data/constants.toml"))
    };

    // The Imec growth rates the paper's §3.1 trends are built on.
    let cases = [
        (
            "imec-scope2-annual-growth",
            0.119,
            "crates/wafer/src/fab.rs",
        ),
        (
            "imec-scope1-annual-growth",
            0.093,
            "crates/wafer/src/fab.rs",
        ),
        ("imec-scope2-node-growth", 0.252, "crates/wafer/src/fab.rs"),
        ("imec-scope1-node-growth", 0.195, "crates/wafer/src/fab.rs"),
        ("pollack-exponent", 0.5, "crates/perf/src/pollack.rs"),
    ];
    for (name, value, source) in cases {
        let c = get(name);
        assert_eq!(c.value, value, "{name}");
        assert!(
            c.sources.iter().any(|s| s == source),
            "{name} must cite {source}"
        );
        // …and the cited source must really contain the value: zero drift
        // diagnostics when auditing the registered module.
        assert!(
            repo_root().join(source).is_file(),
            "{name}: source {source} is gone"
        );
    }
}

#[test]
fn manifest_covers_every_constant_occurrence_in_wafer_and_scaling() {
    // The full audit over the real workspace must be clean, which pins
    // both directions: every registered source still carries its value
    // and no unregistered copy of a paper constant hides anywhere in
    // crates/wafer or crates/scaling (or the rest of the tree).
    let (_, manifest) = real_manifest();
    let files = load_workspace(&repo_root()).expect("workspace loads");
    assert!(
        files
            .iter()
            .any(|f| f.path.starts_with("crates/wafer/src/")),
        "workspace walk must reach crates/wafer"
    );
    assert!(
        files
            .iter()
            .any(|f| f.path.starts_with("crates/scaling/src/")),
        "workspace walk must reach crates/scaling"
    );
    let diags = constants::check(&files, &manifest);
    assert!(
        diags.is_empty(),
        "constants audit of the real tree must be clean:\n{diags:#?}"
    );
}
