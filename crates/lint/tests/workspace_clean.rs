//! The determinism regression test: the whole workspace must be clean
//! under focal-lint with every rule (including the determinism family
//! and transitive panic-freedom) enabled. This is the static half of
//! the bit-identical guarantee — the dynamic half is the suite's
//! 1-vs-4-thread byte-diff in CI.

use focal_lint::{check_workspace, CheckConfig};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the repo root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_all_rules() {
    let diags = check_workspace(&CheckConfig::new(repo_root())).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "focal-lint found {} finding(s) in the workspace:\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!(
                "  [{}] {}:{}:{} {}",
                d.rule, d.file, d.line, d.col, d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
