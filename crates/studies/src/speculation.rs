//! §5.7 — speculation: branch prediction (Figure 8, Finding #12) and
//! precise runahead (Finding #13).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{DesignPoint, E2oWeight, Ncf, Result, Scenario, SweepSeries};
use focal_uarch::{BranchPredictor, PreciseRunahead};

/// Number of predictor-area grid points for Figure 8 (0 % to 8 %).
pub const AREA_STEPS: usize = 17;

/// The largest predictor area Figure 8 sweeps (8 % of the core).
pub const MAX_PREDICTOR_AREA: f64 = 0.08;

/// The speculation study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationStudy {
    /// The branch-predictor data point (paper: Parikh hybrid).
    pub predictor: BranchPredictor,
    /// The runahead data point (paper: PRE).
    pub runahead: PreciseRunahead,
}

impl Default for SpeculationStudy {
    fn default() -> Self {
        SpeculationStudy {
            predictor: BranchPredictor::PARIKH_HYBRID,
            runahead: PreciseRunahead::PAPER,
        }
    }
}

impl SpeculationStudy {
    /// One NCF-vs-predictor-area curve (area fraction on the x-axis).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn curve(&self, scenario: Scenario, alpha: E2oWeight) -> Result<SweepSeries> {
        self.curve_grid(scenario, alpha, AREA_STEPS, MAX_PREDICTOR_AREA)
    }

    /// [`SpeculationStudy::curve`] over an explicit predictor-area grid.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points or an area
    /// outside the predictor model's domain.
    pub fn curve_grid(
        &self,
        scenario: Scenario,
        alpha: E2oWeight,
        steps: usize,
        max_area: f64,
    ) -> Result<SweepSeries> {
        if steps < 2 {
            return Err(focal_core::ModelError::Inconsistent {
                constraint: "a predictor-area sweep needs at least two grid points",
            });
        }
        let base = DesignPoint::reference();
        let mut s = SweepSeries::new(scenario.label());
        for i in 0..steps {
            let area = max_area * i as f64 / (steps - 1) as f64;
            let dp = self.predictor.design_point(area)?;
            let ncf = Ncf::evaluate(&dp, &base, scenario, alpha);
            s.push_raw(format!("{:.1}%", area * 100.0), area, ncf.value());
        }
        Ok(s)
    }

    /// Builds Figure 8: two panels (embodied/operational dominated), each
    /// with fixed-work and fixed-time NCF curves over predictor area
    /// 0–8 %.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn figure8(&self) -> Result<Figure> {
        self.figure8_grid(
            AREA_STEPS,
            MAX_PREDICTOR_AREA,
            &crate::labels::DEFAULT_WEIGHTS,
        )
    }

    /// [`SpeculationStudy::figure8`] over an explicit predictor-area grid
    /// and α regimes — the scenario compiler's entry point.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points or an area
    /// outside the predictor model's domain.
    pub fn figure8_grid(
        &self,
        steps: usize,
        max_area: f64,
        alphas: &[E2oWeight],
    ) -> Result<Figure> {
        let mut panels = Vec::new();
        for &alpha in alphas {
            let name = crate::labels::weight_label_long(alpha);
            panels.push(Panel::new(
                format!("({name})"),
                vec![
                    self.curve_grid(Scenario::FixedWork, alpha, steps, max_area)?,
                    self.curve_grid(Scenario::FixedTime, alpha, steps, max_area)?,
                ],
            ));
        }
        Ok(Figure::new(
            "fig8",
            "Branch prediction: NCF vs. predictor chip area (0-8% of the core)",
            panels,
        ))
    }

    /// Finding #12: branch prediction is weakly sustainable when
    /// operational emissions dominate and less sustainable when embodied
    /// emissions dominate (beyond ≈ 2 % predictor area).
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding12(&self) -> Result<Finding> {
        let base = DesignPoint::reference();
        let ncf = |area: f64, scenario, alpha| -> Result<f64> {
            Ok(Ncf::evaluate(&self.predictor.design_point(area)?, &base, scenario, alpha).value())
        };

        // Op dominated, fixed-work: saves at every size in [0, 8%].
        let mut op_fw_always_saves = true;
        // Fixed-time: loses at every size under both regimes.
        let mut ft_always_loses = true;
        for i in 0..=8 {
            let a = i as f64 / 100.0;
            op_fw_always_saves &=
                ncf(a, Scenario::FixedWork, E2oWeight::OPERATIONAL_DOMINATED)? < 1.0;
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                ft_always_loses &= ncf(a, Scenario::FixedTime, alpha)? > 1.0;
            }
        }
        // Embodied dominated, fixed-work: the break-even predictor size.
        // NCF = 0.8(1+a) + 0.2·0.93 = 1 ⇒ a = (1 − 0.986)/0.8 = 1.75%.
        let mut break_even = 0.0;
        for i in 0..=80 {
            let a = i as f64 / 1000.0;
            if ncf(a, Scenario::FixedWork, E2oWeight::EMBODIED_DOMINATED)? > 1.0 {
                break;
            }
            break_even = a;
        }

        Ok(Finding {
            id: 12,
            claim: "Branch prediction is weakly sustainable when operational emissions dominate, \
                    less sustainable when embodied emissions dominate",
            metrics: vec![Metric::new(
                "max sustainable predictor area, α=0.8 fixed-work (%)",
                2.0,
                break_even * 100.0,
                0.4,
            )],
            qualitative_holds: op_fw_always_saves && ft_always_loses,
            note: Some(
                "The paper's Figure 8 caption puts the embodied-dominated break-even at 'more \
                 than 2% of core chip area'; the closed-form threshold with Parikh's numbers \
                 is 1.75%.",
            ),
        })
    }

    /// Finding #13: precise runahead is weakly sustainable —
    /// `NCF_fw,0.2 = 0.95`, `NCF_ft,0.2 = 1.23`, `NCF_fw,0.8 = 0.99`,
    /// `NCF_ft,0.8 = 1.06`.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding13(&self) -> Result<Finding> {
        let base = DesignPoint::reference();
        let pre = self.runahead.design_point()?;
        let val = |scenario, alpha: f64| -> Result<f64> {
            Ok(Ncf::evaluate(&pre, &base, scenario, E2oWeight::new(alpha)?).value())
        };
        let fw_02 = val(Scenario::FixedWork, 0.2)?;
        let ft_02 = val(Scenario::FixedTime, 0.2)?;
        let fw_08 = val(Scenario::FixedWork, 0.8)?;
        let ft_08 = val(Scenario::FixedTime, 0.8)?;
        let metrics = vec![
            Metric::new("NCF_fw,0.2", 0.95, fw_02, 0.01),
            Metric::new("NCF_ft,0.2", 1.23, ft_02, 0.01),
            Metric::new("NCF_fw,0.8", 0.99, fw_08, 0.01),
            Metric::new("NCF_ft,0.8", 1.06, ft_08, 0.01),
        ];
        let qualitative_holds = fw_02 < 1.0 && ft_02 > 1.0 && fw_08 < 1.0 && ft_08 > 1.0;
        Ok(Finding {
            id: 13,
            claim: "Runahead execution is weakly sustainable",
            metrics,
            qualitative_holds,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> SpeculationStudy {
        SpeculationStudy::default()
    }

    #[test]
    fn figure8_panels_and_ranges() {
        let fig = study().figure8().unwrap();
        assert_eq!(fig.panels.len(), 2);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 2);
            for s in &p.series {
                assert_eq!(s.points.len(), AREA_STEPS);
                assert_eq!(s.points[0].performance, 0.0);
                assert!((s.points.last().unwrap().performance - 0.08).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn figure8_fixed_work_curves_slope_up_with_area() {
        let fig = study().figure8().unwrap();
        for p in &fig.panels {
            let fw = &p.series[0];
            for w in fw.points.windows(2) {
                assert!(w[1].ncf > w[0].ncf);
            }
        }
    }

    #[test]
    fn figure8_operational_fixed_work_stays_below_one() {
        let fig = study().figure8().unwrap();
        let op_fw = &fig.panels[1].series[0];
        for pt in &op_fw.points {
            assert!(pt.ncf < 1.0, "area {}: {}", pt.performance, pt.ncf);
        }
    }

    #[test]
    fn finding12_reproduces() {
        let f = study().finding12().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn finding13_reproduces() {
        let f = study().finding13().unwrap();
        assert!(f.reproduces(), "{f}");
    }
}
