//! The paper's headline taxonomy: every archetypal mechanism classified
//! strongly / weakly / less sustainable, computed live from the models
//! (the abstract's "strongly sustainable (e.g., low-complexity core
//! microarchitecture, multicore, voltage scaling) … weakly sustainable
//! (e.g., heterogeneity, speculation) … not sustainable (e.g.,
//! turboboosting, dark silicon)").

use focal_core::{classify, DesignPoint, E2oWeight, Result, Sustainability};
use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
use focal_report::Table;
use focal_scaling::{DieShrink, ScalingRegime};
use focal_uarch::{
    Accelerator, CoreMicroarch, DarkSiliconSoc, DvfsCore, PipelineGating, PreciseRunahead,
    TurboBoost,
};

/// One taxonomy row: a mechanism with its verdicts under both α regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Paper section.
    pub section: &'static str,
    /// Verdict when the embodied footprint dominates (α = 0.8).
    pub embodied_dominated: Sustainability,
    /// Verdict when the operational footprint dominates (α = 0.2).
    pub operational_dominated: Sustainability,
    /// The verdict the paper implies for the embodied-dominated regime.
    pub paper_embodied: Sustainability,
    /// The verdict the paper implies for the operational-dominated
    /// regime. (For most mechanisms both regimes agree; acceleration is
    /// the explicitly regime-dependent case — Finding #6.)
    pub paper_operational: Sustainability,
}

impl TaxonomyRow {
    /// `true` if both regimes' computed verdicts match the paper's.
    pub fn matches_paper(&self) -> bool {
        self.embodied_dominated == self.paper_embodied
            && self.operational_dominated == self.paper_operational
    }

    /// The less favourable of the two verdicts.
    pub fn worst(&self) -> Sustainability {
        use Sustainability::*;
        match (self.embodied_dominated, self.operational_dominated) {
            (Less, _) | (_, Less) => Less,
            (Weakly, _) | (_, Weakly) => Weakly,
            (Indifferent, _) | (_, Indifferent) => Indifferent,
            (Strongly, Strongly) => Strongly,
        }
    }
}

/// Computes the full taxonomy from the models.
///
/// # Errors
///
/// Never fails for the built-in configurations.
pub fn taxonomy() -> Result<Vec<TaxonomyRow>> {
    let reference = DesignPoint::reference();
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;
    let f_high = ParallelFraction::new(0.95)?;

    let verdicts = |x: &DesignPoint, y: &DesignPoint| {
        (
            classify(x, y, E2oWeight::EMBODIED_DOMINATED).class,
            classify(x, y, E2oWeight::OPERATIONAL_DOMINATED).class,
        )
    };

    let mut rows = Vec::new();
    let mut push = |mechanism,
                    section,
                    (e, o): (Sustainability, Sustainability),
                    (pe, po): (Sustainability, Sustainability)| {
        rows.push(TaxonomyRow {
            mechanism,
            section,
            embodied_dominated: e,
            operational_dominated: o,
            paper_embodied: pe,
            paper_operational: po,
        });
    };

    // Multicore vs equal-area big single core.
    let mc = SymmetricMulticore::unit_cores(32)?.design_point(f_high, gamma, pollack)?;
    let big = SymmetricMulticore::big_core(32.0)?.design_point(f_high, gamma, pollack)?;
    push(
        "multicore (vs big core)",
        "§5.1",
        verdicts(&mc, &big),
        (Sustainability::Strongly, Sustainability::Strongly),
    );

    // Heterogeneity vs same-size symmetric chip (Figure-4 normalization:
    // both against the 1-BCE reference; the weakly verdict comes from the
    // fixed-work/fixed-time split at f = 0.8).
    let f_mid = ParallelFraction::new(0.8)?;
    let asym =
        focal_perf::AsymmetricMulticore::new(32.0, 4.0)?.design_point(f_mid, gamma, pollack)?;
    let sym = SymmetricMulticore::unit_cores(32)?.design_point(f_mid, gamma, pollack)?;
    let asym_rel = asym.normalized_to(&sym)?;
    push(
        "heterogeneity (vs symmetric)",
        "§5.2",
        verdicts(&asym_rel, &reference),
        (Sustainability::Weakly, Sustainability::Weakly),
    );

    // Acceleration at moderate (25%) utilization.
    let acc = Accelerator::HAMEED_H264.design_point(0.25)?;
    push(
        "hw acceleration @25% use",
        "§5.3",
        verdicts(&acc, &reference),
        // Finding #6: regime-dependent — below the ~30% break-even under
        // embodied dominance, clearly winning under operational dominance.
        (Sustainability::Less, Sustainability::Strongly),
    );

    // Dark silicon at 25% utilization.
    let dark = DarkSiliconSoc::PAPER.design_point(0.25)?;
    push(
        "dark silicon @25% use",
        "§5.4",
        verdicts(&dark, &reference),
        (Sustainability::Less, Sustainability::Less),
    );

    // Caching: 16 MiB vs 1 MiB.
    let caching = focal_cache::MemoryBoundWorkload::paper()?;
    let big_cache = caching.design_point(focal_cache::CacheSize::from_mib(16.0)?)?;
    let base_cache = caching.design_point(focal_cache::CacheSize::from_mib(1.0)?)?;
    push(
        "caching (16 MiB LLC)",
        "§5.5",
        verdicts(&big_cache, &base_cache),
        (Sustainability::Less, Sustainability::Less),
    );

    // Core microarchitecture: FSC vs OoO (the paper's strong example).
    let fsc = CoreMicroarch::ForwardSlice.design_point()?;
    let ooo = CoreMicroarch::OutOfOrder.design_point()?;
    push(
        "FSC core (vs OoO)",
        "§5.6",
        verdicts(&fsc, &ooo),
        (Sustainability::Strongly, Sustainability::Strongly),
    );

    // Speculation: runahead.
    let pre = PreciseRunahead::PAPER.design_point()?;
    push(
        "speculation (PRE)",
        "§5.7",
        verdicts(&pre, &reference),
        (Sustainability::Weakly, Sustainability::Weakly),
    );

    // DVFS down-scaling.
    let dvfs = DvfsCore::default_core();
    let scaled = dvfs.design_point(0.8)?;
    push(
        "DVFS (scale down)",
        "§5.8",
        verdicts(&scaled, &dvfs.nominal_without_dvfs()?),
        (Sustainability::Strongly, Sustainability::Strongly),
    );

    // Turbo boost.
    let turbo = TurboBoost::default_turbo().design_point(1.2)?;
    push(
        "turbo boost",
        "§5.8",
        verdicts(&turbo, &reference),
        (Sustainability::Less, Sustainability::Less),
    );

    // Pipeline gating.
    let gated = PipelineGating::PAPER.design_point()?;
    push(
        "pipeline gating",
        "§5.9",
        verdicts(&gated, &reference),
        (Sustainability::Strongly, Sustainability::Strongly),
    );

    // Die shrink.
    let (new, old) = DieShrink::next_node(ScalingRegime::PostDennard).design_points()?;
    push(
        "die shrink",
        "§6",
        verdicts(&new, &old),
        (Sustainability::Strongly, Sustainability::Strongly),
    );

    Ok(rows)
}

/// Renders the taxonomy as a table.
///
/// # Errors
///
/// Never fails for the built-in configurations.
pub fn taxonomy_table() -> Result<Table> {
    let mut table = Table::new(vec![
        "mechanism",
        "section",
        "α=0.8 verdict",
        "α=0.2 verdict",
        "paper (α=0.8 / α=0.2)",
        "match",
    ]);
    for row in taxonomy()? {
        table.row(vec![
            row.mechanism.to_string(),
            row.section.to_string(),
            row.embodied_dominated.to_string(),
            row.operational_dominated.to_string(),
            format!("{} / {}", row.paper_embodied, row.paper_operational),
            if row.matches_paper() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_eleven_mechanisms() {
        let rows = taxonomy().unwrap();
        assert_eq!(rows.len(), 11);
    }

    /// The headline check: every mechanism's computed category matches
    /// the paper's abstract.
    #[test]
    fn every_row_matches_the_paper() {
        for row in taxonomy().unwrap() {
            assert!(
                row.matches_paper(),
                "{}: computed {:?}/{:?}, paper says {:?}/{:?}",
                row.mechanism,
                row.embodied_dominated,
                row.operational_dominated,
                row.paper_embodied,
                row.paper_operational
            );
        }
    }

    #[test]
    fn worst_ordering_is_pessimistic() {
        use Sustainability::*;
        let mk = |e, o| TaxonomyRow {
            mechanism: "t",
            section: "t",
            embodied_dominated: e,
            operational_dominated: o,
            paper_embodied: e,
            paper_operational: o,
        };
        assert_eq!(mk(Strongly, Strongly).worst(), Strongly);
        assert_eq!(mk(Strongly, Weakly).worst(), Weakly);
        assert_eq!(mk(Weakly, Less).worst(), Less);
        assert_eq!(mk(Strongly, Less).worst(), Less);
        assert!(mk(Strongly, Less).matches_paper());
    }

    #[test]
    fn table_renders_all_rows() {
        let t = taxonomy_table().unwrap();
        assert_eq!(t.len(), 11);
        assert!(!t.to_text().contains(" NO"));
    }
}
