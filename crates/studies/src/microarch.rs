//! §5.6 — core microarchitecture (Figure 7, Findings #9–#11).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{
    classify, DesignPoint, E2oWeight, Ncf, Result, Scenario, Sustainability, SweepSeries,
};
use focal_uarch::CoreMicroarch;

/// The microarchitecture study: InO vs. FSC vs. OoO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MicroarchStudy;

impl MicroarchStudy {
    /// Builds Figure 7: four panels (embodied/operational × fixed-work/
    /// fixed-time), each plotting the three cores' NCF (vs. InO) against
    /// their performance.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data.
    pub fn figure7(&self) -> Result<Figure> {
        self.figure7_weights(&crate::labels::DEFAULT_WEIGHTS)
    }

    /// [`MicroarchStudy::figure7`] over explicit α regimes — the scenario
    /// compiler's entry point.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data.
    pub fn figure7_weights(&self, alphas: &[E2oWeight]) -> Result<Figure> {
        let ino = CoreMicroarch::InOrder.design_point()?;
        let mut panels = Vec::new();
        for &alpha in alphas {
            let alpha_name = crate::labels::weight_label_short(alpha);
            for scenario in Scenario::ALL {
                let mut s = SweepSeries::new("cores");
                for core in CoreMicroarch::ALL {
                    let dp = core.design_point()?;
                    s.push_design(core.label(), &dp, &ino, scenario, alpha);
                }
                panels.push(Panel::new(format!("({alpha_name}, {scenario})"), vec![s]));
            }
        }
        Ok(Figure::new(
            "fig7",
            "InO vs. FSC vs. OoO: NCF (vs. InO) against performance",
            panels,
        ))
    }

    /// Finding #9: OoO cores are less sustainable than InO cores (and
    /// inversely, InO is strongly sustainable vs. OoO).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data.
    pub fn finding9(&self) -> Result<Finding> {
        let ooo = CoreMicroarch::OutOfOrder.design_point()?;
        let ino = CoreMicroarch::InOrder.design_point()?;
        let mut holds = true;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            holds &= classify(&ooo, &ino, alpha).class == Sustainability::Less;
            holds &= classify(&ino, &ooo, alpha).class == Sustainability::Strongly;
        }
        let ncf = Ncf::evaluate(
            &ooo,
            &ino,
            Scenario::FixedWork,
            E2oWeight::EMBODIED_DOMINATED,
        );
        Ok(Finding {
            id: 9,
            claim: "OoO cores are less sustainable than InO cores",
            metrics: vec![Metric::new(
                "NCF_fw,0.8 (OoO vs InO) > 1",
                1.377, // 0.8·1.39 + 0.2·(2.32/1.75), read off Figure 7(a)
                ncf.value(),
                0.01,
            )],
            qualitative_holds: holds,
            note: None,
        })
    }

    /// Finding #10: FSC is (very close to) strongly sustainable compared
    /// to InO — it wins under fixed-work and is only barely above 1 under
    /// fixed-time.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data.
    pub fn finding10(&self) -> Result<Finding> {
        let fsc = CoreMicroarch::ForwardSlice.design_point()?;
        let ino = CoreMicroarch::InOrder.design_point()?;
        let mut fw_wins = true;
        let mut ft_barely = true;
        let mut worst_ft: f64 = 0.0;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            let fw = Ncf::evaluate(&fsc, &ino, Scenario::FixedWork, alpha).value();
            let ft = Ncf::evaluate(&fsc, &ino, Scenario::FixedTime, alpha).value();
            fw_wins &= fw < 1.0;
            ft_barely &= ft < 1.02;
            worst_ft = worst_ft.max(ft);
        }
        Ok(Finding {
            id: 10,
            claim: "A low-complexity core such as FSC is (very close to being) strongly sustainable vs. InO",
            metrics: vec![Metric::new(
                "worst-case NCF_ft (FSC vs InO) barely above 1",
                1.01,
                worst_ft,
                0.01,
            )],
            qualitative_holds: fw_wins && ft_barely,
            note: None,
        })
    }

    /// Finding #11: FSC vs. OoO — footprint 32–53 % smaller at a 6.3 %
    /// performance cost.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in data.
    pub fn finding11(&self) -> Result<Finding> {
        let fsc = CoreMicroarch::ForwardSlice.design_point()?;
        let ooo = CoreMicroarch::OutOfOrder.design_point()?;
        let perf_loss = (1.0 - fsc.performance().get() / ooo.performance().get()) * 100.0;
        // The paper's "32% to 53%" spans the center weights (min at
        // α = 0.8, fixed-work) through the error-bar extreme (α = 0.1,
        // fixed-time).
        let mut min_saving = f64::INFINITY;
        let mut max_saving = f64::NEG_INFINITY;
        let mut all_below_one = true;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            for scenario in Scenario::ALL {
                let ncf = Ncf::evaluate(&fsc, &ooo, scenario, alpha);
                all_below_one &= ncf.value() < 1.0;
                min_saving = min_saving.min(ncf.saving_percent());
            }
        }
        for range in [
            focal_core::E2oRange::EMBODIED_DOMINATED,
            focal_core::E2oRange::OPERATIONAL_DOMINATED,
        ] {
            for scenario in Scenario::ALL {
                let band = focal_core::NcfBand::evaluate(&fsc, &ooo, scenario, range);
                max_saving = max_saving.max((1.0 - band.min()) * 100.0);
            }
        }
        Ok(Finding {
            id: 11,
            claim: "FSC is strongly sustainable compared to OoO",
            metrics: vec![
                Metric::new("perf degradation FSC vs OoO (%)", 6.3, perf_loss, 0.2),
                Metric::new("min footprint saving (%)", 32.0, min_saving, 1.0),
                Metric::new(
                    "max footprint saving (incl. α error bars) (%)",
                    53.0,
                    max_saving,
                    1.0,
                ),
            ],
            qualitative_holds: all_below_one,
            note: None,
        })
    }
}

/// Convenience: the Pareto view of the three cores at a given scenario and
/// weight (the "bottom-right is optimal" reading of Figure 7).
///
/// # Errors
///
/// Never fails for the built-in data.
pub fn core_pareto(scenario: Scenario, alpha: E2oWeight) -> Result<Vec<(CoreMicroarch, f64, f64)>> {
    let ino = CoreMicroarch::InOrder.design_point()?;
    let mut rows = Vec::new();
    for core in CoreMicroarch::ALL {
        let dp = core.design_point()?;
        rows.push((
            core,
            dp.performance() / DesignPoint::reference().performance(),
            Ncf::evaluate(&dp, &ino, scenario, alpha).value(),
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_has_four_panels_of_three_points() {
        let fig = MicroarchStudy.figure7().unwrap();
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 1);
            assert_eq!(p.series[0].points.len(), 3);
            // InO is the (1, 1) anchor.
            let ino = &p.series[0].points[0];
            assert!((ino.performance - 1.0).abs() < 1e-12);
            assert!((ino.ncf - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure7_fsc_sits_bottom_right_of_ino() {
        // Under fixed-work panels, FSC has higher perf and lower NCF than
        // InO — the paper's headline shape.
        let fig = MicroarchStudy.figure7().unwrap();
        for p in [&fig.panels[0], &fig.panels[2]] {
            let pts = &p.series[0].points;
            let (ino, fsc) = (&pts[0], &pts[1]);
            assert!(fsc.performance > ino.performance);
            assert!(fsc.ncf < ino.ncf, "{}: {}", p.title, fsc.ncf);
        }
    }

    #[test]
    fn findings_9_10_11_reproduce() {
        for f in [
            MicroarchStudy.finding9().unwrap(),
            MicroarchStudy.finding10().unwrap(),
            MicroarchStudy.finding11().unwrap(),
        ] {
            assert!(f.reproduces(), "{f}");
        }
    }

    #[test]
    fn pareto_rows_cover_all_cores() {
        let rows = core_pareto(Scenario::FixedWork, E2oWeight::BALANCED).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, CoreMicroarch::InOrder);
    }
}
