//! Common structures for the paper's 17 findings: each study reports the
//! quantitative claims it reproduces as paper-vs-measured metrics.

use focal_report::Table;
use std::fmt;

/// One quantitative claim from a finding: the paper's number versus what
/// this reproduction measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// What is being measured (e.g. `"NCF_ft,0.2 (32 BCE, f=0.95)"`).
    pub name: String,
    /// The value the paper reports.
    pub paper: f64,
    /// The value this reproduction computes.
    pub measured: f64,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
}

impl Metric {
    /// Creates a metric row.
    pub fn new(name: impl Into<String>, paper: f64, measured: f64, tolerance: f64) -> Self {
        Metric {
            name: name.into(),
            paper,
            measured,
            tolerance,
        }
    }

    /// `true` if the measured value is within tolerance of the paper's.
    pub fn matches(&self) -> bool {
        (self.measured - self.paper).abs() <= self.tolerance
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: paper {:.4}, measured {:.4} ({})",
            self.name,
            self.paper,
            self.measured,
            if self.matches() { "ok" } else { "MISMATCH" }
        )
    }
}

/// One of the paper's 17 findings, with its reproduced metrics and the
/// qualitative verdict check.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Finding number (1–17).
    pub id: u8,
    /// The paper's one-line claim.
    pub claim: &'static str,
    /// Quantitative paper-vs-measured rows.
    pub metrics: Vec<Metric>,
    /// `true` if the qualitative conclusion (the sustainability
    /// classification) reproduces.
    pub qualitative_holds: bool,
    /// Optional note on known deviations (e.g. paper phrasing ambiguity).
    pub note: Option<&'static str>,
}

impl Finding {
    /// `true` if the qualitative verdict holds and every metric matches.
    pub fn reproduces(&self) -> bool {
        self.qualitative_holds && self.metrics.iter().all(Metric::matches)
    }

    /// Renders the finding's metrics as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "paper", "measured", "ok"]);
        for m in &self.metrics {
            t.row(vec![
                m.name.clone(),
                format!("{:.4}", m.paper),
                format!("{:.4}", m.measured),
                if m.matches() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        t
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Finding #{} — {} [{}]",
            self.id,
            self.claim,
            if self.reproduces() {
                "REPRODUCES"
            } else {
                "CHECK"
            }
        )?;
        for m in &self.metrics {
            writeln!(f, "  {m}")?;
        }
        if let Some(n) = self.note {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_tolerance_check() {
        assert!(Metric::new("x", 1.0, 1.005, 0.01).matches());
        assert!(!Metric::new("x", 1.0, 1.02, 0.01).matches());
        assert!(Metric::new("exact", 2.0, 2.0, 0.0).matches());
    }

    #[test]
    fn finding_reproduces_requires_everything() {
        let good = Finding {
            id: 1,
            claim: "test",
            metrics: vec![Metric::new("m", 1.0, 1.0, 0.01)],
            qualitative_holds: true,
            note: None,
        };
        assert!(good.reproduces());

        let bad_metric = Finding {
            metrics: vec![Metric::new("m", 1.0, 2.0, 0.01)],
            ..good.clone()
        };
        assert!(!bad_metric.reproduces());

        let bad_verdict = Finding {
            qualitative_holds: false,
            ..good
        };
        assert!(!bad_verdict.reproduces());
    }

    #[test]
    fn display_summarizes() {
        let f = Finding {
            id: 3,
            claim: "parallel software wins",
            metrics: vec![Metric::new("perf", 1.17, 1.171, 0.01)],
            qualitative_holds: true,
            note: Some("a note"),
        };
        let s = f.to_string();
        assert!(s.contains("Finding #3"));
        assert!(s.contains("REPRODUCES"));
        assert!(s.contains("a note"));
    }

    #[test]
    fn table_flags_mismatches() {
        let f = Finding {
            id: 1,
            claim: "c",
            metrics: vec![Metric::new("bad", 1.0, 9.9, 0.01)],
            qualitative_holds: true,
            note: None,
        };
        assert!(f.to_table().to_text().contains("NO"));
    }
}
