//! Common figure structures: every study exposes its paper figure as a
//! [`Figure`] of [`Panel`]s of [`focal_core::SweepSeries`].

use focal_core::SweepSeries;
use focal_report::{AsciiChart, ChartSeries, CsvWriter};

/// One panel of a paper figure (e.g. Figure 3(a) "embodied dominated,
/// fixed-work").
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel title, matching the paper's subcaption.
    pub title: String,
    /// The curves in this panel.
    pub series: Vec<SweepSeries>,
}

impl Panel {
    /// Creates a panel.
    pub fn new(title: impl Into<String>, series: Vec<SweepSeries>) -> Self {
        Panel {
            title: title.into(),
            series,
        }
    }

    /// Renders the panel as an ASCII chart (performance on x, NCF on y).
    pub fn to_chart(&self, width: usize, height: usize) -> AsciiChart {
        const SYMBOLS: [char; 10] = ['o', 'x', '+', '*', '#', '@', '%', '&', '=', '~'];
        let mut chart = AsciiChart::new(self.title.clone(), width, height);
        for (i, s) in self.series.iter().enumerate() {
            chart = chart.series(ChartSeries::new(
                s.name.clone(),
                SYMBOLS[i % SYMBOLS.len()],
                s.points.iter().map(|p| (p.performance, p.ncf)).collect(),
            ));
        }
        chart
    }

    /// Renders the panel's data as CSV
    /// (`series,label,performance,ncf` rows).
    pub fn to_csv(&self) -> String {
        let mut csv = CsvWriter::new(vec!["series", "label", "performance", "ncf"]);
        for s in &self.series {
            for p in &s.points {
                csv.row(&[
                    s.name.clone(),
                    p.label.clone(),
                    format!("{}", p.performance),
                    format!("{}", p.ncf),
                ]);
            }
        }
        csv.finish()
    }
}

/// A complete paper figure: an identifier, caption and panels.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure identifier (e.g. `"fig3"`).
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub caption: &'static str,
    /// The panels, in the paper's order.
    pub panels: Vec<Panel>,
}

impl Figure {
    /// Creates a figure.
    pub fn new(id: &'static str, caption: &'static str, panels: Vec<Panel>) -> Self {
        Figure {
            id,
            caption,
            panels,
        }
    }

    /// Renders every panel as CSV, concatenated with panel headers.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for p in &self.panels {
            out.push_str(&format!("# {} — {}\n", self.id, p.title));
            out.push_str(&p.to_csv());
        }
        out
    }

    /// Renders the whole figure as ASCII charts.
    pub fn to_text(&self, width: usize, height: usize) -> String {
        let mut out = format!("{}: {}\n\n", self.id, self.caption);
        for p in &self.panels {
            out.push_str(&p.to_chart(width, height).render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut s = SweepSeries::new("f=0.5");
        s.push_raw("2 cores", 1.33, 0.9);
        s.push_raw("4 cores", 1.6, 0.8);
        Figure::new(
            "figX",
            "a test figure",
            vec![Panel::new("panel (a)", vec![s])],
        )
    }

    #[test]
    fn csv_contains_all_points() {
        let csv = sample_figure().to_csv();
        assert!(csv.contains("# figX — panel (a)"));
        assert!(csv.contains("f=0.5,2 cores,1.33,0.9"));
        assert!(csv.contains("f=0.5,4 cores,1.6,0.8"));
    }

    #[test]
    fn text_render_includes_caption_and_chart() {
        let text = sample_figure().to_text(30, 8);
        assert!(text.contains("a test figure"));
        assert!(text.contains("panel (a)"));
        assert!(text.contains("f=0.5"));
    }

    #[test]
    fn chart_assigns_distinct_symbols() {
        let mut a = SweepSeries::new("a");
        a.push_raw("p", 1.0, 1.0);
        let mut b = SweepSeries::new("b");
        b.push_raw("p", 2.0, 2.0);
        let panel = Panel::new("t", vec![a, b]);
        let text = panel.to_chart(20, 6).render();
        assert!(text.contains("  o a"));
        assert!(text.contains("  x b"));
    }
}
