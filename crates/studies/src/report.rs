//! Markdown report generation: renders the findings registry into the
//! paper-vs-measured tables EXPERIMENTS.md is built from.

use crate::finding::Finding;
use focal_report::Table;

/// Renders a set of findings as a Markdown report: a summary line, the
/// full metric table, and per-finding notes.
///
/// # Examples
///
/// ```
/// let findings = focal_studies::all_findings()?;
/// let md = focal_studies::findings_markdown(&findings);
/// assert!(md.contains("| # | claim | metric | paper | measured | ok |"));
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn findings_markdown(findings: &[Finding]) -> String {
    let ok = findings.iter().filter(|f| f.reproduces()).count();
    let mut out = String::new();
    out.push_str("# FOCAL reproduction report\n\n");
    out.push_str(&format!(
        "**{ok}/{} experiments reproduce** the paper's numbers and verdicts.\n\n",
        findings.len()
    ));

    out.push_str("| # | claim | metric | paper | measured | ok |\n");
    out.push_str("| ---: | :--- | :--- | ---: | ---: | :--- |\n");
    for f in findings {
        for (i, m) in f.metrics.iter().enumerate() {
            let (id, claim) = if i == 0 {
                (f.id.to_string(), f.claim.to_string())
            } else {
                (String::new(), String::new())
            };
            out.push_str(&format!(
                "| {id} | {claim} | {} | {:.4} | {:.4} | {} |\n",
                m.name,
                m.paper,
                m.measured,
                if m.matches() { "yes" } else { "**NO**" }
            ));
        }
    }

    let notes: Vec<&Finding> = findings.iter().filter(|f| f.note.is_some()).collect();
    if !notes.is_empty() {
        out.push_str("\n## Notes\n\n");
        for f in notes {
            out.push_str(&format!(
                "- **Finding #{}** — {}\n",
                f.id,
                f.note.expect("filtered to noted findings")
            ));
        }
    }
    out
}

/// Renders the findings as a plain-text summary table (one row per
/// finding with its worst metric deviation).
pub fn findings_summary_table(findings: &[Finding]) -> Table {
    let mut table = Table::new(vec!["#", "claim", "metrics", "max |Δ|", "verdict"]);
    for f in findings {
        let max_dev = f
            .metrics
            .iter()
            .map(|m| (m.measured - m.paper).abs())
            .fold(0.0, f64::max);
        table.row(vec![
            f.id.to_string(),
            f.claim.chars().take(60).collect(),
            f.metrics.len().to_string(),
            format!("{max_dev:.4}"),
            if f.reproduces() {
                "ok".into()
            } else {
                "CHECK".into()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::Metric;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                id: 1,
                claim: "claim one",
                metrics: vec![
                    Metric::new("m1", 1.0, 1.001, 0.01),
                    Metric::new("m2", 2.0, 2.0, 0.01),
                ],
                qualitative_holds: true,
                note: Some("a caveat"),
            },
            Finding {
                id: 2,
                claim: "claim two",
                metrics: vec![Metric::new("m3", 5.0, 9.0, 0.1)],
                qualitative_holds: true,
                note: None,
            },
        ]
    }

    #[test]
    fn markdown_counts_and_flags() {
        let md = findings_markdown(&sample());
        assert!(md.contains("**1/2 experiments reproduce**"));
        assert!(md.contains("| 1 | claim one | m1 | 1.0000 | 1.0010 | yes |"));
        // Continuation rows leave id/claim blank.
        assert!(md.contains("|  |  | m2 |"));
        assert!(md.contains("**NO**"));
        assert!(md.contains("- **Finding #1** — a caveat"));
    }

    #[test]
    fn summary_table_shows_max_deviation() {
        let t = findings_summary_table(&sample());
        let text = t.to_text();
        assert!(text.contains("4.0000")); // |9 − 5|
        assert!(text.contains("CHECK"));
        assert!(text.contains("ok"));
    }

    #[test]
    fn real_registry_renders_all_ok() {
        let findings = crate::all_findings().unwrap();
        let md = findings_markdown(&findings);
        assert!(md.contains(&format!(
            "**{0}/{0} experiments reproduce**",
            findings.len()
        )));
        assert!(!md.contains("**NO**"));
    }
}
