//! §3.1 — embodied footprint per chip vs. die size (Figure 1).

use crate::figure::{Figure, Panel};
use focal_core::{Result, SiliconArea, SweepSeries};
use focal_wafer::{EmbodiedModel, Polynomial};

/// Number of die-size grid points for the Figure 1 sweep.
pub const DIE_STEPS: usize = 15;

/// Smallest die size in the Figure 1 sweep (mm²).
pub const DIE_MIN_MM2: f64 = 100.0;

/// Largest die size in the Figure 1 sweep (mm²).
pub const DIE_MAX_MM2: f64 = 800.0;

/// The die size the Figure 1 footprints are normalized to (mm²).
pub const REFERENCE_MM2: f64 = 100.0;

/// Builds Figure 1: normalized embodied footprint per chip (vs. a 100 mm²
/// die) as a function of die size, for perfect yield and the Murphy model
/// on a 300 mm wafer. The x-axis (stored in the series' `performance`
/// slot) is the die size in mm².
///
/// # Errors
///
/// Never fails for the built-in sweep.
pub fn figure1() -> Result<Figure> {
    figure1_with(
        &[
            EmbodiedModel::figure1_perfect(),
            EmbodiedModel::figure1_murphy(),
        ],
        DIE_MIN_MM2,
        DIE_MAX_MM2,
        DIE_STEPS,
        REFERENCE_MM2,
    )
}

/// [`figure1`] over explicit embodied models and an explicit die-size
/// sweep — the scenario compiler's entry point. Series are labelled from
/// each model's yield model via [`crate::labels::yield_model_label`].
///
/// # Errors
///
/// Returns an error for a non-positive sweep, inverted bounds, or a grid
/// of fewer than two points.
pub fn figure1_with(
    models: &[EmbodiedModel],
    min_mm2: f64,
    max_mm2: f64,
    steps: usize,
    reference_mm2: f64,
) -> Result<Figure> {
    if steps < 2 {
        return Err(focal_core::ModelError::Inconsistent {
            constraint: "a die-size sweep needs at least two grid points",
        });
    }
    let reference = SiliconArea::from_mm2(reference_mm2)?;
    let mut series = Vec::new();
    for model in models {
        let mut s = SweepSeries::new(crate::labels::yield_model_label(model.yield_model()));
        for (die_mm2, footprint) in model.sweep_normalized(min_mm2, max_mm2, steps, reference)? {
            s.push_raw(format!("{die_mm2:.0} mm²"), die_mm2, footprint);
        }
        series.push(s);
    }
    Ok(Figure::new(
        "fig1",
        "Embodied footprint per chip vs. die size (300 mm wafer, D0 = 0.09/cm², \
         normalized to 100 mm²); perfect yield is ~linear, Murphy ~quadratic",
        vec![Panel::new("(embodied per chip)", series)],
    ))
}

/// The paper's Figure 1 trendlines: a linear fit of the perfect-yield
/// curve and a quadratic fit of the Murphy curve, returned as
/// `(linear, quadratic)` with their R² values.
///
/// # Errors
///
/// Never fails for the built-in sweep.
pub fn figure1_trendlines() -> Result<((Polynomial, f64), (Polynomial, f64))> {
    let reference = SiliconArea::from_mm2(100.0)?;
    let perfect =
        EmbodiedModel::figure1_perfect().sweep_normalized(100.0, 800.0, DIE_STEPS, reference)?;
    let murphy =
        EmbodiedModel::figure1_murphy().sweep_normalized(100.0, 800.0, DIE_STEPS, reference)?;
    let (px, py): (Vec<f64>, Vec<f64>) = perfect.into_iter().unzip();
    let (mx, my): (Vec<f64>, Vec<f64>) = murphy.into_iter().unzip();
    let lin = Polynomial::fit(&px, &py, 1)?;
    let lin_r2 = lin.r_squared(&px, &py);
    let quad = Polynomial::fit(&mx, &my, 2)?;
    let quad_r2 = quad.r_squared(&mx, &my);
    Ok(((lin, lin_r2), (quad, quad_r2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_two_series_over_the_sweep() {
        let fig = figure1().unwrap();
        assert_eq!(fig.panels.len(), 1);
        let series = &fig.panels[0].series;
        assert_eq!(series.len(), 2);
        for s in series {
            assert_eq!(s.points.len(), DIE_STEPS);
            assert!(
                (s.points[0].ncf - 1.0).abs() < 1e-9,
                "normalized at 100 mm²"
            );
        }
    }

    #[test]
    fn murphy_curve_dominates_perfect() {
        let fig = figure1().unwrap();
        let perfect = &fig.panels[0].series[0];
        let murphy = &fig.panels[0].series[1];
        for (p, m) in perfect.points.iter().zip(&murphy.points).skip(1) {
            assert!(m.ncf > p.ncf, "at {} mm²", p.performance);
        }
    }

    #[test]
    fn trendlines_fit_well_and_match_shapes() {
        let ((lin, lin_r2), (quad, quad_r2)) = figure1_trendlines().unwrap();
        assert!(lin_r2 > 0.995, "perfect yield ≈ linear: {lin_r2}");
        assert!(quad_r2 > 0.999, "Murphy ≈ quadratic: {quad_r2}");
        assert!(lin.coefficients()[1] > 0.0);
        assert!(quad.coefficients()[2] > 0.0);
    }
}
