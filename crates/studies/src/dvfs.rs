//! §5.8 — frequency and voltage scaling (Findings #14–#15).

use crate::finding::{Finding, Metric};
use focal_core::{classify, DesignPoint, E2oWeight, Result, Sustainability};
use focal_uarch::{DvfsCore, TurboBoost};

/// The DVFS study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsStudy {
    /// The DVFS-capable core (default: 70 % dynamic power, 2 % regulator
    /// area).
    pub core: DvfsCore,
    /// The turbo configuration (default: +1 % turbo circuitry).
    pub turbo: TurboBoost,
    /// The representative down-scaling point evaluated by Finding #14.
    pub downscale: f64,
    /// The representative boost point evaluated by Finding #15.
    pub boost: f64,
}

impl Default for DvfsStudy {
    fn default() -> Self {
        DvfsStudy {
            core: DvfsCore::default_core(),
            turbo: TurboBoost::default_turbo(),
            downscale: 0.8,
            boost: 1.2,
        }
    }
}

impl DvfsStudy {
    /// Finding #14: DVFS (scaling down) is strongly sustainable.
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration.
    pub fn finding14(&self) -> Result<Finding> {
        let nominal = self.core.nominal_without_dvfs()?;
        let scaled = self.core.design_point(self.downscale)?;
        let mut strongly = true;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            strongly &= classify(&scaled, &nominal, alpha).class == Sustainability::Strongly;
        }
        // Cubic power / quadratic energy at k = 0.8, δ = 0.7.
        let power = self.core.power(self.downscale)?;
        let energy = self.core.energy(self.downscale)?;
        Ok(Finding {
            id: 14,
            claim: "DVFS is strongly sustainable",
            metrics: vec![
                Metric::new(
                    "power @k=0.8 (δ·k³+(1−δ)k)",
                    0.7 * 0.512 + 0.3 * 0.8,
                    power,
                    1e-9,
                ),
                Metric::new("energy @k=0.8 (δ·k²+(1−δ))", 0.7 * 0.64 + 0.3, energy, 1e-9),
            ],
            qualitative_holds: strongly,
            note: None,
        })
    }

    /// Finding #15: turbo boosting is less sustainable.
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration.
    pub fn finding15(&self) -> Result<Finding> {
        let nominal = DesignPoint::reference();
        let boosted = self.turbo.design_point(self.boost)?;
        let mut less = true;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            less &= classify(&boosted, &nominal, alpha).class == Sustainability::Less;
        }
        Ok(Finding {
            id: 15,
            claim: "Turboboosting leads to a less sustainable system",
            metrics: vec![Metric::new(
                "power @k=1.2 (> 1)",
                0.7 * 1.728 + 0.3 * 1.2,
                self.core.power(self.boost)?,
                1e-9,
            )],
            qualitative_holds: less,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding14_reproduces() {
        let f = DvfsStudy::default().finding14().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn finding15_reproduces() {
        let f = DvfsStudy::default().finding15().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn deeper_downscaling_saves_more() {
        let st = DvfsStudy::default();
        let e_shallow = st.core.energy(0.9).unwrap();
        let e_deep = st.core.energy(0.6).unwrap();
        assert!(e_deep < e_shallow);
    }
}
