//! §7 — sustainable multicore design in a new technology node (Figure 9).
//!
//! A quad-core chip moves to the next node under a fixed power budget.
//! Options: keep 4 cores (die shrink) … double to 8 cores (constant
//! area). Per the paper: f = 0.75, γ = 0.2, post-Dennard iso-power
//! frequency 1.41× for 4 cores falling to ≈ 1.24× for 8 (see
//! [`focal_scaling::iso_power_frequency`]); embodied footprint scales as
//! `(cores/8) × 1.252` relative to the old 4-core chip.

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{DesignPoint, E2oWeight, Result, Scenario, Sustainability, SweepSeries};
use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
use focal_scaling::iso_power_frequency;
use focal_wafer::ManufacturingTrend;

/// One candidate configuration in the new technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOption {
    /// Core count (4–8 in the paper).
    pub cores: u32,
    /// Achievable clock relative to the old node (1.41 → 1.24).
    pub frequency_gain: f64,
    /// Performance relative to the old 4-core chip.
    pub performance: f64,
    /// Embodied footprint relative to the old 4-core chip.
    pub embodied: f64,
    /// Energy per unit of work relative to the old chip (power is flat by
    /// construction, so this is `1 / performance`).
    pub energy: f64,
}

/// The §7 case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudy {
    /// Parallel fraction (paper: 0.75).
    pub f: ParallelFraction,
    /// Idle leakage (paper: 0.2).
    pub gamma: LeakageFraction,
    /// Old-node core count (paper: 4).
    pub base_cores: u32,
    /// Manufacturing trend (paper: Imec, +25.2 % per node).
    pub trend: ManufacturingTrend,
}

impl CaseStudy {
    /// The paper's configuration.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn paper() -> Result<Self> {
        Ok(CaseStudy {
            f: ParallelFraction::new(0.75)?,
            gamma: LeakageFraction::PAPER,
            base_cores: 4,
            trend: ManufacturingTrend::IMEC,
        })
    }

    fn woo_lee_power(&self, cores: u32) -> Result<f64> {
        Ok(SymmetricMulticore::unit_cores(cores)?.power(self.f, self.gamma, PollackRule::CLASSIC))
    }

    fn amdahl_speedup(&self, cores: u32) -> Result<f64> {
        Ok(SymmetricMulticore::unit_cores(cores)?.speedup(self.f, PollackRule::CLASSIC))
    }

    /// Evaluates one new-node option with `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns an error for `cores < base_cores` (the study only grows the
    /// chip) or `cores == 0`.
    pub fn option(&self, cores: u32) -> Result<NodeOption> {
        if cores < self.base_cores {
            return Err(focal_core::ModelError::Inconsistent {
                constraint: "the case study considers core counts at or above the old chip's",
            });
        }
        let p_base = self.woo_lee_power(self.base_cores)?;
        let p_new = self.woo_lee_power(cores)?;
        // Iso-power clock: 1.41x for the same configuration, less for more
        // cores (dynamic power cubic in frequency).
        let frequency_gain = iso_power_frequency(p_new / p_base, std::f64::consts::SQRT_2)?;
        let performance =
            self.amdahl_speedup(cores)? * frequency_gain / self.amdahl_speedup(self.base_cores)?;
        // Area per core halves; embodied also carries the wafer-footprint
        // growth: (cores / (2·base)) × 1.252.
        let embodied = (cores as f64 / (2.0 * self.base_cores as f64))
            * self.trend.wafer_footprint_node_factor(1);
        Ok(NodeOption {
            cores,
            frequency_gain,
            performance,
            embodied,
            energy: 1.0 / performance,
        })
    }

    /// The new-node design point vs. the old chip (area axis carries the
    /// effective embodied factor; power is flat at the budget).
    ///
    /// # Errors
    ///
    /// See [`CaseStudy::option`].
    pub fn design_point(&self, cores: u32) -> Result<DesignPoint> {
        let o = self.option(cores)?;
        DesignPoint::from_raw(o.embodied, 1.0, o.energy, o.performance)
    }

    /// Builds Figure 9: two panels (embodied/operational dominated), each
    /// with fixed-work and fixed-time curves over 4–8 cores; NCF and
    /// performance are relative to the old-node 4-core chip.
    ///
    /// # Errors
    ///
    /// Never fails for the paper configuration.
    pub fn figure9(&self) -> Result<Figure> {
        self.figure9_weights(&crate::labels::DEFAULT_WEIGHTS)
    }

    /// [`CaseStudy::figure9`] over explicit α regimes — the scenario
    /// compiler's entry point.
    ///
    /// # Errors
    ///
    /// Never fails for the paper configuration.
    pub fn figure9_weights(&self, alphas: &[E2oWeight]) -> Result<Figure> {
        let old = DesignPoint::reference();
        let mut panels = Vec::new();
        for &alpha in alphas {
            let name = crate::labels::weight_label_long(alpha);
            let mut series = Vec::new();
            for scenario in Scenario::ALL {
                let mut s = SweepSeries::new(scenario.label());
                for cores in self.base_cores..=(2 * self.base_cores) {
                    let dp = self.design_point(cores)?;
                    s.push_design(format!("{cores} cores"), &dp, &old, scenario, alpha);
                }
                series.push(s);
            }
            panels.push(Panel::new(format!("({name})"), series));
        }
        Ok(Figure::new(
            "fig9",
            "Next-node multicore options (4-8 cores, power-constrained, \
             f = 0.75): NCF vs. performance relative to the old 4-core chip",
            panels,
        ))
    }

    /// Classifies each option; the paper's conclusion: 4–6 cores strongly
    /// sustainable, 7–8 weakly (operational dom) or not (embodied dom)
    /// sustainable.
    ///
    /// # Errors
    ///
    /// Never fails for the paper configuration.
    pub fn classification_table(&self) -> Result<Vec<(u32, Sustainability, Sustainability)>> {
        let old = DesignPoint::reference();
        let mut rows = Vec::new();
        for cores in self.base_cores..=(2 * self.base_cores) {
            let dp = self.design_point(cores)?;
            let emb = focal_core::classify(&dp, &old, E2oWeight::EMBODIED_DOMINATED).class;
            let op = focal_core::classify(&dp, &old, E2oWeight::OPERATIONAL_DOMINATED).class;
            rows.push((cores, emb, op));
        }
        Ok(rows)
    }

    /// The case study's headline numbers as a pseudo-finding (the paper
    /// numbers it as §7 rather than a Finding).
    ///
    /// # Errors
    ///
    /// Never fails for the paper configuration.
    pub fn headline(&self) -> Result<Finding> {
        let o4 = self.option(4)?;
        let o6 = self.option(6)?;
        let o8 = self.option(8)?;
        let rows = self.classification_table()?;
        let sober_strong = rows
            .iter()
            .take(3) // 4, 5, 6 cores
            .all(|(_, e, o)| *e == Sustainability::Strongly && *o == Sustainability::Strongly);
        let aggressive_not_strong = rows
            .iter()
            .skip(3) // 7, 8 cores
            .all(|(_, e, o)| *e != Sustainability::Strongly && *o != Sustainability::Strongly);

        Ok(Finding {
            id: 18, // §7 case study, numbered after the 17 findings
            claim: "4-6 core next-node designs are strongly sustainable; 7-8 cores are weakly or not sustainable",
            metrics: vec![
                Metric::new("frequency gain, 4 cores", 1.41, o4.frequency_gain, 0.01),
                Metric::new("frequency gain, 8 cores", 1.24, o8.frequency_gain, 0.01),
                Metric::new("embodied factor, 4 cores", 0.625, o4.embodied, 0.002),
                Metric::new("embodied factor, 8 cores", 1.25, o8.embodied, 0.005),
                Metric::new("performance range low", 1.41, o4.performance, 0.01),
                Metric::new("performance range high (6 cores)", 1.52, o6.performance, 0.01),
            ],
            qualitative_holds: sober_strong && aggressive_not_strong,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> CaseStudy {
        CaseStudy::paper().unwrap()
    }

    #[test]
    fn frequency_gains_match_paper_range() {
        let st = study();
        assert!((st.option(4).unwrap().frequency_gain - 1.414).abs() < 0.001);
        assert!((st.option(8).unwrap().frequency_gain - 1.24).abs() < 0.01);
        // Monotone decline in between.
        let mut prev = f64::INFINITY;
        for cores in 4..=8 {
            let g = st.option(cores).unwrap().frequency_gain;
            assert!(g < prev);
            prev = g;
        }
    }

    #[test]
    fn embodied_factors_match_paper() {
        let st = study();
        assert!((st.option(4).unwrap().embodied - 0.626).abs() < 0.001);
        assert!((st.option(8).unwrap().embodied - 1.252).abs() < 0.001);
    }

    #[test]
    fn performance_range_is_141_to_157() {
        let st = study();
        let p4 = st.option(4).unwrap().performance;
        let p8 = st.option(8).unwrap().performance;
        assert!((p4 - 1.414).abs() < 0.001);
        assert!(p8 > 1.55 && p8 < 1.60, "got {p8}");
        // More cores is always (somewhat) faster here.
        let mut prev = 0.0;
        for cores in 4..=8 {
            let p = st.option(cores).unwrap().performance;
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn figure9_panels_and_monotone_ncf() {
        let fig = study().figure9().unwrap();
        assert_eq!(fig.panels.len(), 2);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 2);
            for s in &p.series {
                assert_eq!(s.points.len(), 5);
                // NCF grows with core count (more embodied footprint).
                for w in s.points.windows(2) {
                    assert!(w[1].ncf > w[0].ncf, "{}", s.name);
                }
            }
        }
    }

    #[test]
    fn classification_matches_paper_conclusion() {
        let rows = study().classification_table().unwrap();
        assert_eq!(rows.len(), 5);
        for (cores, emb, op) in &rows[..3] {
            assert_eq!(*emb, Sustainability::Strongly, "{cores} cores (emb)");
            assert_eq!(*op, Sustainability::Strongly, "{cores} cores (op)");
        }
        // 7 and 8 cores: not sustainable under embodied dominance, weakly
        // under operational dominance.
        for (cores, emb, op) in &rows[3..] {
            assert_eq!(*emb, Sustainability::Less, "{cores} cores (emb)");
            assert_eq!(*op, Sustainability::Weakly, "{cores} cores (op)");
        }
    }

    #[test]
    fn headline_reproduces() {
        let f = study().headline().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn shrinking_below_base_cores_is_rejected() {
        assert!(study().option(3).is_err());
    }
}
