//! Whole-SoC composition — an extension assembling the paper's per-
//! mechanism studies into one chip-level FOCAL assessment.
//!
//! §5 evaluates each mechanism in isolation; a real design decision picks
//! a *bundle*: a core microarchitecture, an LLC size, and a set of
//! accelerators. [`SocConfig`] composes those pieces into a single
//! [`DesignPoint`] so the bundle itself can be classified, and
//! [`SocConfig::compare`] pits two whole SoCs against each other.
//!
//! ## Composition model (first-order, matching the per-study conventions)
//!
//! With the core as the unit of area and of busy power:
//!
//! * **Area** — `core_area + llc_area + accelerator_area`, each in units
//!   of the baseline (InO) core's area. Core area comes from
//!   [`CoreMicroarch`], LLC area from the CACTI-lite calibration,
//!   accelerator area from its overhead parameter.
//! * **Time** — the memory-bound workload model sets the stall share; the
//!   core's microarchitectural speedup accelerates the *compute* share
//!   only (memory stalls don't shrink with a faster core).
//! * **Energy** — compute energy scales with the core's energy-per-work;
//!   LLC + DRAM energy follow the caching study; offloading a fraction of
//!   compute time to an accelerator divides that slice's energy by the
//!   accelerator's advantage.
//!
//! Everything is normalized to the baseline SoC: an InO core with the
//! 1 MiB LLC and no accelerator.

use focal_cache::{CacheSize, MemoryBoundWorkload};
use focal_core::{classify, Classification, DesignPoint, E2oWeight, Result};
use focal_uarch::{Accelerator, CoreMicroarch};
use std::fmt;

/// A whole-SoC configuration: core + LLC + optional accelerator (with its
/// anticipated utilization).
///
/// # Examples
///
/// ```
/// use focal_cache::CacheSize;
/// use focal_studies::soc::SocConfig;
/// use focal_uarch::{Accelerator, CoreMicroarch};
///
/// let soc = SocConfig::new(CoreMicroarch::ForwardSlice, CacheSize::from_mib(2.0)?)?
///     .with_accelerator(Accelerator::HAMEED_H264, 0.3)?;
/// let dp = soc.design_point()?;
/// assert!(dp.performance().get() > 1.0);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocConfig {
    core: CoreMicroarch,
    llc: CacheSize,
    accelerator: Option<(Accelerator, f64)>,
    workload: MemoryBoundWorkload,
}

impl SocConfig {
    /// Creates a SoC with the given core and LLC, no accelerator, using
    /// the paper's memory-bound workload constants.
    ///
    /// # Errors
    ///
    /// Returns an error if the LLC size falls outside the CACTI
    /// calibration.
    pub fn new(core: CoreMicroarch, llc: CacheSize) -> Result<Self> {
        let workload = MemoryBoundWorkload::paper()?;
        // Fail fast on uncalibrated LLC sizes.
        workload.design_point(llc)?;
        Ok(SocConfig {
            core,
            llc,
            accelerator: None,
            workload,
        })
    }

    /// The baseline every composition is normalized to: InO core, 1 MiB
    /// LLC, no accelerator.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn baseline() -> Result<Self> {
        SocConfig::new(CoreMicroarch::InOrder, CacheSize::from_mib(1.0)?)
    }

    /// Attaches an accelerator used for `utilization` of the *compute*
    /// time.
    ///
    /// # Errors
    ///
    /// Returns an error if `utilization ∉ [0, 1]`.
    pub fn with_accelerator(mut self, accelerator: Accelerator, utilization: f64) -> Result<Self> {
        // Validate via the accelerator's own domain check.
        accelerator.operational_ratio(utilization)?;
        self.accelerator = Some((accelerator, utilization));
        Ok(self)
    }

    /// The core microarchitecture.
    pub fn core(&self) -> CoreMicroarch {
        self.core
    }

    /// The LLC size.
    pub fn llc(&self) -> CacheSize {
        self.llc
    }

    /// Total chip area in baseline-core units:
    /// `core + LLC + accelerator`.
    ///
    /// # Errors
    ///
    /// Returns an error for uncalibrated LLC sizes.
    pub fn area(&self) -> Result<f64> {
        // chip_area() returns 1 (core) + LLC fraction; swap in this
        // configuration's core area.
        let llc_area = self.workload.design_point(self.llc)?.area().get() - 1.0;
        let accel_area = self
            .accelerator
            .map(|(a, _)| a.area_overhead())
            .unwrap_or(0.0);
        Ok(self.core.area() + llc_area + accel_area)
    }

    /// Normalized execution time. The baseline splits time into compute
    /// `(1 − stall)` and memory stall; the core speeds up compute, the
    /// LLC shrinks the stall (miss-ratio law). The accelerator matches
    /// core performance (Hameed), so it does not change time.
    pub fn execution_time(&self) -> f64 {
        const STALL: f64 = 0.8; // the paper's memory-bound workload
        let compute = (1.0 - STALL) / self.core.performance();
        let stall = STALL * self.workload.miss_ratio(self.llc);
        compute + stall
    }

    /// Normalized performance, `1 / time`.
    pub fn performance(&self) -> f64 {
        1.0 / self.execution_time()
    }

    /// Normalized energy per unit of work.
    ///
    /// Baseline decomposition (paper constants): 15 % core compute, 5 %
    /// LLC accesses, 80 % memory. Compute energy scales with the core's
    /// energy-per-work and is partially offloaded to the accelerator;
    /// LLC energy scales with per-access energy; memory energy with the
    /// miss ratio.
    ///
    /// # Errors
    ///
    /// Returns an error for uncalibrated LLC sizes.
    pub fn energy(&self) -> Result<f64> {
        const CORE_E: f64 = 0.15;
        const LLC_E: f64 = 0.05;
        const MEM_E: f64 = 0.80;
        let offload = self
            .accelerator
            .map(|(a, u)| a.operational_ratio(u).expect("validated utilization"))
            .unwrap_or(1.0);
        let compute = CORE_E * self.core.energy() * offload;
        let llc_dp = self.workload.design_point(self.llc)?;
        // Recover the LLC energy ratio from the workload model: its
        // energy = core + llc·ratio + mem·miss.
        let llc_ratio =
            (llc_dp.energy().get() - CORE_E - MEM_E * self.workload.miss_ratio(self.llc)) / LLC_E;
        Ok(compute + LLC_E * llc_ratio + MEM_E * self.workload.miss_ratio(self.llc))
    }

    /// The composed FOCAL design point, normalized to
    /// [`SocConfig::baseline`].
    ///
    /// # Errors
    ///
    /// Returns an error for uncalibrated LLC sizes.
    pub fn design_point(&self) -> Result<DesignPoint> {
        let baseline = SocConfig::baseline()?;
        let time = self.execution_time() / baseline.execution_time();
        let energy = self.energy()? / baseline.energy()?;
        let area = self.area()? / baseline.area()?;
        DesignPoint::from_raw(area, energy / time, energy, 1.0 / time)
    }

    /// Classifies this SoC against another whole SoC.
    ///
    /// # Errors
    ///
    /// Returns an error for uncalibrated LLC sizes.
    pub fn compare(&self, other: &SocConfig, alpha: E2oWeight) -> Result<Classification> {
        Ok(classify(
            &self.design_point()?,
            &other.design_point()?,
            alpha,
        ))
    }
}

impl fmt::Display for SocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SoC[{} core, {} LLC", self.core, self.llc)?;
        if let Some((acc, u)) = self.accelerator {
            write!(f, ", {acc} @{:.0}%", u * 100.0)?;
        }
        write!(f, "]")
    }
}

/// Enumerates the whole bundle design space — every combination of core
/// microarchitecture, LLC size and accelerator option — as named
/// [`focal_core::Candidate`]s ready for
/// [`focal_core::pareto_frontier`].
///
/// # Errors
///
/// Returns an error if any LLC size falls outside the CACTI calibration
/// or any accelerator utilization leaves `[0, 1]`.
///
/// # Examples
///
/// ```
/// use focal_core::{pareto_frontier, DesignPoint, E2oWeight, Scenario};
/// use focal_studies::soc::design_space;
///
/// let candidates = design_space(
///     &[1.0, 2.0, 4.0],
///     &[None, Some((focal_uarch::Accelerator::HAMEED_H264, 0.3))],
/// )?;
/// assert_eq!(candidates.len(), 3 * 3 * 2); // cores x LLCs x accel options
/// let frontier = pareto_frontier(
///     &candidates,
///     &DesignPoint::reference(),
///     Scenario::FixedWork,
///     E2oWeight::EMBODIED_DOMINATED,
/// );
/// assert!(!frontier.is_empty());
/// # Ok::<(), focal_core::ModelError>(())
/// ```
pub fn design_space(
    llc_mib_options: &[f64],
    accelerator_options: &[Option<(Accelerator, f64)>],
) -> Result<Vec<focal_core::Candidate>> {
    let mut candidates = Vec::new();
    for core in CoreMicroarch::ALL {
        for &llc_mib in llc_mib_options {
            for accel in accelerator_options {
                let mut soc = SocConfig::new(core, CacheSize::from_mib(llc_mib)?)?;
                if let Some((a, u)) = accel {
                    soc = soc.with_accelerator(*a, *u)?;
                }
                candidates.push(focal_core::Candidate::new(
                    soc.to_string(),
                    soc.design_point()?,
                ));
            }
        }
    }
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::Sustainability;

    fn mib(m: f64) -> CacheSize {
        CacheSize::from_mib(m).unwrap()
    }

    #[test]
    fn baseline_is_the_unit() {
        let base = SocConfig::baseline().unwrap();
        let dp = base.design_point().unwrap();
        assert!((dp.area().get() - 1.0).abs() < 1e-12);
        assert!((dp.performance().get() - 1.0).abs() < 1e-12);
        assert!((dp.energy().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn core_only_upgrade_reduces_to_microarch_ratios_on_compute() {
        // With the same LLC and no accelerator, only the compute slice
        // changes: time = 0.2/perf + 0.8.
        let fsc = SocConfig::new(CoreMicroarch::ForwardSlice, mib(1.0)).unwrap();
        let expected_time = 0.2 / 1.64 + 0.8;
        assert!((fsc.execution_time() - expected_time).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_workload_dampens_core_gains() {
        // An OoO core is +75% on compute but the SoC is memory-bound, so
        // whole-SoC speedup is far smaller — the composition captures
        // what the isolated §5.6 study cannot.
        let ooo = SocConfig::new(CoreMicroarch::OutOfOrder, mib(1.0)).unwrap();
        let base = SocConfig::baseline().unwrap();
        let soc_speedup = ooo.performance() / base.performance();
        assert!(soc_speedup < 1.15, "got {soc_speedup}");
        assert!(soc_speedup > 1.0);
    }

    #[test]
    fn area_composes_additively() {
        let soc = SocConfig::new(CoreMicroarch::OutOfOrder, mib(2.0))
            .unwrap()
            .with_accelerator(Accelerator::HAMEED_H264, 0.5)
            .unwrap();
        // OoO 1.39 + LLC(2MiB) 0.25·2^1.093 + accel 0.065.
        let llc = 0.25 * 2.0_f64.powf(20.7_f64.ln() / 16.0_f64.ln());
        assert!((soc.area().unwrap() - (1.39 + llc + 0.065)).abs() < 1e-9);
    }

    #[test]
    fn fsc_bundle_beats_ooo_bundle_everywhere() {
        // The paper's Finding #11 at SoC scale: swap OoO for FSC in an
        // otherwise identical chip.
        let fsc = SocConfig::new(CoreMicroarch::ForwardSlice, mib(2.0)).unwrap();
        let ooo = SocConfig::new(CoreMicroarch::OutOfOrder, mib(2.0)).unwrap();
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            let c = fsc.compare(&ooo, alpha).unwrap();
            assert_eq!(c.class, Sustainability::Strongly, "α = {alpha}");
        }
        // But the whole-SoC performance penalty is tiny (memory-bound).
        let perf_ratio = fsc.performance() / ooo.performance();
        assert!(perf_ratio > 0.98, "got {perf_ratio}");
    }

    #[test]
    fn accelerator_helps_energy_without_touching_time() {
        let plain = SocConfig::new(CoreMicroarch::InOrder, mib(1.0)).unwrap();
        let accel = SocConfig::new(CoreMicroarch::InOrder, mib(1.0))
            .unwrap()
            .with_accelerator(Accelerator::HAMEED_H264, 0.5)
            .unwrap();
        assert_eq!(plain.execution_time(), accel.execution_time());
        assert!(accel.energy().unwrap() < plain.energy().unwrap());
        assert!(accel.area().unwrap() > plain.area().unwrap());
    }

    /// The bundle question the isolated studies cannot answer: is "bigger
    /// cache + weaker core" greener than "smaller cache + stronger core"
    /// at equal-ish performance? With the paper constants, the FSC+2MiB
    /// bundle dominates the OoO+1MiB one.
    #[test]
    fn bundle_tradeoffs_are_answerable() {
        let frugal = SocConfig::new(CoreMicroarch::ForwardSlice, mib(2.0)).unwrap();
        let brawny = SocConfig::new(CoreMicroarch::OutOfOrder, mib(1.0)).unwrap();
        let dp_f = frugal.design_point().unwrap();
        let dp_b = brawny.design_point().unwrap();
        assert!(dp_f.performance().get() > dp_b.performance().get());
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            let c = frugal.compare(&brawny, alpha).unwrap();
            assert_eq!(c.class, Sustainability::Strongly, "α = {alpha}");
        }
    }

    #[test]
    fn validation_propagates() {
        assert!(SocConfig::new(CoreMicroarch::InOrder, mib(256.0)).is_err());
        let soc = SocConfig::baseline().unwrap();
        assert!(soc.with_accelerator(Accelerator::HAMEED_H264, 1.5).is_err());
    }

    #[test]
    fn display_names_the_bundle() {
        let soc = SocConfig::new(CoreMicroarch::ForwardSlice, mib(4.0))
            .unwrap()
            .with_accelerator(Accelerator::HAMEED_H264, 0.25)
            .unwrap();
        let s = soc.to_string();
        assert!(s.contains("FSC") && s.contains("4MiB") && s.contains("25%"));
    }
}

#[cfg(test)]
mod design_space_tests {
    use super::*;
    use focal_core::{pareto_frontier, DesignPoint, E2oWeight, Scenario};

    #[test]
    fn enumerates_full_cartesian_product() {
        let candidates =
            design_space(&[1.0, 2.0], &[None, Some((Accelerator::HAMEED_H264, 0.25))]).unwrap();
        assert_eq!(candidates.len(), 3 * 2 * 2);
        // Names are unique bundles.
        let mut names: Vec<&str> = candidates.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn pareto_frontier_prunes_dominated_bundles() {
        let candidates = design_space(
            &[1.0, 2.0, 4.0],
            &[None, Some((Accelerator::HAMEED_H264, 0.3))],
        )
        .unwrap();
        let frontier = pareto_frontier(
            &candidates,
            &DesignPoint::reference(),
            Scenario::FixedWork,
            E2oWeight::EMBODIED_DOMINATED,
        );
        assert!(!frontier.is_empty());
        assert!(
            frontier.len() < candidates.len(),
            "something must be dominated"
        );
        let names: Vec<&str> = frontier.iter().map(|c| c.name.as_str()).collect();
        // Finding 10 at SoC scale: the FSC-for-InO swap at the baseline
        // LLC strictly dominates the baseline bundle (more performance at
        // lower NCF), so FSC+1MiB sits on the frontier and the plain
        // baseline does not.
        assert!(
            names.contains(&"SoC[FSC core, 1MiB LLC]"),
            "frontier: {names:?}"
        );
        assert!(
            !names.contains(&"SoC[InO core, 1MiB LLC]"),
            "the baseline must be dominated: {names:?}"
        );
    }

    #[test]
    fn invalid_options_propagate() {
        assert!(design_space(&[256.0], &[None]).is_err());
        assert!(design_space(&[1.0], &[Some((Accelerator::HAMEED_H264, 2.0))]).is_err());
    }
}
