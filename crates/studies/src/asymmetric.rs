//! §5.2 — asymmetric multicore (Figure 4, Findings #4–#5).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{DesignPoint, E2oWeight, Ncf, Result, Scenario, SweepSeries};
use focal_perf::{
    AsymmetricMulticore, LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore,
};

/// The chip sizes Figure 4 sweeps.
pub const BCE_SWEEP: [u32; 3] = [8, 16, 32];

/// The parallel fractions Figure 4 sweeps.
pub const F_SWEEP: [f64; 3] = [0.5, 0.8, 0.95];

/// The asymmetric-multicore study: one 4-BCE big core alongside one-BCE
/// small cores, versus same-size symmetric chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricStudy {
    /// Idle-core leakage fraction (paper: 0.2).
    pub gamma: LeakageFraction,
    /// Pollack rule for the big core (paper: √BCE).
    pub pollack: PollackRule,
    /// The big core's size in BCEs (paper: 4).
    pub big_core_bce: f64,
}

impl Default for AsymmetricStudy {
    fn default() -> Self {
        AsymmetricStudy {
            gamma: LeakageFraction::PAPER,
            pollack: PollackRule::CLASSIC,
            big_core_bce: 4.0,
        }
    }
}

impl AsymmetricStudy {
    /// The asymmetric chip's design point.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration leaves no small cores.
    pub fn asymmetric_point(&self, n: f64, f: ParallelFraction) -> Result<DesignPoint> {
        AsymmetricMulticore::new(n, self.big_core_bce)?.design_point(f, self.gamma, self.pollack)
    }

    /// The same-size symmetric comparator's design point.
    ///
    /// # Errors
    ///
    /// Returns an error for `n == 0`.
    pub fn symmetric_point(&self, n: u32, f: ParallelFraction) -> Result<DesignPoint> {
        SymmetricMulticore::unit_cores(n)?.design_point(f, self.gamma, self.pollack)
    }

    /// Builds Figure 4: four panels, each with `sym`/`asym` curves for
    /// f ∈ {0.5, 0.8, 0.95} over 8/16/32 BCEs, normalized to the one-BCE
    /// single-core processor.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in sweep.
    pub fn figure4(&self) -> Result<Figure> {
        self.figure4_sweep(&BCE_SWEEP, &F_SWEEP, &crate::labels::DEFAULT_WEIGHTS)
    }

    /// [`AsymmetricStudy::figure4`] over explicit BCE counts, parallel
    /// fractions and α regimes — the scenario compiler's entry point.
    ///
    /// # Errors
    ///
    /// Propagates constructor guards.
    pub fn figure4_sweep(&self, bces: &[u32], fs: &[f64], alphas: &[E2oWeight]) -> Result<Figure> {
        let reference = DesignPoint::reference();
        let mut panels = Vec::new();
        for &alpha in alphas {
            let alpha_name = crate::labels::weight_label_short(alpha);
            for scenario in Scenario::ALL {
                let mut series = Vec::new();
                for &fv in fs {
                    let f = ParallelFraction::new(fv)?;
                    let mut sym = SweepSeries::new(format!("sym {fv}"));
                    let mut asym = SweepSeries::new(format!("asym {fv}"));
                    for &n in bces {
                        let sp = self.symmetric_point(n, f)?;
                        sym.push_design(format!("{n} BCEs"), &sp, &reference, scenario, alpha);
                        let ap = self.asymmetric_point(n as f64, f)?;
                        asym.push_design(format!("{n} BCEs"), &ap, &reference, scenario, alpha);
                    }
                    series.push(sym);
                    series.push(asym);
                }
                panels.push(Panel::new(format!("({alpha_name}, {scenario})"), series));
            }
        }
        Ok(Figure::new(
            "fig4",
            "Asymmetric (1x4-BCE big + N-4 small) vs. symmetric multicores: \
             NCF vs. performance, N ∈ {8,16,32}, f ∈ {0.5,0.8,0.95}, γ = 0.2",
            panels,
        ))
    }

    /// Finding #4: heterogeneity is weakly sustainable — for 32 BCEs and
    /// f = 0.8 under operational dominance it cuts the footprint 4 %
    /// under fixed-work but adds 22 % under fixed-time (relative to the
    /// same-size symmetric chip, comparing Figure-4 NCF values).
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding4(&self) -> Result<Finding> {
        let f = ParallelFraction::new(0.8)?;
        let alpha = E2oWeight::OPERATIONAL_DOMINATED;
        let reference = DesignPoint::reference();
        let asym = self.asymmetric_point(32.0, f)?;
        let sym = self.symmetric_point(32, f)?;

        let ratio = |scenario| {
            Ncf::evaluate(&asym, &reference, scenario, alpha).value()
                / Ncf::evaluate(&sym, &reference, scenario, alpha).value()
        };
        let fw_saving = (1.0 - ratio(Scenario::FixedWork)) * 100.0;
        let ft_increase = (ratio(Scenario::FixedTime) - 1.0) * 100.0;

        Ok(Finding {
            id: 4,
            claim: "Heterogeneity is weakly sustainable",
            metrics: vec![
                Metric::new(
                    "fixed-work saving @32 BCE f=0.8, α=0.2 (%)",
                    4.0,
                    fw_saving,
                    1.0,
                ),
                Metric::new(
                    "fixed-time increase @32 BCE f=0.8, α=0.2 (%)",
                    22.0,
                    ft_increase,
                    1.0,
                ),
            ],
            qualitative_holds: fw_saving > 0.0 && ft_increase > 0.0,
            note: None,
        })
    }

    /// Finding #5: at modest parallelism an asymmetric 16-BCE chip beats a
    /// 32-BCE symmetric chip by 35 % performance at 28–50 % lower
    /// footprint; at f = 0.95 it still saves 38–50 % footprint but loses
    /// 23.5 % performance.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding5(&self) -> Result<Finding> {
        let reference = DesignPoint::reference();
        let footprint_saving = |x: &DesignPoint, y: &DesignPoint, scenario, alpha| {
            (1.0 - Ncf::evaluate(x, &reference, scenario, alpha).value()
                / Ncf::evaluate(y, &reference, scenario, alpha).value())
                * 100.0
        };

        // Modest parallelism.
        let f08 = ParallelFraction::new(0.8)?;
        let asym16 = self.asymmetric_point(16.0, f08)?;
        let sym32 = self.symmetric_point(32, f08)?;
        let perf_gain = (asym16.performance().get() / sym32.performance().get() - 1.0) * 100.0;
        let save_min = footprint_saving(
            &asym16,
            &sym32,
            Scenario::FixedTime,
            E2oWeight::OPERATIONAL_DOMINATED,
        );
        let save_max = footprint_saving(
            &asym16,
            &sym32,
            Scenario::FixedWork,
            E2oWeight::EMBODIED_DOMINATED,
        );

        // High parallelism.
        let f95 = ParallelFraction::new(0.95)?;
        let asym16_95 = self.asymmetric_point(16.0, f95)?;
        let sym32_95 = self.symmetric_point(32, f95)?;
        let perf_loss =
            (1.0 - asym16_95.performance().get() / sym32_95.performance().get()) * 100.0;
        let save95_min = footprint_saving(
            &asym16_95,
            &sym32_95,
            Scenario::FixedTime,
            E2oWeight::OPERATIONAL_DOMINATED,
        );

        Ok(Finding {
            id: 5,
            claim: "Heterogeneity improves performance sustainably only when software lacks high parallelism",
            metrics: vec![
                Metric::new("perf gain asym16 vs sym32 @f=0.8 (%)", 35.0, perf_gain, 1.0),
                Metric::new("min footprint saving @f=0.8 (%)", 28.0, save_min, 1.5),
                Metric::new("max footprint saving @f=0.8 (%)", 50.0, save_max, 1.0),
                Metric::new("perf loss asym16 vs sym32 @f=0.95 (%)", 23.5, perf_loss, 1.0),
                Metric::new("min footprint saving @f=0.95 (%)", 38.0, save95_min, 1.0),
            ],
            qualitative_holds: perf_gain > 0.0 && save_min > 0.0 && perf_loss > 0.0,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> AsymmetricStudy {
        AsymmetricStudy::default()
    }

    #[test]
    fn figure4_has_four_panels_with_six_series() {
        let fig = study().figure4().unwrap();
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 6); // (sym, asym) x 3 f-values
            for s in &p.series {
                assert_eq!(s.points.len(), BCE_SWEEP.len());
            }
        }
    }

    #[test]
    fn finding4_reproduces() {
        let f = study().finding4().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn finding5_reproduces() {
        let f = study().finding5().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn asym_curves_sit_left_of_sym_at_high_f() {
        // At f = 0.95 the asymmetric chip trades peak performance for a
        // smaller footprint (Figure 4's ③ annotation).
        let st = study();
        let f = ParallelFraction::new(0.95).unwrap();
        let asym = st.asymmetric_point(32.0, f).unwrap();
        let sym = st.symmetric_point(32, f).unwrap();
        // Same area, both normalized to the same reference.
        assert_eq!(asym.area().get(), sym.area().get());
    }

    #[test]
    fn asym_serial_boost_shows_at_low_f() {
        let st = study();
        let f = ParallelFraction::new(0.5).unwrap();
        let asym = st.asymmetric_point(16.0, f).unwrap();
        let sym = st.symmetric_point(16, f).unwrap();
        assert!(asym.performance().get() > sym.performance().get());
    }
}
