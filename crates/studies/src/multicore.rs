//! §5.1 — symmetric multicore (Figure 3, Findings #1–#3).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{DesignPoint, E2oWeight, Ncf, Result, Scenario, SweepSeries};
use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};

/// The BCE counts Figure 3 sweeps (powers of two, 1–32).
pub const BCE_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// The study configuration: γ and the Pollack rule (the paper's values by
/// default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreStudy {
    /// Idle-core leakage fraction (paper: 0.2).
    pub gamma: LeakageFraction,
    /// Single-big-core performance rule (paper: √BCE).
    pub pollack: PollackRule,
}

impl Default for MulticoreStudy {
    fn default() -> Self {
        MulticoreStudy {
            gamma: LeakageFraction::PAPER,
            pollack: PollackRule::CLASSIC,
        }
    }
}

impl MulticoreStudy {
    /// The NCF of an `n`-unit-core multicore running software with
    /// parallel fraction `f`, relative to the one-BCE single-core
    /// reference (the normalization of Figure 3).
    ///
    /// # Errors
    ///
    /// Returns an error for `n == 0`.
    pub fn multicore_ncf(
        &self,
        n: u32,
        f: ParallelFraction,
        scenario: Scenario,
        alpha: E2oWeight,
    ) -> Result<Ncf> {
        let chip = SymmetricMulticore::unit_cores(n)?;
        let dp = chip.design_point(f, self.gamma, self.pollack)?;
        Ok(Ncf::evaluate(
            &dp,
            &DesignPoint::reference(),
            scenario,
            alpha,
        ))
    }

    /// The design point of an `n`-unit-core multicore.
    ///
    /// # Errors
    ///
    /// Returns an error for `n == 0`.
    pub fn multicore_point(&self, n: u32, f: ParallelFraction) -> Result<DesignPoint> {
        SymmetricMulticore::unit_cores(n)?.design_point(f, self.gamma, self.pollack)
    }

    /// The design point of an `n`-BCE single big core (Pollack comparator).
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive `n`.
    pub fn big_core_point(&self, n: f64) -> Result<DesignPoint> {
        // f is irrelevant for one core; use 0 for clarity.
        SymmetricMulticore::big_core(n)?.design_point(
            ParallelFraction::new(0.0)?,
            self.gamma,
            self.pollack,
        )
    }

    /// Builds Figure 3: four panels (embodied/operational × fixed-work/
    /// fixed-time), each with one multicore curve per `f` plus the
    /// single-core (Pollack) curve; NCF and performance are normalized to
    /// the one-BCE single-core processor.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in sweep; the `Result` propagates
    /// constructor guards.
    pub fn figure3(&self) -> Result<Figure> {
        self.figure3_sweep(
            &BCE_SWEEP,
            &ParallelFraction::paper_sweep(),
            &crate::labels::DEFAULT_WEIGHTS,
        )
    }

    /// [`MulticoreStudy::figure3`] over explicit BCE counts, parallel
    /// fractions and α regimes — the entry point the scenario compiler
    /// lowers to. `figure3` delegates here with the paper's grids, so a
    /// scenario naming the same grids reproduces its CSV byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates constructor guards (e.g. a zero BCE count).
    pub fn figure3_sweep(
        &self,
        bces: &[u32],
        fs: &[ParallelFraction],
        alphas: &[E2oWeight],
    ) -> Result<Figure> {
        let reference = DesignPoint::reference();
        let mut panels = Vec::new();
        for &alpha in alphas {
            let alpha_name = crate::labels::weight_label_short(alpha);
            for scenario in Scenario::ALL {
                let mut series = Vec::new();
                for &f in fs {
                    let mut s = SweepSeries::new(format!("f={}", f.parallel()));
                    for &n in bces {
                        let dp = self.multicore_point(n, f)?;
                        s.push_design(format!("{n} BCEs"), &dp, &reference, scenario, alpha);
                    }
                    series.push(s);
                }
                let mut single = SweepSeries::new("single-core");
                for &n in bces {
                    let dp = self.big_core_point(n as f64)?;
                    s_push(&mut single, n, &dp, &reference, scenario, alpha);
                }
                series.push(single);
                panels.push(Panel::new(format!("({alpha_name}, {scenario})"), series));
            }
        }
        Ok(Figure::new(
            "fig3",
            "Symmetric multicore vs. single-core: NCF vs. performance, \
             N = 1..32 BCEs, f = 0.5..0.95, γ = 0.2",
            panels,
        ))
    }

    /// Finding #1: multicore is strongly sustainable vs. an equal-area big
    /// single core; at 32 BCEs and f = 0.95 under fixed-time the footprint
    /// falls 10 % (embodied dom) and 39 % (operational dom).
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding1(&self) -> Result<Finding> {
        let f = ParallelFraction::new(0.95)?;
        let multicore = self.multicore_point(32, f)?;
        let big = self.big_core_point(32.0)?;

        let ncf_emb = Ncf::evaluate(
            &multicore,
            &big,
            Scenario::FixedTime,
            E2oWeight::EMBODIED_DOMINATED,
        );
        let ncf_op = Ncf::evaluate(
            &multicore,
            &big,
            Scenario::FixedTime,
            E2oWeight::OPERATIONAL_DOMINATED,
        );

        // Strong sustainability must hold across the BCE sweep and both α
        // regimes.
        let mut strongly = true;
        for &n in &BCE_SWEEP[1..] {
            let mc = self.multicore_point(n, f)?;
            let bc = self.big_core_point(n as f64)?;
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                let c = focal_core::classify(&mc, &bc, alpha);
                strongly &= c.class == focal_core::Sustainability::Strongly;
            }
        }

        Ok(Finding {
            id: 1,
            claim: "Multicore is strongly sustainable, especially when the operational footprint dominates",
            metrics: vec![
                Metric::new(
                    "fixed-time saving @32 BCE f=0.95, α=0.8 (%)",
                    10.0,
                    ncf_emb.saving_percent(),
                    1.0,
                ),
                Metric::new(
                    "fixed-time saving @32 BCE f=0.95, α=0.2 (%)",
                    39.0,
                    ncf_op.saving_percent(),
                    1.0,
                ),
            ],
            qualitative_holds: strongly,
            note: None,
        })
    }

    /// Finding #2: parallelizing software is weakly sustainable — under
    /// operational dominance, raising f from 0.5 to 0.95 on a 32-BCE chip
    /// cuts the footprint 23 % (fixed-work) but raises it 53 %
    /// (fixed-time).
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding2(&self) -> Result<Finding> {
        let alpha = E2oWeight::OPERATIONAL_DOMINATED;
        let low = ParallelFraction::new(0.5)?;
        let high = ParallelFraction::new(0.95)?;

        let ratio = |scenario| -> Result<f64> {
            let ncf_low = self.multicore_ncf(32, low, scenario, alpha)?;
            let ncf_high = self.multicore_ncf(32, high, scenario, alpha)?;
            Ok(ncf_high.value() / ncf_low.value())
        };
        let fw_change = (1.0 - ratio(Scenario::FixedWork)?) * 100.0;
        let ft_change = (ratio(Scenario::FixedTime)? - 1.0) * 100.0;

        Ok(Finding {
            id: 2,
            claim: "Parallelizing software is weakly sustainable",
            metrics: vec![
                Metric::new(
                    "fixed-work reduction, f 0.5→0.95, α=0.2 (%)",
                    23.0,
                    fw_change,
                    1.0,
                ),
                Metric::new(
                    "fixed-time increase, f 0.5→0.95, α=0.2 (%)",
                    53.0,
                    ft_change,
                    1.0,
                ),
            ],
            qualitative_holds: fw_change > 0.0 && ft_change > 0.0,
            note: None,
        })
    }

    /// Finding #3: 16 BCEs + f = 0.95 beats 32 BCEs + f = 0.9 — 17 %
    /// higher performance at 30 % (op dom, ft) to 50 % (emb dom, fw) lower
    /// footprint.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding3(&self) -> Result<Finding> {
        let small = self.multicore_point(16, ParallelFraction::new(0.95)?)?;
        let big = self.multicore_point(32, ParallelFraction::new(0.9)?)?;
        let reference = DesignPoint::reference();

        let perf_gain = (small.performance().get() / big.performance().get() - 1.0) * 100.0;

        let footprint_ratio = |scenario, alpha| {
            Ncf::evaluate(&small, &reference, scenario, alpha).value()
                / Ncf::evaluate(&big, &reference, scenario, alpha).value()
        };
        let saving_ft_op =
            (1.0 - footprint_ratio(Scenario::FixedTime, E2oWeight::OPERATIONAL_DOMINATED)) * 100.0;
        let saving_fw_emb =
            (1.0 - footprint_ratio(Scenario::FixedWork, E2oWeight::EMBODIED_DOMINATED)) * 100.0;

        Ok(Finding {
            id: 3,
            claim: "Parallelizing software is a more sustainable way to improve performance than adding cores",
            metrics: vec![
                Metric::new("perf gain 16@0.95 vs 32@0.9 (%)", 17.0, perf_gain, 1.0),
                Metric::new("footprint saving (op dom, ft) (%)", 30.0, saving_ft_op, 1.5),
                Metric::new("footprint saving (emb dom, fw) (%)", 50.0, saving_fw_emb, 1.0),
            ],
            qualitative_holds: perf_gain > 0.0 && saving_ft_op > 0.0 && saving_fw_emb > 0.0,
            note: None,
        })
    }
}

fn s_push(
    series: &mut SweepSeries,
    n: u32,
    dp: &DesignPoint,
    reference: &DesignPoint,
    scenario: Scenario,
    alpha: E2oWeight,
) {
    series.push_design(format!("{n} BCEs"), dp, reference, scenario, alpha);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> MulticoreStudy {
        MulticoreStudy::default()
    }

    #[test]
    fn figure3_has_four_panels_with_six_series() {
        let fig = study().figure3().unwrap();
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 6); // 5 f-values + single-core
            for s in &p.series {
                assert_eq!(s.points.len(), BCE_SWEEP.len());
            }
        }
    }

    #[test]
    fn figure3_starts_at_the_reference_point() {
        // At N = 1 every curve passes through (perf 1, NCF 1).
        let fig = study().figure3().unwrap();
        for p in &fig.panels {
            for s in &p.series {
                let first = &s.points[0];
                assert!((first.performance - 1.0).abs() < 1e-12, "{}", s.name);
                assert!((first.ncf - 1.0).abs() < 1e-12, "{}", s.name);
            }
        }
    }

    #[test]
    fn figure3_single_core_curve_uses_pollack() {
        let fig = study().figure3().unwrap();
        let single = fig.panels[0]
            .series
            .iter()
            .find(|s| s.name == "single-core")
            .unwrap();
        // Performance of the 32-BCE big core is √32 ≈ 5.657.
        let last = single.points.last().unwrap();
        assert!((last.performance - 32.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn finding1_reproduces() {
        let f = study().finding1().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn finding2_reproduces() {
        let f = study().finding2().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn finding3_reproduces() {
        let f = study().finding3().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn multicore_beats_big_core_on_ncf_for_parallel_software() {
        // The qualitative shape of Figure 3: at f = 0.95, the multicore
        // curve lies below-right of the single-core curve.
        let st = study();
        let f = ParallelFraction::new(0.95).unwrap();
        let mc = st.multicore_point(32, f).unwrap();
        let bc = st.big_core_point(32.0).unwrap();
        assert!(mc.performance().get() > bc.performance().get());
        assert!(mc.power().get() < bc.power().get());
    }

    #[test]
    fn ncf_helper_matches_manual_evaluation() {
        let st = study();
        let f = ParallelFraction::new(0.8).unwrap();
        let via_helper = st
            .multicore_ncf(8, f, Scenario::FixedWork, E2oWeight::BALANCED)
            .unwrap()
            .value();
        let dp = st.multicore_point(8, f).unwrap();
        let manual = Ncf::evaluate(
            &dp,
            &DesignPoint::reference(),
            Scenario::FixedWork,
            E2oWeight::BALANCED,
        )
        .value();
        assert_eq!(via_helper, manual);
    }
}
