//! Extensions beyond the paper's evaluation (DESIGN.md §8): the dynamic
//! Hill–Marty topology, Gustafson-scaled workloads, deployment-rebound
//! analysis, and the reconfigurable-accelerator alternative the §5.4
//! discussion proposes.

use crate::figure::{Figure, Panel};
use focal_core::{
    classify, deployment_adjusted_weight, DesignPoint, E2oWeight, Result, Scenario, Sustainability,
    SweepSeries,
};
use focal_perf::{
    gustafson_speedup, DynamicMulticore, LeakageFraction, ParallelFraction, PollackRule,
    SymmetricMulticore,
};
use focal_uarch::{DarkSiliconSoc, FixedFunctionSuite, ReconfigurableFabric};

/// Extension study: the dynamic (fused/composable) multicore added to the
/// Figure-3 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicMulticoreStudy {
    /// Idle leakage (paper: 0.2).
    pub gamma: LeakageFraction,
    /// Pollack rule.
    pub pollack: PollackRule,
}

impl Default for DynamicMulticoreStudy {
    fn default() -> Self {
        DynamicMulticoreStudy {
            gamma: LeakageFraction::PAPER,
            pollack: PollackRule::CLASSIC,
        }
    }
}

impl DynamicMulticoreStudy {
    /// A Figure-3-style panel with symmetric, big-core and dynamic curves
    /// at a given `f`, under the given α and scenario.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in sweep.
    pub fn panel(
        &self,
        f: ParallelFraction,
        scenario: Scenario,
        alpha: E2oWeight,
    ) -> Result<Panel> {
        let reference = DesignPoint::reference();
        let mut sym = SweepSeries::new("symmetric");
        let mut dynamic = SweepSeries::new("dynamic");
        let mut big = SweepSeries::new("single-core");
        for &n in &[1u32, 2, 4, 8, 16, 32] {
            let s = SymmetricMulticore::unit_cores(n)?.design_point(f, self.gamma, self.pollack)?;
            sym.push_design(format!("{n} BCEs"), &s, &reference, scenario, alpha);
            let d = DynamicMulticore::new(n as f64)?.design_point(f, self.gamma, self.pollack)?;
            dynamic.push_design(format!("{n} BCEs"), &d, &reference, scenario, alpha);
            let b = SymmetricMulticore::big_core(n as f64)?.design_point(
                f,
                self.gamma,
                self.pollack,
            )?;
            big.push_design(format!("{n} BCEs"), &b, &reference, scenario, alpha);
        }
        Ok(Panel::new(
            format!("(f={}, {scenario}, {alpha})", f.parallel()),
            vec![sym, dynamic, big],
        ))
    }

    /// The headline question: is a dynamic multicore *more* sustainable
    /// than a symmetric one of the same size? Under fixed-work yes at
    /// high f (it converts serial idle leakage into useful speed); under
    /// fixed-time its always-full-power profile costs it.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in configuration.
    pub fn dynamic_vs_symmetric(
        &self,
        n: u32,
        f: ParallelFraction,
        alpha: E2oWeight,
    ) -> Result<Sustainability> {
        let dynamic = DynamicMulticore::new(n as f64)?.design_point(f, self.gamma, self.pollack)?;
        let symmetric =
            SymmetricMulticore::unit_cores(n)?.design_point(f, self.gamma, self.pollack)?;
        Ok(classify(&dynamic, &symmetric, alpha).class)
    }
}

/// Extension study: weak-scaling (Gustafson) workloads as the natural
/// fixed-time regime — the machine's extra throughput is filled with
/// extra work, and the right performance law is `S = (1 − f) + f·n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GustafsonStudy;

impl GustafsonStudy {
    /// Compares Amdahl vs Gustafson accounting for an `n`-core chip: the
    /// chip is physically identical (area, power), but the *work done*
    /// differs, which is precisely why the fixed-time scenario uses power
    /// as the operational proxy — energy-per-work falls as n grows even
    /// though power rises.
    ///
    /// Returns `(amdahl_speedup, gustafson_speedup, energy_per_work_ratio)`
    /// where the last value is the Gustafson energy per unit of work
    /// relative to single-core.
    ///
    /// # Errors
    ///
    /// Returns an error for `n == 0`.
    pub fn weak_scaling_energy(
        &self,
        n: u32,
        f: ParallelFraction,
        gamma: LeakageFraction,
    ) -> Result<(f64, f64, f64)> {
        let chip = SymmetricMulticore::unit_cores(n)?;
        let amdahl = chip.speedup(f, PollackRule::CLASSIC);
        let gustafson = gustafson_speedup(f, n)?;
        // Under weak scaling the chip runs the same wall-clock time as the
        // single core, drawing (approximately) its Woo-Lee average power,
        // and completes `gustafson` units of work — so energy per unit of
        // work is power / gustafson.
        let power = chip.power(f, gamma, PollackRule::CLASSIC);
        Ok((amdahl, gustafson, power / gustafson))
    }
}

/// Extension study: deployment rebound — efficiency gains increase the
/// number of devices manufactured, shifting the effective α toward
/// embodied (§3.7's second rebound channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeploymentReboundStudy;

impl DeploymentReboundStudy {
    /// Re-evaluates a comparison with the α weight adjusted for a
    /// `deployment_factor`× increase in units shipped, returning
    /// `(original verdict, adjusted verdict)`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive deployment factor.
    pub fn verdict_shift(
        &self,
        x: &DesignPoint,
        y: &DesignPoint,
        alpha: E2oWeight,
        deployment_factor: f64,
    ) -> Result<(Sustainability, Sustainability)> {
        let adjusted = deployment_adjusted_weight(alpha, deployment_factor)?;
        Ok((classify(x, y, alpha).class, classify(x, y, adjusted).class))
    }
}

/// Extension study: reconfigurable fabric vs. dark-silicon suite
/// (the §5.4 discussion, quantified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigurableStudy {
    /// The dark-silicon fixed-function suite.
    pub suite: FixedFunctionSuite,
    /// The reconfigurable alternative.
    pub fabric: ReconfigurableFabric,
}

impl ReconfigurableStudy {
    /// A representative configuration: 20 fixed accelerators of 10 % core
    /// area each (together the paper's two-thirds-dark chip) versus one
    /// fabric of 40 % core area at a 10× lower energy advantage.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn representative() -> Result<Self> {
        Ok(ReconfigurableStudy {
            suite: FixedFunctionSuite::new(20, 0.10, 500.0)?,
            fabric: ReconfigurableFabric::new(0.40, 50.0)?,
        })
    }

    /// The extension figure: NCF vs utilization for the bare dark-silicon
    /// SoC, the fixed suite and the fabric, under both α regimes.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn figure(&self) -> Result<Figure> {
        let mut panels = Vec::new();
        for (alpha, name) in [
            (E2oWeight::EMBODIED_DOMINATED, "embodied dominated"),
            (E2oWeight::OPERATIONAL_DOMINATED, "operational dominated"),
        ] {
            let mut fixed = SweepSeries::new("fixed suite (dark silicon)");
            let mut fabric = SweepSeries::new("reconfigurable fabric");
            let mut soc = SweepSeries::new("paper's 2/3-dark SoC");
            let paper_soc = DarkSiliconSoc::PAPER;
            for i in 0..=20 {
                let u = i as f64 / 20.0;
                fixed.push_raw(format!("u={u:.2}"), u, self.suite.ncf(u, alpha)?);
                fabric.push_raw(format!("u={u:.2}"), u, self.fabric.ncf(u, alpha)?);
                soc.push_raw(format!("u={u:.2}"), u, paper_soc.ncf(u, alpha)?);
            }
            panels.push(Panel::new(format!("({name})"), vec![fixed, fabric, soc]));
        }
        Ok(Figure::new(
            "ext_reconfig",
            "Extension: reconfigurable fabric vs. fixed-function dark silicon \
             (NCF vs. accelerated fraction of time)",
            panels,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focal_core::Ncf;

    #[test]
    fn dynamic_panel_has_three_series() {
        let study = DynamicMulticoreStudy::default();
        let f = ParallelFraction::new(0.8).unwrap();
        let panel = study
            .panel(f, Scenario::FixedWork, E2oWeight::OPERATIONAL_DOMINATED)
            .unwrap();
        assert_eq!(panel.series.len(), 3);
        // The dynamic curve reaches the highest performance.
        let max_perf = |s: &SweepSeries| s.max_performance().unwrap().performance;
        assert!(max_perf(&panel.series[1]) >= max_perf(&panel.series[0]));
        assert!(max_perf(&panel.series[1]) >= max_perf(&panel.series[2]));
    }

    #[test]
    fn dynamic_is_weakly_sustainable_vs_symmetric_at_high_f() {
        // Fixed-work: dynamic converts leakage into speed (lower energy);
        // fixed-time: it burns full power always (higher power) -> weak.
        let study = DynamicMulticoreStudy::default();
        let f = ParallelFraction::new(0.5).unwrap();
        let verdict = study
            .dynamic_vs_symmetric(32, f, E2oWeight::OPERATIONAL_DOMINATED)
            .unwrap();
        assert_eq!(verdict, Sustainability::Weakly);
    }

    #[test]
    fn gustafson_energy_per_work_falls_with_cores() {
        let study = GustafsonStudy;
        let f = ParallelFraction::new(0.9).unwrap();
        let (_, g8, e8) = study
            .weak_scaling_energy(8, f, LeakageFraction::PAPER)
            .unwrap();
        let (_, g32, e32) = study
            .weak_scaling_energy(32, f, LeakageFraction::PAPER)
            .unwrap();
        assert!(g32 > g8);
        assert!(
            e32 < e8,
            "energy per unit of (scaled) work falls: {e32} vs {e8}"
        );
    }

    #[test]
    fn gustafson_exceeds_amdahl() {
        let study = GustafsonStudy;
        let f = ParallelFraction::new(0.8).unwrap();
        let (a, g, _) = study
            .weak_scaling_energy(16, f, LeakageFraction::PAPER)
            .unwrap();
        assert!(g > a);
    }

    #[test]
    fn deployment_rebound_can_flip_a_verdict() {
        // An accelerator that wins at α = 0.2 but loses once a 6x
        // deployment rebound drags α toward embodied.
        let study = DeploymentReboundStudy;
        let x = focal_uarch::Accelerator::HAMEED_H264
            .design_point(0.10)
            .unwrap();
        let y = DesignPoint::reference();
        let (before, after) = study
            .verdict_shift(&x, &y, E2oWeight::OPERATIONAL_DOMINATED, 16.0)
            .unwrap();
        assert_eq!(before, Sustainability::Strongly);
        assert_eq!(after, Sustainability::Less);
    }

    #[test]
    fn deployment_rebound_identity_for_factor_one() {
        let study = DeploymentReboundStudy;
        let x = focal_uarch::PipelineGating::PAPER.design_point().unwrap();
        let y = DesignPoint::reference();
        let (before, after) = study
            .verdict_shift(&x, &y, E2oWeight::BALANCED, 1.0)
            .unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn reconfigurable_figure_shows_fabric_winning() {
        let study = ReconfigurableStudy::representative().unwrap();
        let fig = study.figure().unwrap();
        assert_eq!(fig.panels.len(), 2);
        for panel in &fig.panels {
            let fixed = &panel.series[0];
            let fabric = &panel.series[1];
            for (a, b) in fixed.points.iter().zip(&fabric.points) {
                assert!(b.ncf < a.ncf, "fabric below suite at u={}", a.performance);
            }
        }
    }

    #[test]
    fn ncf_helper_against_manual() {
        let study = ReconfigurableStudy::representative().unwrap();
        let alpha = E2oWeight::EMBODIED_DOMINATED;
        let manual = Ncf::evaluate(
            &study.fabric.design_point(0.5).unwrap(),
            &DesignPoint::reference(),
            Scenario::FixedWork,
            alpha,
        )
        .value();
        assert!((study.fabric.ncf(0.5, alpha).unwrap() - manual).abs() < 1e-12);
    }
}
