//! Shared series/panel label conventions.
//!
//! The hand-coded figures spell their α regimes two ways — Figures 3/4/7
//! abbreviate ("embodied dom") while Figures 5/6/8/9 write the long form
//! ("embodied dominated"). Scenario-compiled figures must reproduce the
//! hand-coded CSV bytes exactly, so both spellings live here as the single
//! source of truth and the hand-coded builders call these helpers too.

use focal_core::{E2oRange, E2oWeight};
use focal_wafer::YieldModel;

/// Tolerance for recognizing a weight as one of the paper's presets.
const PRESET_EPS: f64 = 1e-12;

/// The default α pair swept by every two-regime figure.
pub const DEFAULT_WEIGHTS: [E2oWeight; 2] = [
    E2oWeight::EMBODIED_DOMINATED,
    E2oWeight::OPERATIONAL_DOMINATED,
];

/// The default α uncertainty bands swept by the Figure 5 panels.
pub const DEFAULT_RANGES: [E2oRange; 2] = [
    E2oRange::EMBODIED_DOMINATED,
    E2oRange::OPERATIONAL_DOMINATED,
];

fn is_preset(alpha: E2oWeight, preset: E2oWeight) -> bool {
    (alpha.get() - preset.get()).abs() < PRESET_EPS
}

/// The abbreviated regime label used by Figures 3, 4 and 7
/// (`"embodied dom"` / `"operational dom"`); custom weights are labelled
/// by value.
pub fn weight_label_short(alpha: E2oWeight) -> String {
    if is_preset(alpha, E2oWeight::EMBODIED_DOMINATED) {
        "embodied dom".to_string()
    } else if is_preset(alpha, E2oWeight::OPERATIONAL_DOMINATED) {
        "operational dom".to_string()
    } else {
        format!("alpha={}", alpha.get())
    }
}

/// The long regime label used by Figures 6, 8 and 9
/// (`"embodied dominated"` / `"operational dominated"`).
pub fn weight_label_long(alpha: E2oWeight) -> String {
    if is_preset(alpha, E2oWeight::EMBODIED_DOMINATED) {
        "embodied dominated".to_string()
    } else if is_preset(alpha, E2oWeight::OPERATIONAL_DOMINATED) {
        "operational dominated".to_string()
    } else {
        format!("alpha={}", alpha.get())
    }
}

/// The band label used by the Figure 5 curves: presets get the long
/// regime name, custom bands are labelled `alpha=center±half`.
pub fn range_label(range: E2oRange) -> String {
    let preset = |p: E2oRange| {
        is_preset(range.center(), p.center())
            && (range.half_width() - p.half_width()).abs() < PRESET_EPS
    };
    if preset(E2oRange::EMBODIED_DOMINATED) {
        "embodied dominated".to_string()
    } else if preset(E2oRange::OPERATIONAL_DOMINATED) {
        "operational dominated".to_string()
    } else {
        format!("alpha={}±{}", range.center().get(), range.half_width())
    }
}

/// The series label Figure 1 gives a yield model (`"perfect yield"` /
/// `"Murphy model"`); other models use their short report label.
pub fn yield_model_label(model: YieldModel) -> String {
    match model {
        YieldModel::Perfect => "perfect yield".to_string(),
        YieldModel::Murphy => "Murphy model".to_string(),
        other => format!("{} model", other.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_weights_get_paper_spellings() {
        assert_eq!(
            weight_label_short(E2oWeight::EMBODIED_DOMINATED),
            "embodied dom"
        );
        assert_eq!(
            weight_label_long(E2oWeight::OPERATIONAL_DOMINATED),
            "operational dominated"
        );
        assert_eq!(
            range_label(E2oRange::EMBODIED_DOMINATED),
            "embodied dominated"
        );
    }

    #[test]
    fn custom_weights_are_labelled_by_value() {
        let w = E2oWeight::new(0.6).unwrap();
        assert_eq!(weight_label_short(w), "alpha=0.6");
        assert_eq!(weight_label_long(w), "alpha=0.6");
    }

    #[test]
    fn yield_models_match_figure1_series_names() {
        assert_eq!(yield_model_label(YieldModel::Perfect), "perfect yield");
        assert_eq!(yield_model_label(YieldModel::Murphy), "Murphy model");
        assert_eq!(yield_model_label(YieldModel::Seeds), "seeds model");
    }
}
