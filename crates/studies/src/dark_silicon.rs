//! §5.4 — dark silicon (Figure 5(b), Finding #7).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{E2oRange, E2oWeight, Result, SweepSeries};
use focal_uarch::DarkSiliconSoc;

/// Number of utilization grid points.
pub const UTILIZATION_STEPS: usize = 21;

/// The dark-silicon study: a SoC whose accelerators fill two thirds of the
/// die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DarkSiliconStudy {
    /// The SoC under study (paper: 2/3 accelerators, 500× energy).
    pub soc: DarkSiliconSoc,
}

impl Default for DarkSiliconStudy {
    fn default() -> Self {
        DarkSiliconStudy {
            soc: DarkSiliconSoc::PAPER,
        }
    }
}

impl DarkSiliconStudy {
    /// One NCF-vs-utilization curve (utilization on the x-axis).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn curve(&self, range: E2oRange, name: &str) -> Result<SweepSeries> {
        self.curve_grid(range, name, UTILIZATION_STEPS)
    }

    /// [`DarkSiliconStudy::curve`] over an explicit utilization grid.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points.
    pub fn curve_grid(&self, range: E2oRange, name: &str, steps: usize) -> Result<SweepSeries> {
        if steps < 2 {
            return Err(focal_core::ModelError::Inconsistent {
                constraint: "a utilization sweep needs at least two grid points",
            });
        }
        let mut s = SweepSeries::new(name);
        for i in 0..steps {
            let u = i as f64 / (steps - 1) as f64;
            s.push_raw(format!("u={u:.2}"), u, self.soc.ncf(u, range.center())?);
        }
        Ok(s)
    }

    /// Builds Figure 5(b): NCF vs. utilization for the 200 %-extra-area
    /// SoC, one curve per α regime.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn figure5b(&self) -> Result<Figure> {
        self.figure5b_grid(UTILIZATION_STEPS, &crate::labels::DEFAULT_RANGES)
    }

    /// [`DarkSiliconStudy::figure5b`] over an explicit utilization grid and
    /// α bands — the scenario compiler's entry point.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points.
    pub fn figure5b_grid(&self, steps: usize, ranges: &[E2oRange]) -> Result<Figure> {
        let mut curves = Vec::new();
        for &range in ranges {
            curves.push(self.curve_grid(range, &crate::labels::range_label(range), steps)?);
        }
        Ok(Figure::new(
            "fig5b",
            "Dark silicon (accelerators fill 2/3 of the chip): total footprint \
             normalized to the OoO core vs. fraction of time on accelerators",
            vec![Panel::new("(200% extra chip area)", curves)],
        ))
    }

    /// Finding #7: dark silicon is not sustainable — ≈ 2.5× the footprint
    /// when embodied emissions dominate; needs > 50 % utilization to break
    /// even when operational emissions dominate.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding7(&self) -> Result<Finding> {
        let emb = E2oWeight::EMBODIED_DOMINATED;
        let op = E2oWeight::OPERATIONAL_DOMINATED;
        // Representative utilization for the embodied-dominated headline.
        let ncf_emb = self.soc.ncf(0.25, emb)?;
        // The paper's SoC eventually breaks even under operational
        // dominance; a custom SoC that never does is reported, not a panic.
        let break_even_op =
            self.soc
                .break_even_utilization(op)
                .ok_or(focal_core::ModelError::Inconsistent {
                    constraint: "the SoC never breaks even within [0, 1] utilization",
                })?;
        // Qualitative: under embodied dominance, no utilization level saves.
        let mut never_saves_emb = true;
        for i in 0..=10 {
            never_saves_emb &= self.soc.ncf(i as f64 / 10.0, emb)? > 1.0;
        }

        Ok(Finding {
            id: 7,
            claim: "Dark silicon is not sustainable",
            metrics: vec![
                Metric::new("NCF (emb dom, ~25% use)", 2.5, ncf_emb, 0.1),
                Metric::new("break-even utilization (op dom)", 0.55, break_even_op, 0.1),
            ],
            qualitative_holds: never_saves_emb && break_even_op > 0.5,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> DarkSiliconStudy {
        DarkSiliconStudy::default()
    }

    #[test]
    fn figure5b_embodied_curve_stays_far_above_one() {
        let fig = study().figure5b().unwrap();
        let emb = &fig.panels[0].series[0];
        for p in &emb.points {
            assert!(p.ncf > 2.4, "u={}: {}", p.performance, p.ncf);
        }
    }

    #[test]
    fn figure5b_operational_curve_crosses_one_past_half() {
        let fig = study().figure5b().unwrap();
        let op = &fig.panels[0].series[1];
        let below: Vec<&focal_core::SweepPoint> =
            op.points.iter().filter(|p| p.ncf < 1.0).collect();
        assert!(!below.is_empty(), "high utilization must eventually save");
        // The first utilization that saves is above 0.5.
        assert!(below[0].performance > 0.5);
    }

    #[test]
    fn finding7_reproduces() {
        let f = study().finding7().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn figure5b_starts_at_max_penalty() {
        // Unused dark silicon under embodied dominance: NCF = 0.8·3 + 0.2.
        let fig = study().figure5b().unwrap();
        let emb = &fig.panels[0].series[0];
        assert!((emb.points[0].ncf - 2.6).abs() < 1e-9);
    }
}
