//! §6 — die shrink (Finding #17).

use crate::finding::{Finding, Metric};
use focal_core::{classify, E2oWeight, Result, Sustainability};
use focal_scaling::{DieShrink, ScalingRegime};

/// The die-shrink study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DieShrinkStudy;

impl DieShrinkStudy {
    /// Finding #17: a die shrink is strongly sustainable under both
    /// classical and post-Dennard scaling. (Under post-Dennard the
    /// fixed-time operational term is exactly flat, so "strongly" holds
    /// through the embodied saving alone.)
    ///
    /// # Errors
    ///
    /// Never fails for the built-in configurations.
    pub fn finding17(&self) -> Result<Finding> {
        let mut holds = true;
        let mut metrics = Vec::new();
        for regime in ScalingRegime::ALL {
            let shrink = DieShrink::next_node(regime);
            let (new, old) = shrink.design_points()?;
            for alpha in [
                E2oWeight::EMBODIED_DOMINATED,
                E2oWeight::OPERATIONAL_DOMINATED,
            ] {
                let class = classify(&new, &old, alpha).class;
                holds &= class == Sustainability::Strongly;
            }
            metrics.push(Metric::new(
                format!("embodied factor ({regime})"),
                0.626,
                shrink.embodied_factor(),
                0.001,
            ));
            metrics.push(Metric::new(
                format!("energy factor ({regime})"),
                match regime {
                    ScalingRegime::Classical => 1.0 / 2.82,
                    ScalingRegime::PostDennard => 1.0 / 1.41,
                },
                shrink.energy_factor(),
                0.01,
            ));
        }
        Ok(Finding {
            id: 17,
            claim: "A die shrink is strongly sustainable",
            metrics,
            qualitative_holds: holds,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding17_reproduces() {
        let f = DieShrinkStudy.finding17().unwrap();
        assert!(f.reproduces(), "{f}");
        assert_eq!(f.metrics.len(), 4);
    }
}
