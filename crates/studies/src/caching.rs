//! §5.5 — caching (Figure 6, Finding #8).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_cache::{CacheSize, MemoryBoundWorkload};
use focal_core::{DesignPoint, E2oWeight, Ncf, Result, Scenario, SweepSeries};

/// The caching study: a memory-bound workload with an LLC swept from 1 to
/// 16 MiB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachingStudy {
    /// The workload model (paper defaults via
    /// [`MemoryBoundWorkload::paper`]).
    pub workload: MemoryBoundWorkload,
}

impl CachingStudy {
    /// Creates the study with the paper's workload.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants.
    pub fn paper() -> Result<Self> {
        Ok(CachingStudy {
            workload: MemoryBoundWorkload::paper()?,
        })
    }

    /// One NCF-vs-performance curve for a scenario at a given α; points
    /// are the 1/2/4/8/16 MiB cache sizes, normalized to the 1 MiB
    /// configuration.
    ///
    /// # Errors
    ///
    /// Never fails for the paper sweep.
    pub fn curve(&self, scenario: Scenario, alpha: E2oWeight) -> Result<SweepSeries> {
        self.curve_sizes(scenario, alpha, &CacheSize::paper_sweep())
    }

    /// [`CachingStudy::curve`] over an explicit cache-size sweep.
    ///
    /// # Errors
    ///
    /// Returns an error for sizes outside the CACTI calibration.
    pub fn curve_sizes(
        &self,
        scenario: Scenario,
        alpha: E2oWeight,
        sizes: &[CacheSize],
    ) -> Result<SweepSeries> {
        let base = self.workload.design_point(self.workload.base_size())?;
        let mut s = SweepSeries::new(scenario.label());
        for &size in sizes {
            let dp = self.workload.design_point(size)?;
            s.push_design(size.to_string(), &dp, &base, scenario, alpha);
        }
        Ok(s)
    }

    /// Builds Figure 6: two panels (embodied/operational dominated), each
    /// with fixed-work and fixed-time curves over the cache-size sweep.
    ///
    /// # Errors
    ///
    /// Never fails for the paper sweep.
    pub fn figure6(&self) -> Result<Figure> {
        self.figure6_sweep(&CacheSize::paper_sweep(), &crate::labels::DEFAULT_WEIGHTS)
    }

    /// [`CachingStudy::figure6`] over explicit cache sizes and α regimes —
    /// the scenario compiler's entry point.
    ///
    /// # Errors
    ///
    /// Returns an error for sizes outside the CACTI calibration.
    pub fn figure6_sweep(&self, sizes: &[CacheSize], alphas: &[E2oWeight]) -> Result<Figure> {
        let mut panels = Vec::new();
        for &alpha in alphas {
            let name = crate::labels::weight_label_long(alpha);
            panels.push(Panel::new(
                format!("({name})"),
                vec![
                    self.curve_sizes(Scenario::FixedWork, alpha, sizes)?,
                    self.curve_sizes(Scenario::FixedTime, alpha, sizes)?,
                ],
            ));
        }
        Ok(Figure::new(
            "fig6",
            "Sustainability impact of last-level caches: NCF vs. performance \
             for 1-16 MiB LLCs (CACTI-65nm calibration, sqrt(2) miss rule)",
            panels,
        ))
    }

    /// Finding #8: caching is not sustainable when embodied emissions
    /// dominate; marginally weakly sustainable (small caches, fixed-work)
    /// when operational emissions dominate.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding8(&self) -> Result<Finding> {
        let base = self.workload.design_point(self.workload.base_size())?;
        let ncf = |mib: f64, scenario, alpha| -> Result<f64> {
            let dp = self.workload.design_point(CacheSize::from_mib(mib)?)?;
            Ok(Ncf::evaluate(&dp, &base, scenario, alpha).value())
        };

        // Embodied dominated: every size increases the footprint.
        let mut emb_never_saves = true;
        for mib in [2.0, 4.0, 8.0, 16.0] {
            for scenario in Scenario::ALL {
                emb_never_saves &= ncf(mib, scenario, E2oWeight::EMBODIED_DOMINATED)? > 1.0;
            }
        }
        // Operational dominated: a 2 MiB cache saves under fixed-work but
        // not under fixed-time (the "marginally weakly sustainable" case).
        let op_fw_2m = ncf(2.0, Scenario::FixedWork, E2oWeight::OPERATIONAL_DOMINATED)?;
        let op_ft_2m = ncf(2.0, Scenario::FixedTime, E2oWeight::OPERATIONAL_DOMINATED)?;
        let op_fw_16m = ncf(16.0, Scenario::FixedWork, E2oWeight::OPERATIONAL_DOMINATED)?;

        Ok(Finding {
            id: 8,
            claim:
                "Caching is not sustainable when embodied emissions dominate; at best marginally \
                    weakly sustainable when operational emissions dominate",
            metrics: vec![
                Metric::new(
                    "NCF_fw,0.2 @2MiB (<1: marginal saving)",
                    0.88,
                    op_fw_2m,
                    0.03,
                ),
                Metric::new("NCF_ft,0.2 @2MiB (>1: rebound loss)", 1.07, op_ft_2m, 0.03),
                Metric::new("NCF_fw,0.2 @16MiB (>1: too big)", 1.48, op_fw_16m, 0.06),
            ],
            qualitative_holds: emb_never_saves && op_fw_2m < 1.0 && op_ft_2m > 1.0,
            note: Some(
                "The 5%-of-energy LLC-access share and 15% residual core energy are model \
                 parameters the paper leaves implicit; see DESIGN.md.",
            ),
        })
    }

    /// The design point for one cache size, exposed for the examples.
    ///
    /// # Errors
    ///
    /// Returns an error for sizes outside the CACTI calibration.
    pub fn design_point(&self, size: CacheSize) -> Result<DesignPoint> {
        self.workload.design_point(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> CachingStudy {
        CachingStudy::paper().unwrap()
    }

    #[test]
    fn figure6_has_two_panels_with_two_curves() {
        let fig = study().figure6().unwrap();
        assert_eq!(fig.panels.len(), 2);
        for p in &fig.panels {
            assert_eq!(p.series.len(), 2);
            for s in &p.series {
                assert_eq!(s.points.len(), 5);
                // Performance spans 1.0 → 2.5 like the paper's x-axis.
                assert!((s.points[0].performance - 1.0).abs() < 1e-12);
                assert!((s.points[4].performance - 2.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn figure6_embodied_panel_rises_steeply() {
        let fig = study().figure6().unwrap();
        let emb_fw = &fig.panels[0].series[0];
        // 16 MiB under embodied dominance: NCF ≈ 4.1 (Fig 6(a) tops out
        // near 5 on its axis).
        let last = emb_fw.points.last().unwrap();
        assert!(last.ncf > 3.5 && last.ncf < 5.0, "got {}", last.ncf);
    }

    #[test]
    fn figure6_embodied_curves_rise_monotonically() {
        let fig = study().figure6().unwrap();
        for s in &fig.panels[0].series {
            for w in s.points.windows(2) {
                assert!(
                    w[1].ncf > w[0].ncf,
                    "{}: NCF must grow with cache size under embodied dominance",
                    s.name
                );
            }
        }
    }

    #[test]
    fn figure6_operational_fixed_work_dips_then_rises() {
        // The op-dom fixed-work curve is the one place caching pays off:
        // it dips below 1 at 2 MiB before the area term drags it back up.
        let fig = study().figure6().unwrap();
        let fw = &fig.panels[1].series[0];
        assert!(fw.points[1].ncf < 1.0, "2 MiB saves: {}", fw.points[1].ncf);
        assert!(fw.points[4].ncf > 1.0, "16 MiB loses: {}", fw.points[4].ncf);
    }

    #[test]
    fn finding8_reproduces() {
        let f = study().finding8().unwrap();
        assert!(f.reproduces(), "{f}");
    }

    #[test]
    fn base_point_is_unit() {
        let st = study();
        let base = st.design_point(CacheSize::from_mib(1.0).unwrap()).unwrap();
        assert!((base.performance().get() - 1.0).abs() < 1e-12);
        assert!((base.energy().get() - 1.0).abs() < 1e-12);
    }
}
