//! The complete registry: every figure and every finding of the paper,
//! regenerated in one call each. This is what the benchmark harness and
//! EXPERIMENTS.md are built from.

use crate::accelerator::AcceleratorStudy;
use crate::asymmetric::AsymmetricStudy;
use crate::caching::CachingStudy;
use crate::case_study::CaseStudy;
use crate::dark_silicon::DarkSiliconStudy;
use crate::die_shrink::DieShrinkStudy;
use crate::dvfs::DvfsStudy;
use crate::figure::Figure;
use crate::finding::Finding;
use crate::gating::GatingStudy;
use crate::microarch::MicroarchStudy;
use crate::multicore::MulticoreStudy;
use crate::speculation::SpeculationStudy;
use focal_core::Result;
use focal_engine::Engine;

/// The registry ids of the nine figures, in paper (and builder) order.
pub const FIGURE_IDS: [&str; 9] = [
    "fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9",
];

/// The registry ids of the 18 findings, matching the suite's
/// `finding-NN` naming.
pub const FINDING_IDS: [&str; 18] = [
    "finding-01",
    "finding-02",
    "finding-03",
    "finding-04",
    "finding-05",
    "finding-06",
    "finding-07",
    "finding-08",
    "finding-09",
    "finding-10",
    "finding-11",
    "finding-12",
    "finding-13",
    "finding-14",
    "finding-15",
    "finding-16",
    "finding-17",
    "finding-18",
];

/// The figure builders, in paper order. Each entry is an independent
/// `fn() -> Result<Figure>`, which is what lets the registry fan the
/// regeneration out across the engine without shared state.
const FIGURE_BUILDERS: [fn() -> Result<Figure>; 9] = [
    || crate::wafer_figure::figure1(),
    || MulticoreStudy::default().figure3(),
    || AsymmetricStudy::default().figure4(),
    || AcceleratorStudy::default().figure5a(),
    || DarkSiliconStudy::default().figure5b(),
    || CachingStudy::paper()?.figure6(),
    || MicroarchStudy.figure7(),
    || SpeculationStudy::default().figure8(),
    || CaseStudy::paper()?.figure9(),
];

/// The finding builders: finding `n` (1-based) is entry `n − 1`, with the
/// §7 case-study headline as entry 17 (id 18).
const FINDING_BUILDERS: [fn() -> Result<Finding>; 18] = [
    || MulticoreStudy::default().finding1(),
    || MulticoreStudy::default().finding2(),
    || MulticoreStudy::default().finding3(),
    || AsymmetricStudy::default().finding4(),
    || AsymmetricStudy::default().finding5(),
    || AcceleratorStudy::default().finding6(),
    || DarkSiliconStudy::default().finding7(),
    || CachingStudy::paper()?.finding8(),
    || MicroarchStudy.finding9(),
    || MicroarchStudy.finding10(),
    || MicroarchStudy.finding11(),
    || SpeculationStudy::default().finding12(),
    || SpeculationStudy::default().finding13(),
    || DvfsStudy::default().finding14(),
    || DvfsStudy::default().finding15(),
    || GatingStudy::default().finding16(),
    || DieShrinkStudy.finding17(),
    || CaseStudy::paper()?.headline(),
];

/// Whether a registry entry regenerates a figure or checks a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyKind {
    /// A paper figure (CSV-rendering panels of sweep series).
    Figure,
    /// A paper finding (paper-vs-measured metrics plus a verdict).
    Finding,
}

/// The output of one registry entry.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyOutput {
    /// A regenerated figure.
    Figure(Figure),
    /// A checked finding.
    Finding(Finding),
}

/// The builder behind one registry entry — the same `fn` pointers that
/// back [`all_figures_on`] / [`all_findings_on`], so a data-driven
/// consumer (the scenario compiler, the oracle tests) evaluates exactly
/// the code path the hand-coded suite runs.
#[derive(Debug, Clone, Copy)]
pub enum StudyBuilder {
    /// Builds a figure.
    Figure(fn() -> Result<Figure>),
    /// Builds a finding.
    Finding(fn() -> Result<Finding>),
}

/// One entry of the data-driven registry: a stable id, its kind, and the
/// hand-coded builder that serves as the oracle for any DSL twin.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// Stable id (`fig1`…`fig9`, `finding-01`…`finding-18`).
    pub id: &'static str,
    /// Figure or finding.
    pub kind: StudyKind,
    /// The hand-coded builder.
    pub builder: StudyBuilder,
}

impl RegistryEntry {
    /// Evaluates the entry's builder.
    ///
    /// # Errors
    ///
    /// Never fails for the paper's built-in configurations.
    pub fn build(&self) -> Result<StudyOutput> {
        match self.builder {
            StudyBuilder::Figure(f) => Ok(StudyOutput::Figure(f()?)),
            StudyBuilder::Finding(f) => Ok(StudyOutput::Finding(f()?)),
        }
    }
}

/// The complete data-driven registry: all 9 figures followed by all 18
/// findings, built from the same `fn` pointers as [`all_figures_on`] and
/// [`all_findings_on`] (so there is exactly one source of truth for what
/// each id computes).
pub fn builtin_registry() -> Vec<RegistryEntry> {
    let mut entries = Vec::with_capacity(FIGURE_IDS.len() + FINDING_IDS.len());
    for (id, build) in FIGURE_IDS.iter().zip(FIGURE_BUILDERS) {
        entries.push(RegistryEntry {
            id,
            kind: StudyKind::Figure,
            builder: StudyBuilder::Figure(build),
        });
    }
    for (id, build) in FINDING_IDS.iter().zip(FINDING_BUILDERS) {
        entries.push(RegistryEntry {
            id,
            kind: StudyKind::Finding,
            builder: StudyBuilder::Finding(build),
        });
    }
    entries
}

/// Regenerates every figure of the paper's evaluation (Figures 1 and 3–9;
/// Figure 2 is a conceptual illustration with no data series), in
/// parallel across the engine selected by `FOCAL_THREADS`.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_figures() -> Result<Vec<Figure>> {
    all_figures_on(&Engine::from_env())
}

/// [`all_figures`] on an explicit [`Engine`].
///
/// Every builder is a pure function and `par_map` preserves builder
/// order, so the output — down to the CSV bytes — is identical at every
/// thread count (pinned by `tests/engine_determinism.rs`).
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_figures_on(engine: &Engine) -> Result<Vec<Figure>> {
    engine
        .par_map(&FIGURE_BUILDERS, |build| build())
        .into_iter()
        .collect()
}

/// Recomputes all 17 findings plus the §7 case-study headline (id 18),
/// in parallel across the engine selected by `FOCAL_THREADS`.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_findings() -> Result<Vec<Finding>> {
    all_findings_on(&Engine::from_env())
}

/// [`all_findings`] on an explicit [`Engine`]; finding order (and every
/// measured metric) is thread-count invariant.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_findings_on(engine: &Engine) -> Result<Vec<Finding>> {
    engine
        .par_map(&FINDING_BUILDERS, |build| build())
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_regenerates() {
        let figs = all_figures().unwrap();
        assert_eq!(figs.len(), 9);
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9"]
        );
        for f in &figs {
            assert!(!f.panels.is_empty(), "{} has panels", f.id);
            for p in &f.panels {
                assert!(!p.series.is_empty(), "{}/{} has series", f.id, p.title);
            }
        }
    }

    /// The headline regression test of the whole reproduction: every
    /// finding's qualitative verdict and quantitative metrics match the
    /// paper.
    #[test]
    fn every_finding_reproduces() {
        let findings = all_findings().unwrap();
        assert_eq!(findings.len(), 18);
        for f in &findings {
            assert!(f.reproduces(), "Finding #{} failed:\n{f}", f.id);
        }
    }

    #[test]
    fn finding_ids_are_sequential() {
        let findings = all_findings().unwrap();
        for (i, f) in findings.iter().enumerate() {
            assert_eq!(f.id as usize, i + 1);
        }
    }

    #[test]
    fn builtin_registry_mirrors_the_builder_arrays() {
        let entries = builtin_registry();
        assert_eq!(entries.len(), 27);
        let figures = all_figures().unwrap();
        let findings = all_findings().unwrap();
        for (entry, fig) in entries.iter().take(FIGURE_IDS.len()).zip(&figures) {
            assert_eq!(entry.kind, StudyKind::Figure);
            assert_eq!(entry.id, fig.id);
            match entry.build().unwrap() {
                StudyOutput::Figure(built) => assert_eq!(built.to_csv(), fig.to_csv()),
                StudyOutput::Finding(f) => panic!("{} built a finding {f}", entry.id),
            }
        }
        for (entry, finding) in entries.iter().skip(FIGURE_IDS.len()).zip(&findings) {
            assert_eq!(entry.kind, StudyKind::Finding);
            assert_eq!(entry.id, format!("finding-{:02}", finding.id));
            match entry.build().unwrap() {
                StudyOutput::Finding(built) => assert_eq!(&built, finding),
                StudyOutput::Figure(f) => panic!("{} built figure {}", entry.id, f.id),
            }
        }
    }
}
