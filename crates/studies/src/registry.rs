//! The complete registry: every figure and every finding of the paper,
//! regenerated in one call each. This is what the benchmark harness and
//! EXPERIMENTS.md are built from.

use crate::accelerator::AcceleratorStudy;
use crate::asymmetric::AsymmetricStudy;
use crate::caching::CachingStudy;
use crate::case_study::CaseStudy;
use crate::dark_silicon::DarkSiliconStudy;
use crate::die_shrink::DieShrinkStudy;
use crate::dvfs::DvfsStudy;
use crate::figure::Figure;
use crate::finding::Finding;
use crate::gating::GatingStudy;
use crate::microarch::MicroarchStudy;
use crate::multicore::MulticoreStudy;
use crate::speculation::SpeculationStudy;
use focal_core::Result;

/// Regenerates every figure of the paper's evaluation (Figures 1 and 3–9;
/// Figure 2 is a conceptual illustration with no data series).
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_figures() -> Result<Vec<Figure>> {
    Ok(vec![
        crate::wafer_figure::figure1()?,
        MulticoreStudy::default().figure3()?,
        AsymmetricStudy::default().figure4()?,
        AcceleratorStudy::default().figure5a()?,
        DarkSiliconStudy::default().figure5b()?,
        CachingStudy::paper()?.figure6()?,
        MicroarchStudy.figure7()?,
        SpeculationStudy::default().figure8()?,
        CaseStudy::paper()?.figure9()?,
    ])
}

/// Recomputes all 17 findings plus the §7 case-study headline (id 18).
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_findings() -> Result<Vec<Finding>> {
    let multicore = MulticoreStudy::default();
    let asymmetric = AsymmetricStudy::default();
    let speculation = SpeculationStudy::default();
    let dvfs = DvfsStudy::default();
    Ok(vec![
        multicore.finding1()?,
        multicore.finding2()?,
        multicore.finding3()?,
        asymmetric.finding4()?,
        asymmetric.finding5()?,
        AcceleratorStudy::default().finding6()?,
        DarkSiliconStudy::default().finding7()?,
        CachingStudy::paper()?.finding8()?,
        MicroarchStudy.finding9()?,
        MicroarchStudy.finding10()?,
        MicroarchStudy.finding11()?,
        speculation.finding12()?,
        speculation.finding13()?,
        dvfs.finding14()?,
        dvfs.finding15()?,
        GatingStudy::default().finding16()?,
        DieShrinkStudy.finding17()?,
        CaseStudy::paper()?.headline()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_regenerates() {
        let figs = all_figures().unwrap();
        assert_eq!(figs.len(), 9);
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9"]
        );
        for f in &figs {
            assert!(!f.panels.is_empty(), "{} has panels", f.id);
            for p in &f.panels {
                assert!(!p.series.is_empty(), "{}/{} has series", f.id, p.title);
            }
        }
    }

    /// The headline regression test of the whole reproduction: every
    /// finding's qualitative verdict and quantitative metrics match the
    /// paper.
    #[test]
    fn every_finding_reproduces() {
        let findings = all_findings().unwrap();
        assert_eq!(findings.len(), 18);
        for f in &findings {
            assert!(f.reproduces(), "Finding #{} failed:\n{f}", f.id);
        }
    }

    #[test]
    fn finding_ids_are_sequential() {
        let findings = all_findings().unwrap();
        for (i, f) in findings.iter().enumerate() {
            assert_eq!(f.id as usize, i + 1);
        }
    }
}
