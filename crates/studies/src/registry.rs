//! The complete registry: every figure and every finding of the paper,
//! regenerated in one call each. This is what the benchmark harness and
//! EXPERIMENTS.md are built from.

use crate::accelerator::AcceleratorStudy;
use crate::asymmetric::AsymmetricStudy;
use crate::caching::CachingStudy;
use crate::case_study::CaseStudy;
use crate::dark_silicon::DarkSiliconStudy;
use crate::die_shrink::DieShrinkStudy;
use crate::dvfs::DvfsStudy;
use crate::figure::Figure;
use crate::finding::Finding;
use crate::gating::GatingStudy;
use crate::microarch::MicroarchStudy;
use crate::multicore::MulticoreStudy;
use crate::speculation::SpeculationStudy;
use focal_core::Result;
use focal_engine::Engine;

/// The figure builders, in paper order. Each entry is an independent
/// `fn() -> Result<Figure>`, which is what lets the registry fan the
/// regeneration out across the engine without shared state.
const FIGURE_BUILDERS: [fn() -> Result<Figure>; 9] = [
    || crate::wafer_figure::figure1(),
    || MulticoreStudy::default().figure3(),
    || AsymmetricStudy::default().figure4(),
    || AcceleratorStudy::default().figure5a(),
    || DarkSiliconStudy::default().figure5b(),
    || CachingStudy::paper()?.figure6(),
    || MicroarchStudy.figure7(),
    || SpeculationStudy::default().figure8(),
    || CaseStudy::paper()?.figure9(),
];

/// The finding builders: finding `n` (1-based) is entry `n − 1`, with the
/// §7 case-study headline as entry 17 (id 18).
const FINDING_BUILDERS: [fn() -> Result<Finding>; 18] = [
    || MulticoreStudy::default().finding1(),
    || MulticoreStudy::default().finding2(),
    || MulticoreStudy::default().finding3(),
    || AsymmetricStudy::default().finding4(),
    || AsymmetricStudy::default().finding5(),
    || AcceleratorStudy::default().finding6(),
    || DarkSiliconStudy::default().finding7(),
    || CachingStudy::paper()?.finding8(),
    || MicroarchStudy.finding9(),
    || MicroarchStudy.finding10(),
    || MicroarchStudy.finding11(),
    || SpeculationStudy::default().finding12(),
    || SpeculationStudy::default().finding13(),
    || DvfsStudy::default().finding14(),
    || DvfsStudy::default().finding15(),
    || GatingStudy::default().finding16(),
    || DieShrinkStudy.finding17(),
    || CaseStudy::paper()?.headline(),
];

/// Regenerates every figure of the paper's evaluation (Figures 1 and 3–9;
/// Figure 2 is a conceptual illustration with no data series), in
/// parallel across the engine selected by `FOCAL_THREADS`.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_figures() -> Result<Vec<Figure>> {
    all_figures_on(&Engine::from_env())
}

/// [`all_figures`] on an explicit [`Engine`].
///
/// Every builder is a pure function and `par_map` preserves builder
/// order, so the output — down to the CSV bytes — is identical at every
/// thread count (pinned by `tests/engine_determinism.rs`).
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_figures_on(engine: &Engine) -> Result<Vec<Figure>> {
    engine
        .par_map(&FIGURE_BUILDERS, |build| build())
        .into_iter()
        .collect()
}

/// Recomputes all 17 findings plus the §7 case-study headline (id 18),
/// in parallel across the engine selected by `FOCAL_THREADS`.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_findings() -> Result<Vec<Finding>> {
    all_findings_on(&Engine::from_env())
}

/// [`all_findings`] on an explicit [`Engine`]; finding order (and every
/// measured metric) is thread-count invariant.
///
/// # Errors
///
/// Never fails for the paper's built-in configurations.
pub fn all_findings_on(engine: &Engine) -> Result<Vec<Finding>> {
    engine
        .par_map(&FINDING_BUILDERS, |build| build())
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_regenerates() {
        let figs = all_figures().unwrap();
        assert_eq!(figs.len(), 9);
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9"]
        );
        for f in &figs {
            assert!(!f.panels.is_empty(), "{} has panels", f.id);
            for p in &f.panels {
                assert!(!p.series.is_empty(), "{}/{} has series", f.id, p.title);
            }
        }
    }

    /// The headline regression test of the whole reproduction: every
    /// finding's qualitative verdict and quantitative metrics match the
    /// paper.
    #[test]
    fn every_finding_reproduces() {
        let findings = all_findings().unwrap();
        assert_eq!(findings.len(), 18);
        for f in &findings {
            assert!(f.reproduces(), "Finding #{} failed:\n{f}", f.id);
        }
    }

    #[test]
    fn finding_ids_are_sequential() {
        let findings = all_findings().unwrap();
        for (i, f) in findings.iter().enumerate() {
            assert_eq!(f.id as usize, i + 1);
        }
    }
}
