//! Monte-Carlo robustness of the paper's verdicts (§3.5 quantified).
//!
//! The paper argues that conclusions reached *across ranges of scenarios
//! and weights* survive the inherent data uncertainty. This module makes
//! that argument quantitative: for each mechanism it samples α from the
//! paper's uncertainty band, jitters the proxy ratios, and reports the
//! probability that the verdict (footprint reduction or increase) holds.

use crate::taxonomy::{taxonomy, TaxonomyRow};
use focal_core::{
    DesignPoint, E2oRange, McSummary, MonteCarloNcf, Result, Scenario, Sustainability,
};
use focal_report::Table;

/// Robustness of one mechanism's verdict under sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRobustness {
    /// Mechanism name (from the taxonomy).
    pub mechanism: &'static str,
    /// The deterministic verdict at the α-band centers.
    pub verdict: Sustainability,
    /// Probability the fixed-work comparison lands on the verdict's side
    /// of 1, under sampled α and ±`ratio_jitter` proxy noise.
    pub fixed_work_agreement: f64,
    /// Same for the fixed-time comparison.
    pub fixed_time_agreement: f64,
}

impl VerdictRobustness {
    /// The smaller of the two agreements — the weakest link.
    pub fn min_agreement(&self) -> f64 {
        self.fixed_work_agreement.min(self.fixed_time_agreement)
    }
}

fn agreement(summary: &McSummary, expect_reduction: bool) -> f64 {
    if expect_reduction {
        summary.prob_reduction
    } else {
        1.0 - summary.prob_reduction
    }
}

/// Runs the Monte-Carlo robustness analysis over the full taxonomy.
///
/// `ratio_jitter` is the multiplicative noise (e.g. 0.1 = ±10 %) applied
/// independently to the embodied and operational proxy ratios; α is drawn
/// uniformly from the band matching each regime and the worse of the two
/// regimes is reported (conservative).
///
/// # Errors
///
/// Propagates model-construction errors; never fails for the built-in
/// taxonomy with `ratio_jitter ∈ [0, 1)`.
pub fn verdict_robustness(
    ratio_jitter: f64,
    samples: usize,
    seed: u64,
) -> Result<Vec<VerdictRobustness>> {
    verdict_robustness_on(
        &focal_engine::Engine::from_env(),
        ratio_jitter,
        samples,
        seed,
    )
}

/// [`verdict_robustness`] on an explicit engine: the Monte-Carlo sampler
/// uses chunked per-seed streams, so the agreements are bit-identical at
/// every thread count.
///
/// # Errors
///
/// Propagates model-construction errors; never fails for the built-in
/// taxonomy with `ratio_jitter ∈ [0, 1)`.
pub fn verdict_robustness_on(
    engine: &focal_engine::Engine,
    ratio_jitter: f64,
    samples: usize,
    seed: u64,
) -> Result<Vec<VerdictRobustness>> {
    let mut memo = None;
    verdict_robustness_with(engine, ratio_jitter, samples, seed, &mut memo)
}

/// [`verdict_robustness_on`] with an optional [`focal_core::SweepMemo`]:
/// every Monte-Carlo experiment is routed through
/// [`MonteCarloNcf::run_memo_on`], so a second sweep with the same
/// parameters (e.g. the scenario-DSL twin of the suite's robustness stage)
/// is answered from the cache. `None` falls back to the unmemoized path.
///
/// # Errors
///
/// See [`verdict_robustness`].
pub fn verdict_robustness_with(
    engine: &focal_engine::Engine,
    ratio_jitter: f64,
    samples: usize,
    seed: u64,
    memo: &mut Option<&mut focal_core::SweepMemo>,
) -> Result<Vec<VerdictRobustness>> {
    let rows = taxonomy()?;
    let reference = DesignPoint::reference();
    let mut out = Vec::new();
    for row in rows {
        let (x, y) = mechanism_points(&row, &reference)?;
        // Each regime is judged against the paper's verdict *for that
        // regime* (acceleration is Less under embodied dominance but
        // Strongly under operational dominance — Finding #6).
        let mut worst_fw: f64 = 1.0;
        let mut worst_ft: f64 = 1.0;
        for (range, regime_verdict) in [
            (E2oRange::EMBODIED_DOMINATED, row.paper_embodied),
            (E2oRange::OPERATIONAL_DOMINATED, row.paper_operational),
        ] {
            let mc = MonteCarloNcf::new(range, ratio_jitter, seed)?;
            let (fw, ft) = match memo.as_deref_mut() {
                Some(memo) => (
                    mc.run_memo_on(engine, &x, &y, Scenario::FixedWork, samples, memo)?,
                    mc.run_memo_on(engine, &x, &y, Scenario::FixedTime, samples, memo)?,
                ),
                None => (
                    mc.run_on(engine, &x, &y, Scenario::FixedWork, samples)?,
                    mc.run_on(engine, &x, &y, Scenario::FixedTime, samples)?,
                ),
            };
            let (expect_fw, expect_ft) = expectations(regime_verdict);
            worst_fw = worst_fw.min(agreement(&fw, expect_fw));
            worst_ft = worst_ft.min(agreement(&ft, expect_ft));
        }
        out.push(VerdictRobustness {
            mechanism: row.mechanism,
            verdict: row.worst(),
            fixed_work_agreement: worst_fw,
            fixed_time_agreement: worst_ft,
        });
    }
    Ok(out)
}

/// Which side of NCF = 1 each scenario should land on for a verdict.
fn expectations(verdict: Sustainability) -> (bool, bool) {
    match verdict {
        Sustainability::Strongly => (true, true),
        // Weakly (all taxonomy cases): wins fixed-work, loses fixed-time.
        Sustainability::Weakly => (true, false),
        Sustainability::Less | Sustainability::Indifferent => (false, false),
    }
}

/// Reconstructs the (x, y) design points behind a taxonomy row. The
/// taxonomy normalizes everything against the unit reference, so the row's
/// mechanism identifies the x-point generator.
fn mechanism_points(
    row: &TaxonomyRow,
    reference: &DesignPoint,
) -> Result<(DesignPoint, DesignPoint)> {
    use focal_perf::{LeakageFraction, ParallelFraction, PollackRule, SymmetricMulticore};
    let gamma = LeakageFraction::PAPER;
    let pollack = PollackRule::CLASSIC;
    Ok(match row.mechanism {
        "multicore (vs big core)" => {
            let f = ParallelFraction::new(0.95)?;
            (
                SymmetricMulticore::unit_cores(32)?.design_point(f, gamma, pollack)?,
                SymmetricMulticore::big_core(32.0)?.design_point(f, gamma, pollack)?,
            )
        }
        "heterogeneity (vs symmetric)" => {
            let f = ParallelFraction::new(0.8)?;
            let asym =
                focal_perf::AsymmetricMulticore::new(32.0, 4.0)?.design_point(f, gamma, pollack)?;
            let sym = SymmetricMulticore::unit_cores(32)?.design_point(f, gamma, pollack)?;
            (asym.normalized_to(&sym)?, *reference)
        }
        "hw acceleration @25% use" => (
            focal_uarch::Accelerator::HAMEED_H264.design_point(0.25)?,
            *reference,
        ),
        "dark silicon @25% use" => (
            focal_uarch::DarkSiliconSoc::PAPER.design_point(0.25)?,
            *reference,
        ),
        "caching (16 MiB LLC)" => {
            let w = focal_cache::MemoryBoundWorkload::paper()?;
            (
                w.design_point(focal_cache::CacheSize::from_mib(16.0)?)?,
                w.design_point(focal_cache::CacheSize::from_mib(1.0)?)?,
            )
        }
        "FSC core (vs OoO)" => (
            focal_uarch::CoreMicroarch::ForwardSlice.design_point()?,
            focal_uarch::CoreMicroarch::OutOfOrder.design_point()?,
        ),
        "speculation (PRE)" => (
            focal_uarch::PreciseRunahead::PAPER.design_point()?,
            *reference,
        ),
        "DVFS (scale down)" => {
            let core = focal_uarch::DvfsCore::default_core();
            (core.design_point(0.8)?, core.nominal_without_dvfs()?)
        }
        "turbo boost" => (
            focal_uarch::TurboBoost::default_turbo().design_point(1.2)?,
            *reference,
        ),
        "pipeline gating" => (
            focal_uarch::PipelineGating::PAPER.design_point()?,
            *reference,
        ),
        "die shrink" => {
            focal_scaling::DieShrink::next_node(focal_scaling::ScalingRegime::PostDennard)
                .design_points()?
        }
        _ => {
            return Err(focal_core::ModelError::Inconsistent {
                constraint: "unknown taxonomy mechanism name",
            })
        }
    })
}

/// Renders the robustness analysis as a table.
///
/// # Errors
///
/// See [`verdict_robustness`].
pub fn robustness_table(ratio_jitter: f64, samples: usize, seed: u64) -> Result<Table> {
    let mut table = Table::new(vec![
        "mechanism",
        "verdict",
        "P[fw side holds]",
        "P[ft side holds]",
    ]);
    for r in verdict_robustness(ratio_jitter, samples, seed)? {
        table.row(vec![
            r.mechanism.to_string(),
            r.verdict.to_string(),
            format!("{:.1}%", r.fixed_work_agreement * 100.0),
            format!("{:.1}%", r.fixed_time_agreement * 100.0),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_whole_taxonomy() {
        let rows = verdict_robustness(0.05, 2000, 7).unwrap();
        assert_eq!(rows.len(), taxonomy().unwrap().len());
    }

    /// With no jitter, verdicts that hold across their whole α band agree
    /// deterministically. Two mechanisms are *within-band marginal* even
    /// without noise — acceleration and dark silicon at 25 % use sit near
    /// their break-even α (Finding #6/#7's conditionality) — and must NOT
    /// report false certainty.
    #[test]
    fn zero_jitter_is_deterministic_for_band_stable_verdicts() {
        let marginal = ["hw acceleration @25% use", "dark silicon @25% use"];
        for r in verdict_robustness(0.0, 2000, 1).unwrap() {
            if marginal.contains(&r.mechanism) {
                assert!(
                    r.min_agreement() < 1.0,
                    "{} should be within-band marginal",
                    r.mechanism
                );
                continue;
            }
            assert!(
                r.min_agreement() > 0.99,
                "{}: fw {:.3} ft {:.3}",
                r.mechanism,
                r.fixed_work_agreement,
                r.fixed_time_agreement
            );
        }
    }

    /// Decisive verdicts (dark silicon, die shrink, turbo) survive ±10 %
    /// proxy noise with near-certainty; marginal ones (gating's 1-2 %
    /// savings) degrade gracefully rather than flipping.
    #[test]
    fn jitter_degrades_marginal_verdicts_gracefully() {
        let rows = verdict_robustness(0.10, 4000, 3).unwrap();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.mechanism == name)
                .unwrap_or_else(|| panic!("{name} in taxonomy"))
        };
        assert!(get("caching (16 MiB LLC)").min_agreement() > 0.99);
        // Turbo's fixed-work penalty under high-α sampling is only a few
        // percent, so ±10% noise erodes (without flipping) its certainty.
        assert!(get("turbo boost").min_agreement() > 0.85);
        // Post-Dennard die shrink: the fixed-work side is decisive, but
        // its fixed-time win rests entirely on the embodied saving (the
        // power ratio is exactly 1), so under low-α sampling with ±10%
        // noise that side is genuinely coin-flip territory.
        let shrink = get("die shrink");
        assert!(shrink.fixed_work_agreement > 0.99);
        assert!(shrink.fixed_time_agreement > 0.5);
        // Pipeline gating saves only ~1-8%: under ±10% noise the verdict
        // is genuinely uncertain, and the analysis must say so.
        let gating = get("pipeline gating");
        assert!(gating.min_agreement() > 0.4 && gating.min_agreement() < 0.95);
    }

    #[test]
    fn results_are_reproducible() {
        let a = verdict_robustness(0.05, 1000, 9).unwrap();
        let b = verdict_robustness(0.05, 1000, 9).unwrap();
        assert_eq!(a, b);
    }
}
