//! §5.9 — pipeline gating (Finding #16).

use crate::finding::{Finding, Metric};
use focal_core::{classify, DesignPoint, E2oWeight, Ncf, Result, Scenario, Sustainability};
use focal_uarch::PipelineGating;

/// The pipeline-gating study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingStudy {
    /// The gating configuration (paper: energy ×0.965, perf ×0.934, no
    /// area overhead).
    pub gating: PipelineGating,
}

impl Default for GatingStudy {
    fn default() -> Self {
        GatingStudy {
            gating: PipelineGating::PAPER,
        }
    }
}

impl GatingStudy {
    /// Finding #16: pipeline gating is strongly sustainable —
    /// `NCF_fw,0.8 = 0.99`, `NCF_ft,0.8 = 0.98`, `NCF_fw,0.2 = 0.97`,
    /// `NCF_ft,0.2 = 0.92`.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding16(&self) -> Result<Finding> {
        let base = DesignPoint::reference();
        let gated = self.gating.design_point()?;
        let val = |scenario, alpha: f64| -> Result<f64> {
            Ok(Ncf::evaluate(&gated, &base, scenario, E2oWeight::new(alpha)?).value())
        };
        let metrics = vec![
            Metric::new("NCF_fw,0.8", 0.99, val(Scenario::FixedWork, 0.8)?, 0.005),
            Metric::new("NCF_ft,0.8", 0.98, val(Scenario::FixedTime, 0.8)?, 0.005),
            Metric::new("NCF_fw,0.2", 0.97, val(Scenario::FixedWork, 0.2)?, 0.005),
            Metric::new("NCF_ft,0.2", 0.92, val(Scenario::FixedTime, 0.2)?, 0.005),
        ];
        let mut strongly = true;
        for alpha in [
            E2oWeight::EMBODIED_DOMINATED,
            E2oWeight::OPERATIONAL_DOMINATED,
        ] {
            strongly &= classify(&gated, &base, alpha).class == Sustainability::Strongly;
        }
        Ok(Finding {
            id: 16,
            claim: "Pipeline gating is strongly sustainable",
            metrics,
            qualitative_holds: strongly,
            note: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding16_reproduces() {
        let f = GatingStudy::default().finding16().unwrap();
        assert!(f.reproduces(), "{f}");
        assert_eq!(f.metrics.len(), 4);
    }
}
