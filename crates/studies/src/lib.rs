//! # focal-studies — every figure and finding of the paper, reproduced
//!
//! One module per archetypal design-choice study of §5–§7, each exposing
//! the paper figure it regenerates (as [`Figure`]) and the findings it
//! checks (as [`Finding`] with paper-vs-measured metrics):
//!
//! | Module | Paper | Regenerates |
//! |--------|-------|-------------|
//! | [`wafer_figure`] | §3.1 | Figure 1 |
//! | [`multicore`] | §5.1 | Figure 3, Findings 1–3 |
//! | [`asymmetric`] | §5.2 | Figure 4, Findings 4–5 |
//! | [`accelerator`] | §5.3 | Figure 5(a), Finding 6 |
//! | [`dark_silicon`] | §5.4 | Figure 5(b), Finding 7 |
//! | [`caching`] | §5.5 | Figure 6, Finding 8 |
//! | [`microarch`] | §5.6 | Figure 7, Findings 9–11 |
//! | [`speculation`] | §5.7 | Figure 8, Findings 12–13 |
//! | [`dvfs`] | §5.8 | Findings 14–15 |
//! | [`gating`] | §5.9 | Finding 16 |
//! | [`die_shrink`] | §6 | Finding 17 |
//! | [`case_study`] | §7 | Figure 9 |
//!
//! [`all_figures`] and [`all_findings`] regenerate everything at once.
//!
//! ## Example
//!
//! ```
//! let findings = focal_studies::all_findings()?;
//! assert!(findings.iter().all(|f| f.reproduces()));
//! # Ok::<(), focal_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod accelerator;
pub mod asymmetric;
pub mod caching;
pub mod case_study;
pub mod dark_silicon;
pub mod die_shrink;
pub mod dvfs;
pub mod extensions;
mod figure;
mod finding;
pub mod gating;
pub mod labels;
pub mod microarch;
pub mod multicore;
mod registry;
mod report;
pub mod robustness;
pub mod soc;
pub mod speculation;
pub mod taxonomy;
pub mod wafer_figure;

pub use figure::{Figure, Panel};
pub use finding::{Finding, Metric};
pub use registry::{
    all_figures, all_figures_on, all_findings, all_findings_on, builtin_registry, RegistryEntry,
    StudyBuilder, StudyKind, StudyOutput, FIGURE_IDS, FINDING_IDS,
};
pub use report::{findings_markdown, findings_summary_table};
