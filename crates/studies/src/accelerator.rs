//! §5.3 — hardware acceleration (Figure 5(a), Finding #6).

use crate::figure::{Figure, Panel};
use crate::finding::{Finding, Metric};
use focal_core::{E2oRange, Result, SweepSeries};
use focal_uarch::Accelerator;

/// Number of utilization grid points for the Figure 5 sweep.
pub const UTILIZATION_STEPS: usize = 21;

/// The acceleration study around Hameed et al.'s H.264 accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorStudy {
    /// The accelerator under study (paper: +6.5 % area, 500× energy).
    pub accelerator: Accelerator,
}

impl Default for AcceleratorStudy {
    fn default() -> Self {
        AcceleratorStudy {
            accelerator: Accelerator::HAMEED_H264,
        }
    }
}

impl AcceleratorStudy {
    /// One NCF-vs-utilization curve for an α band (the x-axis here is the
    /// fraction of time on the accelerator, stored in the series'
    /// `performance` slot as Figure 5 plots utilization horizontally).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn curve(&self, range: E2oRange, name: &str) -> Result<SweepSeries> {
        self.curve_grid(range, name, UTILIZATION_STEPS)
    }

    /// [`AcceleratorStudy::curve`] over an explicit utilization grid.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points.
    pub fn curve_grid(&self, range: E2oRange, name: &str, steps: usize) -> Result<SweepSeries> {
        if steps < 2 {
            return Err(focal_core::ModelError::Inconsistent {
                constraint: "a utilization sweep needs at least two grid points",
            });
        }
        let mut s = SweepSeries::new(name);
        for i in 0..steps {
            let u = i as f64 / (steps - 1) as f64;
            let ncf = self.accelerator.ncf(u, range.center())?;
            s.push_raw(format!("u={u:.2}"), u, ncf);
        }
        Ok(s)
    }

    /// Builds Figure 5(a): NCF vs. fraction of time on the accelerator,
    /// one curve per α regime.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in grid.
    pub fn figure5a(&self) -> Result<Figure> {
        self.figure5a_grid(UTILIZATION_STEPS, &crate::labels::DEFAULT_RANGES)
    }

    /// [`AcceleratorStudy::figure5a`] over an explicit utilization grid and
    /// α bands — the scenario compiler's entry point.
    ///
    /// # Errors
    ///
    /// Returns an error for a grid of fewer than two points.
    pub fn figure5a_grid(&self, steps: usize, ranges: &[E2oRange]) -> Result<Figure> {
        let mut curves = Vec::new();
        for &range in ranges {
            curves.push(self.curve_grid(range, &crate::labels::range_label(range), steps)?);
        }
        let panels = vec![Panel::new("(6.5% extra chip area)", curves)];
        Ok(Figure::new(
            "fig5a",
            "Hardware specialization: total footprint (normalized to the OoO \
             core) vs. fraction of time on the accelerator",
            panels,
        ))
    }

    /// Finding #6: acceleration is strongly sustainable when operational
    /// emissions dominate (break-even within a few percent utilization,
    /// NCF ≈ 0.61 at 50 % use); when embodied emissions dominate it needs
    /// ≈ 30 % utilization to break even.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn finding6(&self) -> Result<Finding> {
        let op = focal_core::E2oWeight::OPERATIONAL_DOMINATED;
        let emb = focal_core::E2oWeight::EMBODIED_DOMINATED;
        let ncf_half = self.accelerator.ncf(0.5, op)?;
        // The H.264 accelerator breaks even below full utilization under
        // both regimes; propagate an error instead of panicking if a
        // custom accelerator never does.
        let no_break_even = focal_core::ModelError::Inconsistent {
            constraint: "the accelerator never breaks even within [0, 1] utilization",
        };
        let break_even_emb = self
            .accelerator
            .break_even_utilization(emb)
            .ok_or(no_break_even.clone())?;
        let break_even_op = self
            .accelerator
            .break_even_utilization(op)
            .ok_or(no_break_even)?;

        Ok(Finding {
            id: 6,
            claim: "Hardware acceleration is strongly sustainable if the operational footprint dominates; \
                    under embodied dominance it must be used extensively",
            metrics: vec![
                Metric::new("NCF @50% utilization, α=0.2", 0.61, ncf_half, 0.01),
                Metric::new("break-even utilization, α=0.8", 0.30, break_even_emb, 0.05),
                // The paper quantifies this only as "a small fraction of
                // the time"; the closed form gives ≈ 1.6 %.
                Metric::new("break-even utilization, α=0.2", 0.016, break_even_op, 0.01),
            ],
            qualitative_holds: ncf_half < 1.0 && break_even_emb > 0.2 && break_even_op < 0.1,
            note: Some(
                "The paper states the footprint 'reduces by 60%' at 50% utilization; the model \
                 yields NCF ≈ 0.61, i.e. a reduction *to* ~60% (a 39% saving). We read the \
                 paper's figure, which shows the curve at ≈0.6, as the NCF value.",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> AcceleratorStudy {
        AcceleratorStudy::default()
    }

    #[test]
    fn figure5a_has_two_monotone_curves() {
        let fig = study().figure5a().unwrap();
        assert_eq!(fig.panels.len(), 1);
        let panel = &fig.panels[0];
        assert_eq!(panel.series.len(), 2);
        for s in &panel.series {
            assert_eq!(s.points.len(), UTILIZATION_STEPS);
            for w in s.points.windows(2) {
                assert!(w[1].ncf < w[0].ncf, "{} must fall with utilization", s.name);
            }
        }
    }

    #[test]
    fn embodied_curve_starts_above_one_operational_below_by_small_u() {
        let fig = study().figure5a().unwrap();
        let emb = &fig.panels[0].series[0];
        let op = &fig.panels[0].series[1];
        assert!(emb.points[0].ncf > 1.0);
        assert!(op.points[0].ncf > 1.0);
        // At 20 % utilization the operational curve is already saving.
        let op_at_02 = op
            .points
            .iter()
            .find(|p| (p.performance - 0.2).abs() < 1e-9)
            .unwrap();
        assert!(op_at_02.ncf < 1.0);
    }

    #[test]
    fn finding6_reproduces() {
        let f = study().finding6().unwrap();
        assert!(f.reproduces(), "{f}");
        assert!(f.note.is_some());
    }
}
