//! Per-chip embodied footprint: wafer footprint ÷ good chips per wafer.
//!
//! This module composes the geometry, yield and harvesting models into the
//! quantity FOCAL's Figure 1 plots: the embodied footprint *per chip* as a
//! function of die size, normalized to a 100 mm² reference die.

use crate::geometry::Wafer;
use crate::harvest::HarvestPolicy;
use crate::yield_model::{DefectDensity, YieldModel};
use focal_core::{ModelError, Result, SiliconArea};

/// A per-chip embodied-footprint model: a wafer, a yield model, a defect
/// density and a harvesting policy.
///
/// The absolute per-wafer footprint cancels out of all the normalized
/// quantities this model produces, which is exactly why FOCAL can use die
/// area as the embodied proxy despite not knowing the absolute footprint.
///
/// # Examples
///
/// ```
/// use focal_core::SiliconArea;
/// use focal_wafer::{DefectDensity, EmbodiedModel, Wafer, YieldModel};
///
/// let model = EmbodiedModel::new(Wafer::W300MM, YieldModel::Murphy, DefectDensity::TSMC_VOLUME);
/// let small = SiliconArea::from_mm2(100.0)?;
/// let big = SiliconArea::from_mm2(800.0)?;
/// // A big chip has a larger per-chip embodied footprint (Figure 1).
/// assert!(model.normalized_footprint(big, small)? > 8.0);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbodiedModel {
    wafer: Wafer,
    yield_model: YieldModel,
    defect_density: DefectDensity,
    harvest: HarvestPolicy,
}

impl EmbodiedModel {
    /// Creates a model with no harvesting.
    pub fn new(wafer: Wafer, yield_model: YieldModel, defect_density: DefectDensity) -> Self {
        EmbodiedModel {
            wafer,
            yield_model,
            defect_density,
            harvest: HarvestPolicy::none(),
        }
    }

    /// The paper's Figure 1 configurations: a 300 mm wafer at
    /// `D0 = 0.09 /cm²` with either perfect yield or the Murphy model.
    pub fn figure1_perfect() -> Self {
        EmbodiedModel::new(
            Wafer::W300MM,
            YieldModel::Perfect,
            DefectDensity::TSMC_VOLUME,
        )
    }

    /// See [`EmbodiedModel::figure1_perfect`].
    pub fn figure1_murphy() -> Self {
        EmbodiedModel::new(
            Wafer::W300MM,
            YieldModel::Murphy,
            DefectDensity::TSMC_VOLUME,
        )
    }

    /// Returns a copy with the given harvesting policy.
    #[must_use]
    pub fn with_harvest(mut self, harvest: HarvestPolicy) -> Self {
        self.harvest = harvest;
        self
    }

    /// The wafer used by this model.
    pub fn wafer(&self) -> Wafer {
        self.wafer
    }

    /// The yield model used (maps defect load to a fraction of good dies).
    pub fn yield_model(&self) -> YieldModel {
        self.yield_model
    }

    /// Good (sellable) chips per wafer for a die of the given size:
    /// de Vries gross count × effective yield.
    ///
    /// # Errors
    ///
    /// Returns an error if the die does not fit the wafer or the yield
    /// parameters are invalid.
    pub fn good_chips_per_wafer(&self, die: SiliconArea) -> Result<f64> {
        let gross = self.wafer.chips_de_vries(die)?;
        let y = self
            .harvest
            .effective_yield(self.yield_model, die, self.defect_density)?;
        Ok(gross * y)
    }

    /// Embodied footprint per chip in *wafer units*: `1 / good CPW`
    /// (the footprint of one whole wafer spread over its good chips).
    ///
    /// # Errors
    ///
    /// See [`EmbodiedModel::good_chips_per_wafer`].
    pub fn footprint_per_chip_wafer_units(&self, die: SiliconArea) -> Result<f64> {
        Ok(1.0 / self.good_chips_per_wafer(die)?)
    }

    /// Embodied footprint per chip normalized to a reference die size —
    /// the y-axis of Figure 1 (reference = 100 mm²).
    ///
    /// # Errors
    ///
    /// See [`EmbodiedModel::good_chips_per_wafer`].
    pub fn normalized_footprint(&self, die: SiliconArea, reference: SiliconArea) -> Result<f64> {
        Ok(self.footprint_per_chip_wafer_units(die)?
            / self.footprint_per_chip_wafer_units(reference)?)
    }

    /// Sweeps die sizes from `from_mm2` to `to_mm2` in `steps` equal steps
    /// (inclusive), returning `(die size mm², normalized footprint)` pairs
    /// normalized to `reference`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sweep bounds are invalid or any point fails
    /// to evaluate.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`.
    pub fn sweep_normalized(
        &self,
        from_mm2: f64,
        to_mm2: f64,
        steps: usize,
        reference: SiliconArea,
    ) -> Result<Vec<(f64, f64)>> {
        assert!(steps >= 2, "a sweep needs at least 2 points");
        if !(from_mm2.is_finite() && to_mm2.is_finite()) || from_mm2 <= 0.0 || to_mm2 <= from_mm2 {
            return Err(ModelError::Inconsistent {
                constraint: "sweep bounds must satisfy 0 < from < to and be finite",
            });
        }
        (0..steps)
            .map(|i| {
                let a = from_mm2 + (to_mm2 - from_mm2) * i as f64 / (steps - 1) as f64;
                let die = SiliconArea::from_mm2(a)?;
                Ok((a, self.normalized_footprint(die, reference)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Polynomial;

    fn die(mm2: f64) -> SiliconArea {
        SiliconArea::from_mm2(mm2).unwrap()
    }

    #[test]
    fn good_cpw_less_than_gross_under_murphy() {
        let m = EmbodiedModel::figure1_murphy();
        let gross = Wafer::W300MM.chips_de_vries(die(400.0)).unwrap();
        let good = m.good_chips_per_wafer(die(400.0)).unwrap();
        assert!(good < gross);
    }

    #[test]
    fn perfect_yield_good_cpw_equals_gross() {
        let m = EmbodiedModel::figure1_perfect();
        let gross = Wafer::W300MM.chips_de_vries(die(400.0)).unwrap();
        let good = m.good_chips_per_wafer(die(400.0)).unwrap();
        assert_eq!(good, gross);
    }

    #[test]
    fn reference_die_normalizes_to_one() {
        for m in [
            EmbodiedModel::figure1_perfect(),
            EmbodiedModel::figure1_murphy(),
        ] {
            let r = die(100.0);
            assert!((m.normalized_footprint(r, r).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    /// Figure 1: at 800 mm² the perfect-yield curve reaches ≈ 9.5× the
    /// 100 mm² footprint and the Murphy curve ≈ 17× (the figure's y-axis
    /// tops out at 20).
    #[test]
    fn figure1_endpoint_magnitudes() {
        let r = die(100.0);
        let perfect = EmbodiedModel::figure1_perfect()
            .normalized_footprint(die(800.0), r)
            .unwrap();
        let murphy = EmbodiedModel::figure1_murphy()
            .normalized_footprint(die(800.0), r)
            .unwrap();
        assert!(perfect > 9.0 && perfect < 10.0, "perfect: {perfect}");
        assert!(murphy > 16.0 && murphy < 18.0, "murphy: {murphy}");
        assert!(murphy > perfect);
    }

    /// Figure 1 trendlines: perfect yield is ≈ linear in die size, Murphy
    /// ≈ second-degree polynomial.
    #[test]
    fn figure1_trendline_shapes() {
        let r = die(100.0);
        let perfect: Vec<(f64, f64)> = EmbodiedModel::figure1_perfect()
            .sweep_normalized(100.0, 800.0, 15, r)
            .unwrap();
        let murphy: Vec<(f64, f64)> = EmbodiedModel::figure1_murphy()
            .sweep_normalized(100.0, 800.0, 15, r)
            .unwrap();

        let (px, py): (Vec<f64>, Vec<f64>) = perfect.into_iter().unzip();
        let (mx, my): (Vec<f64>, Vec<f64>) = murphy.into_iter().unzip();

        let lin = Polynomial::fit(&px, &py, 1).unwrap();
        assert!(lin.r_squared(&px, &py) > 0.995, "perfect yield ≈ linear");

        let lin_m = Polynomial::fit(&mx, &my, 1).unwrap();
        let quad_m = Polynomial::fit(&mx, &my, 2).unwrap();
        assert!(quad_m.r_squared(&mx, &my) > 0.999);
        assert!(quad_m.r_squared(&mx, &my) > lin_m.r_squared(&mx, &my));
        // The quadratic term is genuinely positive (super-linear growth).
        assert!(quad_m.coefficients()[2] > 0.0);
    }

    #[test]
    fn footprint_monotone_in_die_size() {
        let m = EmbodiedModel::figure1_murphy();
        let r = die(100.0);
        let mut prev = 0.0;
        for a in [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0] {
            let v = m.normalized_footprint(die(a), r).unwrap();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn harvesting_recovers_toward_perfect() {
        let r = die(100.0);
        let a = die(800.0);
        let murphy = EmbodiedModel::figure1_murphy();
        let half = murphy.with_harvest(HarvestPolicy::new(0.5).unwrap());
        let full = murphy.with_harvest(HarvestPolicy::full());
        let perfect = EmbodiedModel::figure1_perfect();

        let f_murphy = murphy.normalized_footprint(a, r).unwrap();
        let f_half = half.normalized_footprint(a, r).unwrap();
        let f_full = full.normalized_footprint(a, r).unwrap();
        let f_perfect = perfect.normalized_footprint(a, r).unwrap();

        assert!(f_half < f_murphy);
        assert!((f_full - f_perfect).abs() < 1e-9);
    }

    #[test]
    fn sweep_validates_bounds() {
        let m = EmbodiedModel::figure1_perfect();
        let r = die(100.0);
        assert!(m.sweep_normalized(800.0, 100.0, 5, r).is_err());
        assert!(m.sweep_normalized(-5.0, 100.0, 5, r).is_err());
        let pts = m.sweep_normalized(100.0, 800.0, 8, r).unwrap();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].0, 100.0);
        assert_eq!(pts[7].0, 800.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn sweep_panics_on_single_step() {
        let m = EmbodiedModel::figure1_perfect();
        let _ = m.sweep_normalized(100.0, 800.0, 1, die(100.0));
    }
}
