//! Die harvesting (binning): selling partially-defective chips as
//! lower-performance products.
//!
//! §3.1 of the paper: *"In practice, to maximize profit, industry increases
//! the effective yield by turning off or bypassing defective circuit blocks
//! in large chips, selling those chips as lower-performance, lower-power
//! products. In fact, profit is maximized when all defective chips can be
//! sold as alternative products, thereby approaching the perfect yield
//! model curve."*
//!
//! [`HarvestPolicy`] interpolates between a raw yield model (no harvesting)
//! and perfect yield (full harvesting).

use crate::yield_model::{DefectDensity, YieldModel};
use focal_core::{ModelError, Result, SiliconArea};

/// A harvesting policy: the fraction of *defective* dies that can still be
/// sold as lower-bin products.
///
/// Effective yield is `Y_eff = Y + salvage · (1 − Y)`:
/// `salvage = 0` reproduces the raw yield model, `salvage = 1` the perfect
/// yield bound.
///
/// # Examples
///
/// ```
/// use focal_core::SiliconArea;
/// use focal_wafer::{DefectDensity, HarvestPolicy, YieldModel};
///
/// let die = SiliconArea::from_mm2(600.0)?;
/// let none = HarvestPolicy::none();
/// let full = HarvestPolicy::full();
/// let y_raw = none.effective_yield(YieldModel::Murphy, die, DefectDensity::TSMC_VOLUME)?;
/// let y_full = full.effective_yield(YieldModel::Murphy, die, DefectDensity::TSMC_VOLUME)?;
/// assert!(y_raw < 1.0);
/// assert_eq!(y_full, 1.0);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct HarvestPolicy {
    salvage_fraction: f64,
}

impl HarvestPolicy {
    /// No harvesting: defective dies are scrapped.
    pub fn none() -> Self {
        HarvestPolicy {
            salvage_fraction: 0.0,
        }
    }

    /// Full harvesting: every defective die is sold in some bin
    /// (the perfect-yield bound the paper describes industry approaching).
    pub fn full() -> Self {
        HarvestPolicy {
            salvage_fraction: 1.0,
        }
    }

    /// A policy salvaging the given fraction of defective dies.
    ///
    /// # Errors
    ///
    /// Returns an error if `salvage_fraction` is outside `[0, 1]`.
    pub fn new(salvage_fraction: f64) -> Result<Self> {
        if !salvage_fraction.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "salvage fraction",
                value: salvage_fraction,
            });
        }
        if !(0.0..=1.0).contains(&salvage_fraction) {
            return Err(ModelError::OutOfRange {
                parameter: "salvage fraction",
                value: salvage_fraction,
                expected: "[0, 1]",
            });
        }
        Ok(HarvestPolicy { salvage_fraction })
    }

    /// The salvaged fraction of defective dies.
    #[inline]
    pub fn salvage_fraction(&self) -> f64 {
        self.salvage_fraction
    }

    /// The effective (sellable) yield under this policy.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the yield model.
    pub fn effective_yield(
        &self,
        model: YieldModel,
        die: SiliconArea,
        d0: DefectDensity,
    ) -> Result<f64> {
        model.validate()?;
        let y = model.fraction_good(die, d0);
        Ok(y + self.salvage_fraction * (1.0 - y))
    }
}

impl Default for HarvestPolicy {
    /// Defaults to no harvesting (the conservative assumption).
    fn default() -> Self {
        HarvestPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> SiliconArea {
        SiliconArea::from_mm2(600.0).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(HarvestPolicy::new(0.5).is_ok());
        assert!(HarvestPolicy::new(-0.1).is_err());
        assert!(HarvestPolicy::new(1.1).is_err());
        assert!(HarvestPolicy::new(f64::NAN).is_err());
    }

    #[test]
    fn no_harvest_equals_raw_yield() {
        let raw = YieldModel::Murphy.fraction_good(die(), DefectDensity::TSMC_VOLUME);
        let eff = HarvestPolicy::none()
            .effective_yield(YieldModel::Murphy, die(), DefectDensity::TSMC_VOLUME)
            .unwrap();
        assert_eq!(raw, eff);
    }

    #[test]
    fn full_harvest_is_perfect_yield() {
        let eff = HarvestPolicy::full()
            .effective_yield(YieldModel::Poisson, die(), DefectDensity::TSMC_VOLUME)
            .unwrap();
        assert_eq!(eff, 1.0);
    }

    #[test]
    fn effective_yield_monotone_in_salvage() {
        let mut prev = 0.0;
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let eff = HarvestPolicy::new(s)
                .unwrap()
                .effective_yield(YieldModel::Murphy, die(), DefectDensity::TSMC_VOLUME)
                .unwrap();
            assert!(eff >= prev);
            prev = eff;
        }
    }

    #[test]
    fn effective_yield_validates_model_params() {
        let res = HarvestPolicy::none().effective_yield(
            YieldModel::NegativeBinomial { alpha: -1.0 },
            die(),
            DefectDensity::TSMC_VOLUME,
        );
        assert!(res.is_err());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(HarvestPolicy::default(), HarvestPolicy::none());
        assert_eq!(HarvestPolicy::default().salvage_fraction(), 0.0);
    }
}
