//! # focal-wafer — wafer geometry, yield and embodied-carbon substrate
//!
//! FOCAL's embodied-footprint proxy is chip area because, to first order,
//! the embodied footprint per chip is the (fixed) wafer footprint divided
//! by the number of good chips per wafer, which falls as dies grow (§3.1
//! of the paper). This crate builds that whole chain:
//!
//! * [`Wafer`] — chips-per-wafer by the de Vries empirical formula, the
//!   naive area ratio, and exact rasterized die placement with scribe lanes
//!   and edge exclusion.
//! * [`YieldModel`] / [`DefectDensity`] — Murphy (used in Figure 1),
//!   Poisson, Seeds, Bose–Einstein and negative-binomial yield.
//! * [`HarvestPolicy`] — die binning toward the perfect-yield bound.
//! * [`EmbodiedModel`] — per-chip embodied footprint; regenerates Figure 1.
//! * [`ScopeBreakdown`] / [`ManufacturingTrend`] — GHG scopes 1/2/3 and
//!   the Imec per-node/per-year manufacturing-footprint growth used by the
//!   die-shrink analysis (§6).
//! * [`Polynomial`] — the least-squares trendlines Figure 1 overlays.
//!
//! ## Example: Figure 1 in five lines
//!
//! ```
//! use focal_core::SiliconArea;
//! use focal_wafer::EmbodiedModel;
//!
//! let reference = SiliconArea::from_mm2(100.0)?;
//! let murphy = EmbodiedModel::figure1_murphy();
//! for (die_mm2, footprint) in murphy.sweep_normalized(100.0, 800.0, 8, reference)? {
//!     println!("{die_mm2:6.0} mm² -> {footprint:.2}x");
//! }
//! # Ok::<(), focal_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod cost;
mod defect_sim;
mod embodied;
mod fab;
mod fit;
mod geometry;
mod harvest;
mod scopes;
mod yield_model;

pub use cost::WaferEconomics;
pub use defect_sim::{DefectDistribution, DefectSimulator, SimulatedYield};
pub use embodied::EmbodiedModel;
pub use fab::ManufacturingTrend;
pub use fit::Polynomial;
pub use geometry::{DieGrid, DiePlacement, PlacedDie, Wafer};
pub use harvest::HarvestPolicy;
pub use scopes::ScopeBreakdown;
pub use yield_model::{DefectDensity, YieldModel};
