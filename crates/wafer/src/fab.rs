//! Manufacturing-footprint trends across technology nodes, after Imec's
//! DTCO/PPACE analysis \[16\] as quoted by the paper.
//!
//! The paper uses two formulations of the same Imec data:
//!
//! * **Annual growth** (§3.1): energy per wafer (scope 2) grows ≈ 11.9 %
//!   per year; chemicals/gases (scope 1) grow ≈ 9.3 % per year.
//! * **Per node transition** (§6): between two consecutive technology
//!   nodes, scope 2 grows 25.2 % and scope 1 grows 19.5 %.
//!
//! [`ManufacturingTrend`] captures both and projects a per-wafer
//! [`ScopeBreakdown`] forward by years or node transitions.

use crate::scopes::ScopeBreakdown;
use focal_core::{ModelError, Result};

/// Imec-derived growth rates of the per-wafer manufacturing footprint.
///
/// # Examples
///
/// ```
/// use focal_wafer::ManufacturingTrend;
///
/// let trend = ManufacturingTrend::IMEC;
/// // One node transition: scope 2 grows 25.2 %.
/// let f = trend.scope2_node_factor(1);
/// assert!((f - 1.252).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManufacturingTrend {
    /// Annual growth rate of scope-1 (chemicals/gases) emissions per wafer.
    pub scope1_annual_growth: f64,
    /// Annual growth rate of scope-2 (energy) emissions per wafer.
    pub scope2_annual_growth: f64,
    /// Per-node-transition growth of scope-1 emissions per wafer.
    pub scope1_node_growth: f64,
    /// Per-node-transition growth of scope-2 emissions per wafer.
    pub scope2_node_growth: f64,
}

impl ManufacturingTrend {
    /// The Imec numbers quoted by the paper: 9.3 %/yr and 19.5 %/node for
    /// scope 1; 11.9 %/yr and 25.2 %/node for scope 2.
    pub const IMEC: ManufacturingTrend = ManufacturingTrend {
        scope1_annual_growth: 0.093,
        scope2_annual_growth: 0.119,
        scope1_node_growth: 0.195,
        scope2_node_growth: 0.252,
    };

    /// Creates a custom trend.
    ///
    /// # Errors
    ///
    /// Returns an error if any growth rate is not finite or ≤ −100 %
    /// (which would make a footprint non-positive).
    pub fn new(
        scope1_annual_growth: f64,
        scope2_annual_growth: f64,
        scope1_node_growth: f64,
        scope2_node_growth: f64,
    ) -> Result<Self> {
        for (name, v) in [
            ("scope1 annual growth", scope1_annual_growth),
            ("scope2 annual growth", scope2_annual_growth),
            ("scope1 node growth", scope1_node_growth),
            ("scope2 node growth", scope2_node_growth),
        ] {
            if !v.is_finite() {
                return Err(ModelError::NotFinite {
                    parameter: name,
                    value: v,
                });
            }
            if v <= -1.0 {
                return Err(ModelError::OutOfRange {
                    parameter: name,
                    value: v,
                    expected: "(-1, +inf)",
                });
            }
        }
        Ok(ManufacturingTrend {
            scope1_annual_growth,
            scope2_annual_growth,
            scope1_node_growth,
            scope2_node_growth,
        })
    }

    /// Multiplicative scope-1 factor after `transitions` node transitions.
    pub fn scope1_node_factor(&self, transitions: u32) -> f64 {
        (1.0 + self.scope1_node_growth).powi(transitions as i32)
    }

    /// Multiplicative scope-2 factor after `transitions` node transitions.
    pub fn scope2_node_factor(&self, transitions: u32) -> f64 {
        (1.0 + self.scope2_node_growth).powi(transitions as i32)
    }

    /// Multiplicative scope-1 factor after `years` years.
    pub fn scope1_annual_factor(&self, years: f64) -> f64 {
        (1.0 + self.scope1_annual_growth).powf(years)
    }

    /// Multiplicative scope-2 factor after `years` years.
    pub fn scope2_annual_factor(&self, years: f64) -> f64 {
        (1.0 + self.scope2_annual_growth).powf(years)
    }

    /// Projects a per-wafer scope breakdown forward by `transitions` node
    /// transitions. Scope 3 is held constant: the paper provides no trend
    /// for it and FOCAL treats material footprint as first-order flat per
    /// wafer.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the breakdown arithmetic.
    pub fn project_nodes(
        &self,
        per_wafer: &ScopeBreakdown,
        transitions: u32,
    ) -> Result<ScopeBreakdown> {
        per_wafer.scaled_per_scope(
            self.scope1_node_factor(transitions),
            self.scope2_node_factor(transitions),
            1.0,
        )
    }

    /// Projects a per-wafer scope breakdown forward by `years` years.
    ///
    /// # Errors
    ///
    /// Returns an error if `years` is negative or not finite, or propagates
    /// breakdown arithmetic errors.
    pub fn project_years(&self, per_wafer: &ScopeBreakdown, years: f64) -> Result<ScopeBreakdown> {
        if !years.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "years",
                value: years,
            });
        }
        if years < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "years",
                value: years,
                expected: "[0, +inf)",
            });
        }
        per_wafer.scaled_per_scope(
            self.scope1_annual_factor(years),
            self.scope2_annual_factor(years),
            1.0,
        )
    }

    /// The paper's §6 headline: the combined manufacturing footprint of a
    /// wafer grows by ≈ 25.2 % (scope-2-dominated approximation) per node.
    ///
    /// For a breakdown-free quick estimate the studies use the scope-2
    /// growth as *the* per-node wafer-footprint growth, as the paper does in
    /// its §7 case study ("chip area halves but the manufacturing footprint
    /// increases by 25.2 %").
    pub fn wafer_footprint_node_factor(&self, transitions: u32) -> f64 {
        self.scope2_node_factor(transitions)
    }
}

impl Default for ManufacturingTrend {
    /// Defaults to the Imec data.
    fn default() -> Self {
        ManufacturingTrend::IMEC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imec_constants_match_paper() {
        let t = ManufacturingTrend::IMEC;
        assert_eq!(t.scope1_annual_growth, 0.093);
        assert_eq!(t.scope2_annual_growth, 0.119);
        assert_eq!(t.scope1_node_growth, 0.195);
        assert_eq!(t.scope2_node_growth, 0.252);
        assert_eq!(ManufacturingTrend::default(), t);
    }

    #[test]
    fn constructor_validates() {
        assert!(ManufacturingTrend::new(0.1, 0.1, 0.2, 0.2).is_ok());
        assert!(ManufacturingTrend::new(-1.0, 0.1, 0.2, 0.2).is_err());
        assert!(ManufacturingTrend::new(0.1, f64::NAN, 0.2, 0.2).is_err());
        // Negative growth above -100% is allowed (a greening fab).
        assert!(ManufacturingTrend::new(-0.05, -0.05, -0.05, -0.05).is_ok());
    }

    #[test]
    fn node_factors_compound() {
        let t = ManufacturingTrend::IMEC;
        assert_eq!(t.scope2_node_factor(0), 1.0);
        assert!((t.scope2_node_factor(1) - 1.252).abs() < 1e-12);
        assert!((t.scope2_node_factor(2) - 1.252 * 1.252).abs() < 1e-12);
        assert!((t.scope1_node_factor(3) - 1.195_f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn annual_factors_compound() {
        let t = ManufacturingTrend::IMEC;
        assert!((t.scope2_annual_factor(1.0) - 1.119).abs() < 1e-12);
        assert!((t.scope2_annual_factor(0.0) - 1.0).abs() < 1e-12);
        // Two years of 11.9 % ≈ one node of 25.2 % (the Imec cadence).
        let two_years = t.scope2_annual_factor(2.0);
        let one_node = t.scope2_node_factor(1);
        assert!((two_years - one_node).abs() / one_node < 0.01);
    }

    #[test]
    fn projection_applies_per_scope() {
        let t = ManufacturingTrend::IMEC;
        let base = ScopeBreakdown::new(10.0, 50.0, 40.0).unwrap();
        let next = t.project_nodes(&base, 1).unwrap();
        assert!((next.scope1() - 11.95).abs() < 1e-9);
        assert!((next.scope2() - 62.6).abs() < 1e-9);
        assert_eq!(next.scope3(), 40.0);
    }

    #[test]
    fn year_projection_validates_input() {
        let t = ManufacturingTrend::IMEC;
        let base = ScopeBreakdown::new(1.0, 1.0, 1.0).unwrap();
        assert!(t.project_years(&base, -1.0).is_err());
        assert!(t.project_years(&base, f64::NAN).is_err());
        let y5 = t.project_years(&base, 5.0).unwrap();
        assert!(y5.scope2() > y5.scope1()); // scope 2 grows faster
    }

    #[test]
    fn wafer_footprint_factor_uses_scope2() {
        let t = ManufacturingTrend::IMEC;
        assert_eq!(t.wafer_footprint_node_factor(1), t.scope2_node_factor(1));
    }
}
