//! Monte-Carlo wafer defect simulation.
//!
//! The closed-form yield models assume a spatial defect distribution;
//! this module *simulates* one: defects are thrown onto the wafer (either
//! uniformly — the Poisson assumption — or in clusters — the
//! negative-binomial regime), dies are placed exactly as in
//! [`crate::Wafer::chips_exact`], and a die is good iff no defect lands
//! on it. Comparing the simulated good-die counts against the analytic
//! models validates the substrate Figure 1 rests on.

use crate::geometry::{DiePlacement, Wafer};
use focal_core::{ModelError, Result};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How simulated defects are distributed over the wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefectDistribution {
    /// Uniform, independent defects — the Poisson-yield assumption.
    Uniform,
    /// Clustered defects: cluster centers are uniform; each cluster holds
    /// `mean_cluster_size` defects (Poisson-distributed) scattered with a
    /// Gaussian-ish spread of `cluster_radius_mm`. Clustering raises the
    /// yield for the same total defect count, which is why Murphy/Seeds
    /// sit above Poisson.
    Clustered {
        /// Average defects per cluster (≥ 1).
        mean_cluster_size: f64,
        /// Cluster spread in millimetres.
        cluster_radius_mm: f64,
    },
}

/// The outcome of one simulated wafer batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedYield {
    /// Dies placed per wafer.
    pub dies_per_wafer: u64,
    /// Mean good dies per wafer over the batch.
    pub mean_good_dies: f64,
    /// Mean simulated yield (good / placed).
    pub mean_yield: f64,
    /// Number of wafers simulated.
    pub wafers: usize,
}

/// A Monte-Carlo wafer defect simulator.
///
/// # Examples
///
/// ```
/// use focal_wafer::{DefectDistribution, DefectSimulator, DiePlacement, Wafer, YieldModel};
///
/// let sim = DefectSimulator::new(Wafer::W300MM, DefectDistribution::Uniform, 42);
/// let result = sim.run(&DiePlacement::square(20.0), 0.09, 50)?;
/// // Uniform random defects reproduce Poisson yield.
/// let lambda = 4.0 * 0.09; // 400 mm² die = 4 cm²
/// let poisson = YieldModel::Poisson.fraction_good_from_load(lambda);
/// assert!((result.mean_yield - poisson).abs() < 0.05);
/// # Ok::<(), focal_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DefectSimulator {
    wafer: Wafer,
    distribution: DefectDistribution,
    seed: u64,
}

impl DefectSimulator {
    /// Creates a simulator.
    pub fn new(wafer: Wafer, distribution: DefectDistribution, seed: u64) -> Self {
        DefectSimulator {
            wafer,
            distribution,
            seed,
        }
    }

    /// Simulates `wafers` wafers at `defect_density_per_cm2`, returning
    /// the batch statistics.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid placements, non-positive defect
    /// densities, zero wafer counts, or clustered parameters out of
    /// domain.
    pub fn run(
        &self,
        placement: &DiePlacement,
        defect_density_per_cm2: f64,
        wafers: usize,
    ) -> Result<SimulatedYield> {
        if !defect_density_per_cm2.is_finite() {
            return Err(ModelError::NotFinite {
                parameter: "defect density",
                value: defect_density_per_cm2,
            });
        }
        if defect_density_per_cm2 < 0.0 {
            return Err(ModelError::OutOfRange {
                parameter: "defect density",
                value: defect_density_per_cm2,
                expected: "[0, +inf)",
            });
        }
        if wafers == 0 {
            return Err(ModelError::OutOfRange {
                parameter: "wafer count",
                value: 0.0,
                expected: "[1, +inf)",
            });
        }
        if let DefectDistribution::Clustered {
            mean_cluster_size,
            cluster_radius_mm,
        } = self.distribution
        {
            if !(mean_cluster_size >= 1.0 && mean_cluster_size.is_finite()) {
                return Err(ModelError::OutOfRange {
                    parameter: "mean cluster size",
                    value: mean_cluster_size,
                    expected: "[1, +inf)",
                });
            }
            if !(cluster_radius_mm >= 0.0 && cluster_radius_mm.is_finite()) {
                return Err(ModelError::OutOfRange {
                    parameter: "cluster radius",
                    value: cluster_radius_mm,
                    expected: "[0, +inf) mm",
                });
            }
        }

        let dies = self.die_rects(placement)?;
        if dies.is_empty() {
            return Err(ModelError::Inconsistent {
                constraint: "no dies fit the wafer with this placement",
            });
        }

        let radius = self.wafer.diameter_mm() / 2.0;
        let wafer_area_cm2 = std::f64::consts::PI * radius * radius / 100.0;
        let expected_defects = defect_density_per_cm2 * wafer_area_cm2;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let coord = Uniform::new_inclusive(-radius, radius);
        let unit = Uniform::new(0.0f64, 1.0);

        let mut total_good = 0u64;
        for _ in 0..wafers {
            let defects = self.sample_defects(expected_defects, radius, &mut rng, coord, unit);
            total_good += dies
                .iter()
                .filter(|rect| !defects.iter().any(|&(x, y)| rect.contains(x, y)))
                .count() as u64;
        }

        let mean_good = total_good as f64 / wafers as f64;
        Ok(SimulatedYield {
            dies_per_wafer: dies.len() as u64,
            mean_good_dies: mean_good,
            mean_yield: mean_good / dies.len() as f64,
            wafers,
        })
    }

    /// Draws one wafer's defect coordinates.
    fn sample_defects(
        &self,
        expected_defects: f64,
        radius: f64,
        rng: &mut StdRng,
        coord: Uniform<f64>,
        unit: Uniform<f64>,
    ) -> Vec<(f64, f64)> {
        let mut defects = Vec::new();
        let sample_on_wafer = |rng: &mut StdRng| loop {
            let x = coord.sample(rng);
            let y = coord.sample(rng);
            if x * x + y * y <= radius * radius {
                return (x, y);
            }
        };
        match self.distribution {
            DefectDistribution::Uniform => {
                let n = sample_poisson(expected_defects, rng, unit);
                for _ in 0..n {
                    defects.push(sample_on_wafer(rng));
                }
            }
            DefectDistribution::Clustered {
                mean_cluster_size,
                cluster_radius_mm,
            } => {
                let clusters = sample_poisson(expected_defects / mean_cluster_size, rng, unit);
                let spread = Uniform::new_inclusive(-cluster_radius_mm, cluster_radius_mm);
                for _ in 0..clusters {
                    let (cx, cy) = sample_on_wafer(rng);
                    let size = sample_poisson(mean_cluster_size, rng, unit).max(1);
                    for _ in 0..size {
                        defects.push((cx + spread.sample(rng), cy + spread.sample(rng)));
                    }
                }
            }
        }
        defects
    }

    /// The placed die rectangles (centered grid, matching
    /// [`Wafer::chips_exact`]).
    fn die_rects(&self, placement: &DiePlacement) -> Result<Vec<DieRect>> {
        // Reuse the exact counter's geometry by replicating its placement
        // rule; chips_exact validates the placement for us.
        let count = self.wafer.chips_exact(placement)?;
        let usable_r = self.wafer.diameter_mm() / 2.0 - placement.edge_exclusion_mm;
        let pitch_x = placement.die_width_mm + placement.scribe_mm;
        let pitch_y = placement.die_height_mm + placement.scribe_mm;
        let r2 = usable_r * usable_r;
        let nx = (usable_r / pitch_x).ceil() as i64 + 1;
        let ny = (usable_r / pitch_y).ceil() as i64 + 1;

        let mut rects = Vec::new();
        for i in -nx..nx {
            for j in -ny..ny {
                let x0 = i as f64 * pitch_x - placement.die_width_mm / 2.0;
                let y0 = j as f64 * pitch_y - placement.die_height_mm / 2.0;
                let x1 = x0 + placement.die_width_mm;
                let y1 = y0 + placement.die_height_mm;
                let inside = [x0, x1]
                    .iter()
                    .all(|&x| [y0, y1].iter().all(|&y| x * x + y * y <= r2));
                if inside {
                    rects.push(DieRect { x0, y0, x1, y1 });
                }
            }
        }
        debug_assert_eq!(rects.len() as u64, count);
        Ok(rects)
    }
}

/// Knuth's inverse-transform Poisson sampler (adequate for the λ values a
/// wafer sees per cm² region; for whole-wafer λ in the thousands it stays
/// linear in λ, which is fine at simulation scale).
fn sample_poisson(lambda: f64, rng: &mut StdRng, unit: Uniform<f64>) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    // For large λ, use a normal approximation to keep runtime bounded.
    if lambda > 512.0 {
        let u1: f64 = unit.sample(rng).max(f64::MIN_POSITIVE);
        let u2: f64 = unit.sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= unit.sample(rng);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[derive(Debug, Clone, Copy)]
struct DieRect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl DieRect {
    fn contains(&self, x: f64, y: f64) -> bool {
        self.x0 <= x && x < self.x1 && self.y0 <= y && y < self.y1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_model::YieldModel;

    fn sim(dist: DefectDistribution) -> DefectSimulator {
        DefectSimulator::new(Wafer::W300MM, dist, 0xDEFEC7)
    }

    #[test]
    fn zero_defects_means_perfect_yield() {
        let result = sim(DefectDistribution::Uniform)
            .run(&DiePlacement::square(15.0), 0.0, 5)
            .unwrap();
        assert_eq!(result.mean_yield, 1.0);
        assert_eq!(result.mean_good_dies, result.dies_per_wafer as f64);
    }

    #[test]
    fn uniform_defects_reproduce_poisson_yield() {
        // 20x20 mm dies (4 cm²) at 0.09 defects/cm²: λ = 0.36.
        let result = sim(DefectDistribution::Uniform)
            .run(&DiePlacement::square(20.0), 0.09, 80)
            .unwrap();
        let analytic = YieldModel::Poisson.fraction_good_from_load(4.0 * 0.09);
        assert!(
            (result.mean_yield - analytic).abs() < 0.03,
            "sim {} vs poisson {analytic}",
            result.mean_yield
        );
    }

    #[test]
    fn clustering_raises_yield_at_equal_density() {
        let placement = DiePlacement::square(20.0);
        let uniform = sim(DefectDistribution::Uniform)
            .run(&placement, 0.2, 60)
            .unwrap();
        let clustered = sim(DefectDistribution::Clustered {
            mean_cluster_size: 8.0,
            cluster_radius_mm: 2.0,
        })
        .run(&placement, 0.2, 60)
        .unwrap();
        assert!(
            clustered.mean_yield > uniform.mean_yield,
            "clustered {} vs uniform {}",
            clustered.mean_yield,
            uniform.mean_yield
        );
    }

    #[test]
    fn simulated_yield_falls_with_die_size() {
        let small = sim(DefectDistribution::Uniform)
            .run(&DiePlacement::square(10.0), 0.09, 30)
            .unwrap();
        let big = sim(DefectDistribution::Uniform)
            .run(&DiePlacement::square(28.0), 0.09, 30)
            .unwrap();
        assert!(big.mean_yield < small.mean_yield);
        assert!(big.dies_per_wafer < small.dies_per_wafer);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let placement = DiePlacement::square(20.0);
        let a = sim(DefectDistribution::Uniform)
            .run(&placement, 0.09, 10)
            .unwrap();
        let b = sim(DefectDistribution::Uniform)
            .run(&placement, 0.09, 10)
            .unwrap();
        assert_eq!(a, b);
        let other = DefectSimulator::new(Wafer::W300MM, DefectDistribution::Uniform, 7)
            .run(&placement, 0.09, 10)
            .unwrap();
        assert_ne!(a.mean_good_dies, other.mean_good_dies);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = sim(DefectDistribution::Uniform);
        let placement = DiePlacement::square(20.0);
        assert!(s.run(&placement, -0.1, 10).is_err());
        assert!(s.run(&placement, f64::NAN, 10).is_err());
        assert!(s.run(&placement, 0.09, 0).is_err());
        let bad = sim(DefectDistribution::Clustered {
            mean_cluster_size: 0.5,
            cluster_radius_mm: 1.0,
        });
        assert!(bad.run(&placement, 0.09, 10).is_err());
    }

    #[test]
    fn dies_per_wafer_matches_exact_counter() {
        let placement = DiePlacement::square(17.0);
        let result = sim(DefectDistribution::Uniform)
            .run(&placement, 0.01, 1)
            .unwrap();
        let exact = Wafer::W300MM.chips_exact(&placement).unwrap();
        assert_eq!(result.dies_per_wafer, exact);
    }

    #[test]
    fn poisson_sampler_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let unit = Uniform::new(0.0f64, 1.0);
        for lambda in [0.5, 5.0, 50.0, 1000.0] {
            let n = 3000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(lambda, &mut rng, unit) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut rng, unit), 0);
    }
}
